#include "reduction/snm_core.h"

#include <algorithm>

namespace pdd {

void SortEntries(std::vector<KeyedEntry>* entries) {
  std::stable_sort(entries->begin(), entries->end(),
                   [](const KeyedEntry& a, const KeyedEntry& b) {
                     return a.key < b.key;
                   });
}

void DropAdjacentSameTuple(std::vector<KeyedEntry>* entries) {
  std::vector<KeyedEntry> kept;
  kept.reserve(entries->size());
  for (KeyedEntry& e : *entries) {
    if (!kept.empty() && kept.back().tuple == e.tuple) continue;
    kept.push_back(std::move(e));
  }
  *entries = std::move(kept);
}

WindowedEntryIndex::WindowedEntryIndex(
    std::vector<std::vector<KeyedEntry>> passes, size_t window,
    size_t tuple_count)
    : passes_(std::move(passes)), positions_(tuple_count), window_(window) {
  for (size_t pass = 0; pass < passes_.size(); ++pass) {
    for (size_t pos = 0; pos < passes_[pass].size(); ++pos) {
      positions_[passes_[pass][pos].tuple].emplace_back(pass, pos);
    }
  }
}

void WindowedEntryIndex::AppendWindowPartners(size_t first,
                                              std::vector<size_t>* out) const {
  if (window_ < 2) return;
  const size_t reach = window_ - 1;
  for (const auto& [pass, pos] : positions_[first]) {
    const std::vector<KeyedEntry>& entries = passes_[pass];
    size_t lo = pos >= reach ? pos - reach : 0;
    size_t hi = std::min(pos + reach, entries.empty() ? 0 : entries.size() - 1);
    for (size_t q = lo; q <= hi; ++q) {
      if (q == pos) continue;
      size_t u = entries[q].tuple;
      if (u != first) out->push_back(u);
    }
  }
}

std::vector<CandidatePair> WindowPairs(const std::vector<KeyedEntry>& sorted,
                                       size_t window,
                                       MatchingMatrix* executed) {
  std::vector<CandidatePair> pairs;
  if (window < 2) return pairs;
  for (size_t i = 1; i < sorted.size(); ++i) {
    size_t lo = i >= window - 1 ? i - (window - 1) : 0;
    for (size_t j = lo; j < i; ++j) {
      if (sorted[j].tuple == sorted[i].tuple) continue;
      if (executed != nullptr &&
          !executed->TestAndSet(sorted[j].tuple, sorted[i].tuple)) {
        continue;
      }
      pairs.push_back(MakePair(sorted[j].tuple, sorted[i].tuple));
    }
  }
  return pairs;
}

}  // namespace pdd
