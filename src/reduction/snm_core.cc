#include "reduction/snm_core.h"

#include <algorithm>

namespace pdd {

void SortEntries(std::vector<KeyedEntry>* entries) {
  std::stable_sort(entries->begin(), entries->end(),
                   [](const KeyedEntry& a, const KeyedEntry& b) {
                     return a.key < b.key;
                   });
}

void DropAdjacentSameTuple(std::vector<KeyedEntry>* entries) {
  std::vector<KeyedEntry> kept;
  kept.reserve(entries->size());
  for (KeyedEntry& e : *entries) {
    if (!kept.empty() && kept.back().tuple == e.tuple) continue;
    kept.push_back(std::move(e));
  }
  *entries = std::move(kept);
}

std::vector<CandidatePair> WindowPairs(const std::vector<KeyedEntry>& sorted,
                                       size_t window,
                                       MatchingMatrix* executed) {
  std::vector<CandidatePair> pairs;
  if (window < 2) return pairs;
  for (size_t i = 1; i < sorted.size(); ++i) {
    size_t lo = i >= window - 1 ? i - (window - 1) : 0;
    for (size_t j = lo; j < i; ++j) {
      if (sorted[j].tuple == sorted[i].tuple) continue;
      if (executed != nullptr &&
          !executed->TestAndSet(sorted[j].tuple, sorted[i].tuple)) {
        continue;
      }
      pairs.push_back(MakePair(sorted[j].tuple, sorted[i].tuple));
    }
  }
  return pairs;
}

}  // namespace pdd
