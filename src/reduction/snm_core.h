// Core of the sorted neighborhood method: key-sorted entries and the
// sliding window pass (Hernandez & Stolfo [19]).

#ifndef PDD_REDUCTION_SNM_CORE_H_
#define PDD_REDUCTION_SNM_CORE_H_

#include <string>
#include <vector>

#include "reduction/matching_matrix.h"
#include "reduction/pair_generator.h"

namespace pdd {

/// One sortable entry: a key value referencing a tuple. A tuple may own
/// several entries (multi-pass worlds, sorting alternatives).
struct KeyedEntry {
  std::string key;
  size_t tuple = 0;
};

/// Stable sort by key (insertion order breaks ties, matching the paper's
/// figures where t31's "Johpi" precedes t41's).
void SortEntries(std::vector<KeyedEntry>* entries);

/// Removes entries whose tuple equals the previous surviving entry's
/// tuple (Fig. 11's omission rule: neighboring key values referencing the
/// same tuple are redundant).
void DropAdjacentSameTuple(std::vector<KeyedEntry>* entries);

/// Slides a window of `window` entries over the sorted list; every entry
/// is paired with the `window - 1` preceding entries. Self pairs are
/// skipped. When `executed` is non-null it suppresses (and records)
/// repeated matchings of the same tuple pair (Fig. 12). The returned
/// pairs preserve encounter order (callers needing canonical order use
/// SortAndDedupPairs).
std::vector<CandidatePair> WindowPairs(const std::vector<KeyedEntry>& sorted,
                                       size_t window,
                                       MatchingMatrix* executed);

/// Shared index behind the SNM family's native streaming sources: one
/// or more sorted entry lists ("passes" — one per selected world for
/// the multi-pass method, one total otherwise) plus the inverse map
/// from tuple index to its entry positions. The window pair set is
/// local — an entry only ever pairs with entries at most `window - 1`
/// positions away in its own pass — so one tuple's partners are
/// computable in O(passes · entries-per-tuple · window) without
/// materializing any pass's pair set. Memory is O(total entries), i.e.
/// what the materialized path builds anyway minus the pair vector.
class WindowedEntryIndex {
 public:
  /// Entry lists must already be sorted (SortEntries) and post-processed
  /// (e.g. DropAdjacentSameTuple) exactly as the materialized method
  /// does, so the streamed pair set matches Generate() per pass.
  WindowedEntryIndex(std::vector<std::vector<KeyedEntry>> passes,
                     size_t window, size_t tuple_count);

  size_t tuple_count() const { return positions_.size(); }

  /// Appends every tuple sharing a window with `first` in any pass
  /// (unsorted, duplicates allowed, `first` itself excluded).
  void AppendWindowPartners(size_t first, std::vector<size_t>* out) const;

 private:
  std::vector<std::vector<KeyedEntry>> passes_;
  /// Per tuple: its (pass, position) entries.
  std::vector<std::vector<std::pair<size_t, size_t>>> positions_;
  size_t window_;
};

/// A PerFirstPairSource over a WindowedEntryIndex — the one streaming
/// source the whole fixed-window SNM family shares.
class WindowPairSource : public PerFirstPairSource {
 public:
  explicit WindowPairSource(WindowedEntryIndex index)
      : PerFirstPairSource(index.tuple_count()), index_(std::move(index)) {}

 protected:
  void AppendPartners(size_t first, std::vector<size_t>* out) override {
    index_.AppendWindowPartners(first, out);
  }

 private:
  WindowedEntryIndex index_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_SNM_CORE_H_
