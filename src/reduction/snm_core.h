// Core of the sorted neighborhood method: key-sorted entries and the
// sliding window pass (Hernandez & Stolfo [19]).

#ifndef PDD_REDUCTION_SNM_CORE_H_
#define PDD_REDUCTION_SNM_CORE_H_

#include <string>
#include <vector>

#include "reduction/matching_matrix.h"
#include "reduction/pair_generator.h"

namespace pdd {

/// One sortable entry: a key value referencing a tuple. A tuple may own
/// several entries (multi-pass worlds, sorting alternatives).
struct KeyedEntry {
  std::string key;
  size_t tuple = 0;
};

/// Stable sort by key (insertion order breaks ties, matching the paper's
/// figures where t31's "Johpi" precedes t41's).
void SortEntries(std::vector<KeyedEntry>* entries);

/// Removes entries whose tuple equals the previous surviving entry's
/// tuple (Fig. 11's omission rule: neighboring key values referencing the
/// same tuple are redundant).
void DropAdjacentSameTuple(std::vector<KeyedEntry>* entries);

/// Slides a window of `window` entries over the sorted list; every entry
/// is paired with the `window - 1` preceding entries. Self pairs are
/// skipped. When `executed` is non-null it suppresses (and records)
/// repeated matchings of the same tuple pair (Fig. 12). The returned
/// pairs preserve encounter order (callers needing canonical order use
/// SortAndDedupPairs).
std::vector<CandidatePair> WindowPairs(const std::vector<KeyedEntry>& sorted,
                                       size_t window,
                                       MatchingMatrix* executed);

}  // namespace pdd

#endif  // PDD_REDUCTION_SNM_CORE_H_
