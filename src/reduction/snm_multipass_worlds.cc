#include "reduction/snm_multipass_worlds.h"

namespace pdd {

std::vector<KeyedEntry> SnmMultipassWorlds::SortedEntriesForWorld(
    const World& world, const XRelation& rel) const {
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<KeyedEntry> entries;
  for (const auto& [tuple, key] : builder.KeysForWorld(world, rel)) {
    entries.push_back({key, tuple});
  }
  SortEntries(&entries);
  return entries;
}

Result<std::vector<CandidatePair>> SnmMultipassWorlds::Generate(
    const XRelation& rel) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("SNM window must be at least 2");
  }
  std::vector<World> worlds = SelectWorlds(rel, options_.selection);
  if (worlds.empty()) {
    return Status::FailedPrecondition(
        "no all-present world exists for relation '" + rel.name() + "'");
  }
  std::vector<CandidatePair> all;
  for (const World& world : worlds) {
    std::vector<KeyedEntry> entries = SortedEntriesForWorld(world, rel);
    std::vector<CandidatePair> pairs =
        WindowPairs(entries, options_.window, nullptr);
    all.insert(all.end(), pairs.begin(), pairs.end());
  }
  SortAndDedupPairs(&all);
  return all;
}

Result<std::unique_ptr<PairBatchSource>> SnmMultipassWorlds::Stream(
    const XRelation& rel) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("SNM window must be at least 2");
  }
  std::vector<World> worlds = SelectWorlds(rel, options_.selection);
  if (worlds.empty()) {
    return Status::FailedPrecondition(
        "no all-present world exists for relation '" + rel.name() + "'");
  }
  std::vector<std::vector<KeyedEntry>> passes;
  passes.reserve(worlds.size());
  for (const World& world : worlds) {
    passes.push_back(SortedEntriesForWorld(world, rel));
  }
  return std::unique_ptr<PairBatchSource>(
      std::make_unique<WindowPairSource>(WindowedEntryIndex(
          std::move(passes), options_.window, rel.size())));
}

}  // namespace pdd
