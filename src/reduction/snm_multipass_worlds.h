// SNM adaptation 1 (Section V-A.1): multi-pass over possible worlds.
// Each selected world yields certain key values; one SNM pass runs per
// world and the candidate sets are unioned. Only worlds containing all
// tuples are considered (every tuple needs a key value).

#ifndef PDD_REDUCTION_SNM_MULTIPASS_WORLDS_H_
#define PDD_REDUCTION_SNM_MULTIPASS_WORLDS_H_

#include "keys/key_builder.h"
#include "pdb/world_selection.h"
#include "reduction/pair_generator.h"
#include "reduction/snm_core.h"

namespace pdd {

/// Options of the multi-pass method.
struct SnmMultipassOptions {
  /// SNM window size (>= 2).
  size_t window = 3;
  /// Which worlds the passes run over (top probable vs diverse).
  WorldSelectionOptions selection;
  /// Collapses value-level uncertainty inside a chosen alternative.
  ConflictStrategy value_strategy = ConflictStrategy::kMostProbable;
};

/// Multi-pass sorted neighborhood over selected possible worlds.
class SnmMultipassWorlds : public PairGenerator {
 public:
  SnmMultipassWorlds(KeySpec spec, SnmMultipassOptions options)
      : spec_(std::move(spec)), options_(options) {
    options_.selection.all_present_only = true;
  }

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  /// Native streaming: one pass per selected world feeds a shared
  /// WindowedEntryIndex; live candidates are bounded by
  /// O(worlds · window) per tuple instead of the unioned pair set.
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override { return true; }
  std::string name() const override { return "snm_multipass_worlds"; }

  /// The key-sorted entry list of one world (exposed for Fig. 9).
  std::vector<KeyedEntry> SortedEntriesForWorld(const World& world,
                                                const XRelation& rel) const;

 private:
  KeySpec spec_;
  SnmMultipassOptions options_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_SNM_MULTIPASS_WORLDS_H_
