#include "reduction/snm_sorting_alternatives.h"

namespace pdd {

std::vector<KeyedEntry> SnmSortingAlternatives::SortedEntries(
    const XRelation& rel) const {
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<KeyedEntry> entries;
  for (size_t i = 0; i < rel.size(); ++i) {
    for (std::string& key : builder.AlternativeKeys(rel.xtuple(i))) {
      entries.push_back({std::move(key), i});
    }
  }
  SortEntries(&entries);
  return entries;
}

std::vector<KeyedEntry> SnmSortingAlternatives::SurvivingEntries(
    const XRelation& rel) const {
  std::vector<KeyedEntry> entries = SortedEntries(rel);
  DropAdjacentSameTuple(&entries);
  return entries;
}

Result<std::vector<CandidatePair>> SnmSortingAlternatives::Generate(
    const XRelation& rel) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("SNM window must be at least 2");
  }
  std::vector<KeyedEntry> entries = SurvivingEntries(rel);
  MatchingMatrix executed(rel.size());
  std::vector<CandidatePair> pairs =
      WindowPairs(entries, options_.window, &executed);
  SortAndDedupPairs(&pairs);
  return pairs;
}

Result<std::unique_ptr<PairBatchSource>> SnmSortingAlternatives::Stream(
    const XRelation& rel) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("SNM window must be at least 2");
  }
  // The matching-matrix suppression of the materialized path only
  // removes repeats; the per-first dedup of the streaming source yields
  // the same set over the same surviving entries.
  std::vector<std::vector<KeyedEntry>> passes;
  passes.push_back(SurvivingEntries(rel));
  return std::unique_ptr<PairBatchSource>(
      std::make_unique<WindowPairSource>(WindowedEntryIndex(
          std::move(passes), options_.window, rel.size())));
}

}  // namespace pdd
