// SNM adaptation 3 (Section V-A.3, Fig. 11/12): every alternative gets
// its own key value; the alternatives' keys are sorted while keeping
// references to their tuples. Neighboring entries of the same tuple are
// omitted, and a matrix of executed matchings prevents matching a tuple
// pair twice.

#ifndef PDD_REDUCTION_SNM_SORTING_ALTERNATIVES_H_
#define PDD_REDUCTION_SNM_SORTING_ALTERNATIVES_H_

#include "keys/key_builder.h"
#include "reduction/pair_generator.h"
#include "reduction/snm_core.h"

namespace pdd {

/// Options of the sorting-alternatives method.
struct SnmAlternativesOptions {
  /// SNM window size (>= 2).
  size_t window = 3;
};

/// SNM over per-alternative keys with duplicate-matching suppression.
class SnmSortingAlternatives : public PairGenerator {
 public:
  SnmSortingAlternatives(KeySpec spec, SnmAlternativesOptions options)
      : spec_(std::move(spec)), options_(options) {}

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  /// Native streaming over the surviving entries; a tuple's live
  /// partners are bounded by its alternative count times the window.
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override { return true; }
  std::string name() const override { return "snm_sorting_alternatives"; }

  /// The sorted entry list BEFORE the same-tuple omission (exposed for
  /// Fig. 11's left-to-right illustration).
  std::vector<KeyedEntry> SortedEntries(const XRelation& rel) const;

  /// The entry list after the omission rule (Fig. 11 right, surviving
  /// rows).
  std::vector<KeyedEntry> SurvivingEntries(const XRelation& rel) const;

 private:
  KeySpec spec_;
  SnmAlternativesOptions options_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_SNM_SORTING_ALTERNATIVES_H_
