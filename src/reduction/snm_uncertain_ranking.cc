#include "reduction/snm_uncertain_ranking.h"

#include "ranking/expected_rank.h"
#include "ranking/positional_rank.h"

namespace pdd {

std::vector<KeyDistribution> SnmUncertainRanking::Distributions(
    const XRelation& rel) const {
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<KeyDistribution> dists;
  dists.reserve(rel.size());
  for (const XTuple& t : rel.xtuples()) {
    dists.push_back(builder.DistributionFor(t, options_.conditioned));
  }
  return dists;
}

std::vector<size_t> SnmUncertainRanking::RankedOrder(
    const XRelation& rel) const {
  std::vector<KeyDistribution> dists = Distributions(rel);
  switch (options_.method) {
    case RankingMethod::kExpectedRank:
      return RankByExpectedRank(dists);
    case RankingMethod::kPositional:
      return RankByPositionalScore(dists);
  }
  return {};
}

Result<std::vector<CandidatePair>> SnmUncertainRanking::Generate(
    const XRelation& rel) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("SNM window must be at least 2");
  }
  std::vector<size_t> order = RankedOrder(rel);
  std::vector<CandidatePair> pairs;
  for (size_t i = 1; i < order.size(); ++i) {
    size_t lo = i >= options_.window - 1 ? i - (options_.window - 1) : 0;
    for (size_t j = lo; j < i; ++j) {
      pairs.push_back(MakePair(order[j], order[i]));
    }
  }
  SortAndDedupPairs(&pairs);
  return pairs;
}

Result<std::unique_ptr<PairBatchSource>> SnmUncertainRanking::Stream(
    const XRelation& rel) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("SNM window must be at least 2");
  }
  // The ranked order is already the sorted pass; the keys themselves are
  // irrelevant once positions are fixed.
  std::vector<KeyedEntry> pass;
  pass.reserve(rel.size());
  for (size_t tuple : RankedOrder(rel)) pass.push_back({std::string(), tuple});
  std::vector<std::vector<KeyedEntry>> passes;
  passes.push_back(std::move(pass));
  return std::unique_ptr<PairBatchSource>(
      std::make_unique<WindowPairSource>(WindowedEntryIndex(
          std::move(passes), options_.window, rel.size())));
}

}  // namespace pdd
