// SNM adaptation 4 (Section V-A.4, Fig. 13): tuples keep uncertain key
// values and are ordered by a probabilistic ranking function; the window
// then slides over the ranked tuples. The paper calls this the most
// promising approach w.r.t. effectiveness and requires O(n log n)
// ranking complexity.

#ifndef PDD_REDUCTION_SNM_UNCERTAIN_RANKING_H_
#define PDD_REDUCTION_SNM_UNCERTAIN_RANKING_H_

#include "keys/key_builder.h"
#include "reduction/pair_generator.h"
#include "reduction/snm_core.h"

namespace pdd {

/// Which ranking function orders the uncertain keys.
enum class RankingMethod {
  /// Exact expected rank, O(n²) — reference quality.
  kExpectedRank = 0,
  /// Positional approximation, O(n log n) — the paper's complexity target.
  kPositional = 1,
};

/// Options of the uncertain-key method.
struct SnmRankingOptions {
  /// SNM window size (>= 2), measured in tuples.
  size_t window = 3;
  RankingMethod method = RankingMethod::kPositional;
  /// Renormalize key distributions by p(t) before ranking (Fig. 13 keeps
  /// raw masses; ranking normalizes internally either way).
  bool conditioned = false;
};

/// SNM over rank-ordered tuples with probabilistic key values.
class SnmUncertainRanking : public PairGenerator {
 public:
  SnmUncertainRanking(KeySpec spec, SnmRankingOptions options)
      : spec_(std::move(spec)), options_(options) {}

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  /// Native streaming: the window slides over the ranked order, which
  /// is a single entry pass of the shared windowed index.
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override { return true; }
  std::string name() const override { return "snm_uncertain_ranking"; }

  /// The ranked tuple order (exposed for Fig. 13).
  std::vector<size_t> RankedOrder(const XRelation& rel) const;

  /// The per-tuple key distributions (exposed for Fig. 13's key column).
  std::vector<KeyDistribution> Distributions(const XRelation& rel) const;

 private:
  KeySpec spec_;
  SnmRankingOptions options_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_SNM_UNCERTAIN_RANKING_H_
