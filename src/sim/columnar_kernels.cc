#include "sim/columnar_kernels.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iterator>

#include "sim/edit_distance.h"
#include "sim/jaro.h"
#include "util/string_util.h"

namespace pdd {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t GramBit(unsigned char c0, unsigned char c1) {
  uint64_t h = kFnvOffset;
  h = (h ^ c0) * kFnvPrime;
  h = (h ^ c1) * kFnvPrime;
  return uint64_t{1} << (h & 63);
}

inline double NormalizeByMaxLength(size_t distance, std::string_view a,
                                   std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(distance) / static_cast<double>(max_len);
}

// --- kernel implementations ------------------------------------------
// Each replicates its scalar comparator's arithmetic exactly; see the
// header for which shortcuts are provably bit-exact.

double ExactKernel(std::string_view a, std::string_view b, uint64_t sig_a,
                   uint64_t sig_b, SimScratch&) {
  // Unequal signatures prove unequal strings (equal strings have equal
  // gram sets, hence equal signatures).
  if (sig_a != sig_b) return 0.0;
  return a == b ? 1.0 : 0.0;
}

double ExactNoCaseKernel(std::string_view a, std::string_view b, uint64_t,
                         uint64_t, SimScratch&) {
  return EqualsIgnoreCase(a, b) ? 1.0 : 0.0;
}

double PrefixKernel(std::string_view a, std::string_view b, uint64_t,
                    uint64_t, SimScratch&) {
  if (a.empty() && b.empty()) return 1.0;
  size_t lcp = 0;
  size_t limit = std::min(a.size(), b.size());
  while (lcp < limit && a[lcp] == b[lcp]) ++lcp;
  return static_cast<double>(lcp) /
         static_cast<double>(std::max(a.size(), b.size()));
}

double HammingKernel(std::string_view a, std::string_view b, uint64_t,
                     uint64_t, SimScratch&) {
  // Branch-free mismatch count over the common prefix: the flat
  // byte-compare loop the autovectorizer turns into SIMD compares.
  const size_t common = std::min(a.size(), b.size());
  const char* pa = a.data();
  const char* pb = b.data();
  size_t mismatches = 0;
  for (size_t i = 0; i < common; ++i) {
    mismatches += static_cast<size_t>(pa[i] != pb[i]);
  }
  size_t dist = (std::max(a.size(), b.size()) - common) + mismatches;
  return NormalizeByMaxLength(dist, a, b);
}

double LevenshteinKernel(std::string_view a, std::string_view b, uint64_t,
                         uint64_t, SimScratch& scratch) {
  if (a == b) return 1.0;  // distance 0 normalizes to exactly 1.0
  return NormalizeByMaxLength(BandedLevenshteinDistance(a, b, scratch), a, b);
}

double DamerauKernel(std::string_view a, std::string_view b, uint64_t,
                     uint64_t, SimScratch& scratch) {
  if (a == b) return 1.0;
  return NormalizeByMaxLength(DamerauLevenshteinDistance(a, b, scratch), a,
                              b);
}

double LcsKernel(std::string_view a, std::string_view b, uint64_t, uint64_t,
                 SimScratch& scratch) {
  if (a == b) return 1.0;  // |lcs| == max_len divides to exactly 1.0
  size_t max_len = std::max(a.size(), b.size());
  return static_cast<double>(LongestCommonSubsequence(a, b, scratch)) /
         static_cast<double>(max_len);
}

double JaroKernel(std::string_view a, std::string_view b, uint64_t, uint64_t,
                  SimScratch& scratch) {
  if (a == b) return 1.0;  // m/|a|, m/|b|, m/m all exactly 1.0
  return JaroSimilarity(a, b, scratch);
}

double JaroWinklerKernel(std::string_view a, std::string_view b, uint64_t,
                         uint64_t, SimScratch& scratch) {
  if (a == b) return 1.0;  // jaro 1.0 → jw = 1.0 + prefix·p·0.0
  return JaroWinklerSimilarity(a, b, /*prefix_scale=*/0.1, scratch);
}

/// Padded q-gram views of `s` into `pad` (the padded copy the views
/// point into) and `items`, sorted ascending. Matches QGrams(s, q, '#').
void SortedPaddedGramViews(std::string_view s, size_t q, std::string& pad,
                           std::vector<std::string_view>& items) {
  pad.assign(q - 1, '#');
  pad.append(s.data(), s.size());
  pad.append(q - 1, '#');
  items.clear();
  std::string_view padded(pad);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    items.push_back(padded.substr(i, q));
  }
  std::sort(items.begin(), items.end());
}

/// Multiset intersection size of two sorted view sequences:
/// Σ_g min(count_a(g), count_b(g)) — the integer the scalar q-gram
/// comparator derives through its count map.
size_t SortedMultisetIntersection(const std::vector<std::string_view>& a,
                                  const std::vector<std::string_view>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

double QGramKernel(std::string_view a, std::string_view b, size_t q,
                   SimScratch& scratch) {
  if (a.empty() && b.empty()) return 1.0;
  SortedPaddedGramViews(a, q, scratch.pad_a, scratch.items_a);
  SortedPaddedGramViews(b, q, scratch.pad_b, scratch.items_b);
  // With '#' padding and q >= 2 both gram lists are non-empty, so the
  // scalar's empty-list branches are unreachable here.
  size_t intersection =
      SortedMultisetIntersection(scratch.items_a, scratch.items_b);
  return 2.0 * static_cast<double>(intersection) /
         static_cast<double>(scratch.items_a.size() +
                             scratch.items_b.size());
}

double QGram2Kernel(std::string_view a, std::string_view b, uint64_t sig_a,
                    uint64_t sig_b, SimScratch& scratch) {
  if (a.empty() && b.empty()) return 1.0;
  // Zero signature AND proves an empty padded-2-gram intersection; the
  // scalar formula then evaluates to exactly 2·0/(|ga|+|gb|) = 0.0.
  if ((sig_a & sig_b) == 0) return 0.0;
  return QGramKernel(a, b, 2, scratch);
}

double QGram3Kernel(std::string_view a, std::string_view b, uint64_t,
                    uint64_t, SimScratch& scratch) {
  // Signatures are 2-gram-based and say nothing exact about 3-grams.
  if (a.empty() && b.empty()) return 1.0;
  return QGramKernel(a, b, 3, scratch);
}

/// Whitespace token views of `s`, sorted and deduplicated — the set the
/// scalar token comparators build as std::set<std::string>.
void SortedUniqueTokenViews(std::string_view s,
                            std::vector<std::string_view>& items) {
  items.clear();
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) items.push_back(s.substr(start, i - start));
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
}

/// Set intersection size of two sorted unique view sequences.
size_t SortedSetIntersection(const std::vector<std::string_view>& a,
                             const std::vector<std::string_view>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

double JaccardKernel(std::string_view a, std::string_view b, uint64_t,
                     uint64_t, SimScratch& scratch) {
  SortedUniqueTokenViews(a, scratch.items_a);
  SortedUniqueTokenViews(b, scratch.items_b);
  if (scratch.items_a.empty() && scratch.items_b.empty()) return 1.0;
  size_t intersection =
      SortedSetIntersection(scratch.items_a, scratch.items_b);
  size_t uni = scratch.items_a.size() + scratch.items_b.size() - intersection;
  return uni == 0 ? 1.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

double DiceKernel(std::string_view a, std::string_view b, uint64_t, uint64_t,
                  SimScratch& scratch) {
  SortedUniqueTokenViews(a, scratch.items_a);
  SortedUniqueTokenViews(b, scratch.items_b);
  if (scratch.items_a.empty() && scratch.items_b.empty()) return 1.0;
  if (scratch.items_a.empty() || scratch.items_b.empty()) return 0.0;
  size_t intersection =
      SortedSetIntersection(scratch.items_a, scratch.items_b);
  return 2.0 * static_cast<double>(intersection) /
         static_cast<double>(scratch.items_a.size() +
                             scratch.items_b.size());
}

double CosineKernel(std::string_view a, std::string_view b, uint64_t sig_a,
                    uint64_t sig_b, SimScratch& scratch) {
  if (a.empty() && b.empty()) return 1.0;
  // Empty gram intersection → dot 0 over positive norms → exactly 0.0.
  if ((sig_a & sig_b) == 0) return 0.0;
  SortedPaddedGramViews(a, 2, scratch.pad_a, scratch.items_a);
  SortedPaddedGramViews(b, 2, scratch.pad_b, scratch.items_b);
  const std::vector<std::string_view>& ga = scratch.items_a;
  const std::vector<std::string_view>& gb = scratch.items_b;
  // The scalar iterates its count maps in ascending gram order, summing
  // na (and dot at shared grams) over a's grams and nb over b's. Runs
  // of the sorted views visit the same grams in the same order with the
  // same integer counts, so every accumulator adds the same terms in
  // the same sequence.
  double dot = 0.0, na = 0.0, nb = 0.0;
  size_t i = 0, j = 0;
  while (i < ga.size()) {
    size_t i_end = i + 1;
    while (i_end < ga.size() && ga[i_end] == ga[i]) ++i_end;
    double w = static_cast<double>(i_end - i);
    na += w * w;
    while (j < gb.size() && gb[j] < ga[i]) ++j;
    if (j < gb.size() && gb[j] == ga[i]) {
      size_t j_end = j + 1;
      while (j_end < gb.size() && gb[j_end] == gb[j]) ++j_end;
      dot += w * static_cast<double>(j_end - j);
    }
    i = i_end;
  }
  for (j = 0; j < gb.size();) {
    size_t j_end = j + 1;
    while (j_end < gb.size() && gb[j_end] == gb[j]) ++j_end;
    double w = static_cast<double>(j_end - j);
    nb += w * w;
    j = j_end;
  }
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double NumericKernel(std::string_view a, std::string_view b, uint64_t,
                     uint64_t, SimScratch&) {
  // Mirrors NumericComparator with the registry's scale of 1.0.
  double x = 0.0, y = 0.0;
  if (!ParseDouble(a, &x) || !ParseDouble(b, &y)) {
    return a == b ? 1.0 : 0.0;
  }
  return std::max(0.0, 1.0 - std::abs(x - y) / 1.0);
}

double NumericRelKernel(std::string_view a, std::string_view b, uint64_t,
                        uint64_t, SimScratch&) {
  double x = 0.0, y = 0.0;
  if (!ParseDouble(a, &x) || !ParseDouble(b, &y)) {
    return a == b ? 1.0 : 0.0;
  }
  double denom = std::max(std::abs(x), std::abs(y));
  if (denom == 0.0) return 1.0;
  return std::max(0.0, 1.0 - std::abs(x - y) / denom);
}

struct KernelEntry {
  const char* name;
  ColumnarKernelFn fn;
};

/// Sorted by name. monge_elkan and soundex are deliberately absent:
/// they exercise the scalar-fallback path (and a forced
/// `match.kernel = columnar` plan over them fails to compile).
constexpr KernelEntry kKernels[] = {
    {"cosine", &CosineKernel},
    {"damerau", &DamerauKernel},
    {"dice", &DiceKernel},
    {"exact", &ExactKernel},
    {"exact_nocase", &ExactNoCaseKernel},
    {"hamming", &HammingKernel},
    {"jaccard", &JaccardKernel},
    {"jaro", &JaroKernel},
    {"jaro_winkler", &JaroWinklerKernel},
    {"lcs", &LcsKernel},
    {"levenshtein", &LevenshteinKernel},
    {"numeric", &NumericKernel},
    {"numeric_rel", &NumericRelKernel},
    {"prefix", &PrefixKernel},
    {"qgram2", &QGram2Kernel},
    {"qgram3", &QGram3Kernel},
};

}  // namespace

uint64_t QGram2Signature(std::string_view s) {
  uint64_t sig = 0;
  unsigned char prev = '#';
  for (char c : s) {
    sig |= GramBit(prev, static_cast<unsigned char>(c));
    prev = static_cast<unsigned char>(c);
  }
  sig |= GramBit(prev, '#');
  return sig;
}

ColumnarKernelFn FindColumnarKernel(std::string_view comparator_name) {
  for (const KernelEntry& entry : kKernels) {
    if (comparator_name == entry.name) return entry.fn;
  }
  return nullptr;
}

std::vector<std::string> ColumnarKernelNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kKernels));
  for (const KernelEntry& entry : kKernels) names.emplace_back(entry.name);
  return names;
}

}  // namespace pdd
