// Columnar comparator kernels: allocation-free, signature-accelerated
// span implementations of the registry comparators, used by the
// columnar match path (match/columnar_matcher.h) over a RelationArena.
//
// Contract: for every registered comparator name with a kernel,
//   kernel(a, b, sig_a, sig_b, scratch) == GetComparator(name)->Compare(a, b)
// BIT-IDENTICALLY, for any inputs and any (correct) signatures. That is
// what lets DetectionPlan select the kernel path at compile time while
// keeping reports byte-identical to the scalar path. Kernels therefore
// only take shortcuts that are exact under IEEE 754:
//
//   * equality exits for comparators whose self-similarity is exactly
//     1.0 (integer-distance families, Jaro: x/x == 1.0 for x > 0);
//   * the q-gram signature test (sig_a & sig_b) == 0, which proves the
//     padded-2-gram intersection is exactly empty (equal grams hash to
//     equal bits, so a shared gram forces a shared bit) and the scalar
//     formula then yields exactly 0.0;
//   * banded edit distance (Ukkonen band doubling), which returns the
//     same integer distance as the full DP.
//
// Cosine deliberately takes no equality exit: sqrt(n)*sqrt(n) need not
// equal n in floating point, so cosine(a, a) is not guaranteed to be
// bit-1.0 and the kernel must run the same arithmetic as the scalar.
//
// Kernels are free functions behind function pointers (no virtual
// dispatch inside a batch) and share SimScratch buffers, so the inner
// comparison loops are flat and allocation-free — the shape the
// autovectorizer needs.

#ifndef PDD_SIM_COLUMNAR_KERNELS_H_
#define PDD_SIM_COLUMNAR_KERNELS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sim_scratch.h"

namespace pdd {

/// A columnar comparator kernel. `sig_a` / `sig_b` are the operands'
/// QGram2Signature values (precomputed in the arena); kernels that
/// cannot use them ignore them.
using ColumnarKernelFn = double (*)(std::string_view a, std::string_view b,
                                    uint64_t sig_a, uint64_t sig_b,
                                    SimScratch& scratch);

/// 64-bit bitset signature over the padded character 2-grams of `s`
/// (pad '#', matching util/string_util.h QGrams). Two strings with a
/// common padded 2-gram share at least one set bit, so a zero AND
/// proves an empty gram intersection. The converse does not hold
/// (hash collisions), which is why kernels only use the zero test.
uint64_t QGram2Signature(std::string_view s);

/// The kernel registered for a comparator name, or nullptr when the
/// comparator is scalar-only (monge_elkan, soundex, custom instances).
ColumnarKernelFn FindColumnarKernel(std::string_view comparator_name);

/// Names of all comparators that have a columnar kernel, sorted.
std::vector<std::string> ColumnarKernelNames();

}  // namespace pdd

#endif  // PDD_SIM_COLUMNAR_KERNELS_H_
