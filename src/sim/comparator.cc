#include "sim/comparator.h"

#include <algorithm>

#include "util/string_util.h"

namespace pdd {

double ExactIgnoreCaseComparator::Compare(std::string_view a,
                                          std::string_view b) const {
  return EqualsIgnoreCase(a, b) ? 1.0 : 0.0;
}

double PrefixComparator::Compare(std::string_view a, std::string_view b) const {
  if (a.empty() && b.empty()) return 1.0;
  size_t lcp = 0;
  size_t limit = std::min(a.size(), b.size());
  while (lcp < limit && a[lcp] == b[lcp]) ++lcp;
  return static_cast<double>(lcp) /
         static_cast<double>(std::max(a.size(), b.size()));
}

}  // namespace pdd
