// Comparison functions quantifying attribute value similarity
// (Section III-C). All comparators are normalized: results lie in [0, 1].

#ifndef PDD_SIM_COMPARATOR_H_
#define PDD_SIM_COMPARATOR_H_

#include <string>
#include <string_view>

namespace pdd {

/// Interface of a normalized comparison function on certain values.
///
/// Implementations must be symmetric (Compare(a,b) == Compare(b,a)),
/// reflexive (Compare(a,a) == 1) and return values in [0, 1].
class Comparator {
 public:
  virtual ~Comparator() = default;

  /// Similarity of two certain attribute values, in [0, 1].
  virtual double Compare(std::string_view a, std::string_view b) const = 0;

  /// Stable registry name ("hamming", "jaro_winkler", ...).
  virtual std::string name() const = 0;
};

/// Exact equality: 1 when equal, else 0 (Eq. 4's identity comparator).
class ExactComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override {
    return a == b ? 1.0 : 0.0;
  }
  std::string name() const override { return "exact"; }
};

/// Case-insensitive exact equality.
class ExactIgnoreCaseComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "exact_nocase"; }
};

/// Longest-common-prefix similarity: |lcp(a,b)| / max(|a|, |b|).
class PrefixComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "prefix"; }
};

}  // namespace pdd

#endif  // PDD_SIM_COMPARATOR_H_
