#include "sim/edit_distance.h"

#include <algorithm>
#include <vector>

namespace pdd {

size_t GeneralizedHammingDistance(std::string_view a, std::string_view b) {
  size_t common = std::min(a.size(), b.size());
  size_t dist = std::max(a.size(), b.size()) - common;
  for (size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) ++dist;
  }
  return dist;
}

size_t LevenshteinDistance(std::string_view a, std::string_view b,
                           SimScratch& scratch) {
  if (a.size() < b.size()) std::swap(a, b);
  // b is the shorter string; one rolling row of |b|+1 entries.
  std::vector<size_t>& row = scratch.row0;
  row.resize(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t next_diag = row[j];
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = next_diag;
    }
  }
  return row[b.size()];
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  return LevenshteinDistance(a, b, ThreadLocalSimScratch());
}

size_t BandedLevenshteinDistance(std::string_view a, std::string_view b,
                                 SimScratch& scratch) {
  if (a.size() < b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (m == 0) return n;
  const size_t diff = n - m;
  // Sentinel larger than any reachable distance, safe to +1 without
  // wrapping.
  const size_t kInf = n + m + 1;
  std::vector<size_t>& row = scratch.row0;
  // Band half-width: cells with |i - j| > band are cut. Any edit path
  // needs at least `diff` edits, so start there and double until the
  // band certifies its own result (Ukkonen): a banded distance <= band
  // cannot have been improved by a path leaving the band, because such
  // a path costs more than `band` on its own.
  size_t band = std::max<size_t>(diff, 1);
  while (true) {
    band = std::min(band, n);
    row.assign(m + 1, kInf);
    for (size_t j = 0; j <= std::min(band, m); ++j) row[j] = j;
    for (size_t i = 1; i <= n; ++i) {
      const size_t lo = i > band ? i - band : 1;
      const size_t hi = std::min(m, i + band);
      size_t diag = row[lo - 1];
      if (lo > 1) row[lo - 1] = kInf;  // left neighbour is out of band
      else row[0] = i;
      for (size_t j = lo; j <= hi; ++j) {
        size_t next_diag = row[j];
        size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
        row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
        diag = next_diag;
      }
      if (hi < m) row[hi + 1] = kInf;  // stale value from the last pass
    }
    if (row[m] <= band || band >= n) return row[m];
    band *= 2;
  }
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b,
                                  SimScratch& scratch) {
  const size_t n = a.size();
  const size_t m = b.size();
  // Three rolling rows (current, previous, before-previous) for the
  // optimal-string-alignment recurrence.
  std::vector<size_t>& prev2 = scratch.row0;
  std::vector<size_t>& prev = scratch.row1;
  std::vector<size_t>& cur = scratch.row2;
  prev2.assign(m + 1, 0);
  prev.resize(m + 1);
  cur.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  return DamerauLevenshteinDistance(a, b, ThreadLocalSimScratch());
}

size_t LongestCommonSubsequence(std::string_view a, std::string_view b,
                                SimScratch& scratch) {
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<size_t>& prev = scratch.row0;
  std::vector<size_t>& cur = scratch.row1;
  prev.assign(b.size() + 1, 0);
  cur.assign(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      cur[j] = a[i - 1] == b[j - 1] ? prev[j - 1] + 1
                                    : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

size_t LongestCommonSubsequence(std::string_view a, std::string_view b) {
  return LongestCommonSubsequence(a, b, ThreadLocalSimScratch());
}

namespace {

double NormalizeByMaxLength(size_t distance, std::string_view a,
                            std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(distance) / static_cast<double>(max_len);
}

}  // namespace

double NormalizedHammingComparator::Compare(std::string_view a,
                                            std::string_view b) const {
  return NormalizeByMaxLength(GeneralizedHammingDistance(a, b), a, b);
}

double LevenshteinComparator::Compare(std::string_view a,
                                      std::string_view b) const {
  return NormalizeByMaxLength(LevenshteinDistance(a, b), a, b);
}

double DamerauLevenshteinComparator::Compare(std::string_view a,
                                             std::string_view b) const {
  return NormalizeByMaxLength(DamerauLevenshteinDistance(a, b), a, b);
}

double LcsComparator::Compare(std::string_view a, std::string_view b) const {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return static_cast<double>(LongestCommonSubsequence(a, b)) /
         static_cast<double>(max_len);
}

}  // namespace pdd
