// Edit-distance-family comparison functions: normalized Hamming (the
// comparator used in all of the paper's worked examples), Levenshtein,
// Damerau-Levenshtein (OSA), and longest common subsequence.

#ifndef PDD_SIM_EDIT_DISTANCE_H_
#define PDD_SIM_EDIT_DISTANCE_H_

#include <cstddef>

#include "sim/comparator.h"
#include "sim/sim_scratch.h"

namespace pdd {

/// Hamming distance generalized to unequal lengths: positions beyond the
/// shorter string count as mismatches.
size_t GeneralizedHammingDistance(std::string_view a, std::string_view b);

/// Levenshtein (edit) distance. The scratch overload reuses the
/// caller's DP rows; the two-argument form borrows the thread-local
/// scratch, so neither allocates after warmup.
size_t LevenshteinDistance(std::string_view a, std::string_view b);
size_t LevenshteinDistance(std::string_view a, std::string_view b,
                           SimScratch& scratch);

/// Exact Levenshtein distance via Ukkonen band doubling: the DP is
/// restricted to a diagonal band that starts at the length difference
/// and doubles until the result certifies itself (distance <= band).
/// Same integer as LevenshteinDistance, asymptotically O(d·min(n,m))
/// for similar strings instead of O(n·m).
size_t BandedLevenshteinDistance(std::string_view a, std::string_view b,
                                 SimScratch& scratch);

/// Damerau-Levenshtein distance, optimal-string-alignment variant
/// (adjacent transposition counts as one edit).
size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b);
size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b,
                                  SimScratch& scratch);

/// Length of the longest common subsequence.
size_t LongestCommonSubsequence(std::string_view a, std::string_view b);
size_t LongestCommonSubsequence(std::string_view a, std::string_view b,
                                SimScratch& scratch);

/// Normalized Hamming similarity: matching positions / max length.
/// Reproduces the paper's values: sim(Tim,Kim)=2/3,
/// sim(machinist,mechanic)=5/9, sim(Jim,Tom)=1/3.
class NormalizedHammingComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "hamming"; }
};

/// Levenshtein similarity: 1 - distance / max length.
class LevenshteinComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "levenshtein"; }
};

/// Damerau-Levenshtein (OSA) similarity: 1 - distance / max length.
class DamerauLevenshteinComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "damerau"; }
};

/// LCS similarity: |lcs| / max length.
class LcsComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "lcs"; }
};

}  // namespace pdd

#endif  // PDD_SIM_EDIT_DISTANCE_H_
