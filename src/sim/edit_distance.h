// Edit-distance-family comparison functions: normalized Hamming (the
// comparator used in all of the paper's worked examples), Levenshtein,
// Damerau-Levenshtein (OSA), and longest common subsequence.

#ifndef PDD_SIM_EDIT_DISTANCE_H_
#define PDD_SIM_EDIT_DISTANCE_H_

#include <cstddef>

#include "sim/comparator.h"

namespace pdd {

/// Hamming distance generalized to unequal lengths: positions beyond the
/// shorter string count as mismatches.
size_t GeneralizedHammingDistance(std::string_view a, std::string_view b);

/// Levenshtein (edit) distance.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Damerau-Levenshtein distance, optimal-string-alignment variant
/// (adjacent transposition counts as one edit).
size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// Length of the longest common subsequence.
size_t LongestCommonSubsequence(std::string_view a, std::string_view b);

/// Normalized Hamming similarity: matching positions / max length.
/// Reproduces the paper's values: sim(Tim,Kim)=2/3,
/// sim(machinist,mechanic)=5/9, sim(Jim,Tom)=1/3.
class NormalizedHammingComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "hamming"; }
};

/// Levenshtein similarity: 1 - distance / max length.
class LevenshteinComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "levenshtein"; }
};

/// Damerau-Levenshtein (OSA) similarity: 1 - distance / max length.
class DamerauLevenshteinComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "damerau"; }
};

/// LCS similarity: |lcs| / max length.
class LcsComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "lcs"; }
};

}  // namespace pdd

#endif  // PDD_SIM_EDIT_DISTANCE_H_
