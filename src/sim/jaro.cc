#include "sim/jaro.h"

#include <algorithm>
#include <vector>

namespace pdd {

double JaroSimilarity(std::string_view a, std::string_view b,
                      SimScratch& scratch) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t match_window =
      std::max(a.size(), b.size()) / 2 == 0
          ? 0
          : std::max(a.size(), b.size()) / 2 - 1;
  std::vector<unsigned char>& a_matched = scratch.flags_a;
  std::vector<unsigned char>& b_matched = scratch.flags_b;
  a_matched.assign(a.size(), 0);
  b_matched.assign(b.size(), 0);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = 1;
        b_matched[j] = 1;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  return JaroSimilarity(a, b, ThreadLocalSimScratch());
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale, SimScratch& scratch) {
  double jaro = JaroSimilarity(a, b, scratch);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  return JaroWinklerSimilarity(a, b, prefix_scale, ThreadLocalSimScratch());
}

}  // namespace pdd
