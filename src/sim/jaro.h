// Jaro and Jaro-Winkler similarity (standard record-linkage comparators,
// cited by the paper via Elmagarmid et al. [15]).

#ifndef PDD_SIM_JARO_H_
#define PDD_SIM_JARO_H_

#include "sim/comparator.h"
#include "sim/sim_scratch.h"

namespace pdd {

/// Jaro similarity. The scratch overload reuses the caller's match-flag
/// buffers; the two-argument form borrows the thread-local scratch, so
/// neither allocates after warmup.
double JaroSimilarity(std::string_view a, std::string_view b);
double JaroSimilarity(std::string_view a, std::string_view b,
                      SimScratch& scratch);

/// Jaro-Winkler similarity with prefix scale `p` (default 0.1) over at
/// most the first four characters.
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale, SimScratch& scratch);

/// Jaro similarity comparator.
class JaroComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override {
    return JaroSimilarity(a, b);
  }
  std::string name() const override { return "jaro"; }
};

/// Jaro-Winkler comparator.
class JaroWinklerComparator : public Comparator {
 public:
  explicit JaroWinklerComparator(double prefix_scale = 0.1)
      : prefix_scale_(prefix_scale) {}
  double Compare(std::string_view a, std::string_view b) const override {
    return JaroWinklerSimilarity(a, b, prefix_scale_);
  }
  std::string name() const override { return "jaro_winkler"; }

 private:
  double prefix_scale_;
};

}  // namespace pdd

#endif  // PDD_SIM_JARO_H_
