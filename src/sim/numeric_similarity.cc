#include "sim/numeric_similarity.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace pdd {

double NumericComparator::Compare(std::string_view a, std::string_view b) const {
  double x = 0.0, y = 0.0;
  if (!ParseDouble(a, &x) || !ParseDouble(b, &y)) {
    return a == b ? 1.0 : 0.0;
  }
  if (scale_ <= 0.0) return x == y ? 1.0 : 0.0;
  return std::max(0.0, 1.0 - std::abs(x - y) / scale_);
}

double RelativeNumericComparator::Compare(std::string_view a,
                                          std::string_view b) const {
  double x = 0.0, y = 0.0;
  if (!ParseDouble(a, &x) || !ParseDouble(b, &y)) {
    return a == b ? 1.0 : 0.0;
  }
  double denom = std::max(std::abs(x), std::abs(y));
  if (denom == 0.0) return 1.0;
  return std::max(0.0, 1.0 - std::abs(x - y) / denom);
}

}  // namespace pdd
