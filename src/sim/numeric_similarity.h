// Similarity for numeric attributes (astronomy workloads: positions,
// magnitudes). Values are still carried as strings in the data model;
// this comparator parses them.

#ifndef PDD_SIM_NUMERIC_SIMILARITY_H_
#define PDD_SIM_NUMERIC_SIMILARITY_H_

#include "sim/comparator.h"

namespace pdd {

/// Linear-decay numeric similarity: max(0, 1 - |a-b| / scale).
/// Inputs that fail to parse as doubles fall back to exact string match.
class NumericComparator : public Comparator {
 public:
  /// `scale` is the difference at which similarity reaches 0; must be > 0.
  explicit NumericComparator(double scale = 1.0) : scale_(scale) {}
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "numeric"; }

 private:
  double scale_;
};

/// Relative numeric similarity: max(0, 1 - |a-b| / max(|a|,|b|)), with
/// 1 for two zeros. Suits magnitude-like attributes without a fixed scale.
class RelativeNumericComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "numeric_rel"; }
};

}  // namespace pdd

#endif  // PDD_SIM_NUMERIC_SIMILARITY_H_
