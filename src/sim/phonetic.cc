#include "sim/phonetic.h"

#include <cctype>

#include "util/string_util.h"

namespace pdd {

namespace {

// Soundex digit per letter; 0 means the letter is ignored (vowels, h, w, y).
char SoundexDigit(char c) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

bool IsHW(char c) {
  char l = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return l == 'h' || l == 'w';
}

}  // namespace

std::string Soundex(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && !std::isalpha(static_cast<unsigned char>(s[i]))) ++i;
  if (i == s.size()) return "0000";
  std::string code(1, static_cast<char>(
                          std::toupper(static_cast<unsigned char>(s[i]))));
  char prev_digit = SoundexDigit(s[i]);
  for (++i; i < s.size() && code.size() < 4; ++i) {
    if (!std::isalpha(static_cast<unsigned char>(s[i]))) continue;
    char digit = SoundexDigit(s[i]);
    if (digit == '0') {
      // h/w do not reset the previous digit; vowels do.
      if (!IsHW(s[i])) prev_digit = '0';
      continue;
    }
    if (digit != prev_digit) code += digit;
    prev_digit = digit;
  }
  while (code.size() < 4) code += '0';
  return code;
}

double SoundexComparator::Compare(std::string_view a,
                                  std::string_view b) const {
  std::string ca = Soundex(a), cb = Soundex(b);
  size_t agree = 0;
  for (size_t i = 0; i < 4; ++i) {
    if (ca[i] == cb[i]) ++agree;
  }
  return static_cast<double>(agree) / 4.0;
}

SynonymComparator::SynonymComparator(
    std::vector<std::vector<std::string>> groups, const Comparator* inner,
    double synonym_score)
    : groups_(std::move(groups)),
      inner_(inner),
      synonym_score_(synonym_score) {
  for (auto& group : groups_) {
    for (auto& term : group) term = ToLower(term);
  }
}

int SynonymComparator::GroupOf(std::string_view term) const {
  std::string needle = ToLower(term);
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (const std::string& t : groups_[g]) {
      if (t == needle) return static_cast<int>(g);
    }
  }
  return -1;
}

double SynonymComparator::Compare(std::string_view a,
                                  std::string_view b) const {
  if (EqualsIgnoreCase(a, b)) return 1.0;
  int ga = GroupOf(a);
  if (ga >= 0 && ga == GroupOf(b)) return synonym_score_;
  return inner_->Compare(a, b);
}

}  // namespace pdd
