// Phonetic (Soundex) and synonym-table comparators — the library's stand-in
// for the paper's "semantic means (glossaries or ontologies)".

#ifndef PDD_SIM_PHONETIC_H_
#define PDD_SIM_PHONETIC_H_

#include <string>
#include <vector>

#include "sim/comparator.h"

namespace pdd {

/// American Soundex code of `s` ("Robert" -> "R163"). Non-alphabetic
/// leading characters are skipped; an empty input yields "0000".
std::string Soundex(std::string_view s);

/// 1 when Soundex codes agree, else a partial score of
/// (matching code positions)/4 — sounds-alike evidence for names.
class SoundexComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "soundex"; }
};

/// Synonym-table comparator: values in the same synonym group score
/// `synonym_score`; otherwise an inner comparator decides. Stands in for
/// glossary/ontology lookups (e.g. job titles: baker ~ confectioner).
class SynonymComparator : public Comparator {
 public:
  /// `groups` lists synonym sets; `inner` must outlive this comparator.
  SynonymComparator(std::vector<std::vector<std::string>> groups,
                    const Comparator* inner, double synonym_score = 0.9);
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "synonym"; }

 private:
  /// Group index per canonicalized (lower-cased) term; -1 when absent.
  int GroupOf(std::string_view term) const;

  std::vector<std::vector<std::string>> groups_;
  const Comparator* inner_;
  double synonym_score_;
};

}  // namespace pdd

#endif  // PDD_SIM_PHONETIC_H_
