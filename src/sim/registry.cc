#include "sim/registry.h"

#include <algorithm>
#include <map>

#include "sim/columnar_kernels.h"
#include "sim/edit_distance.h"
#include "sim/jaro.h"
#include "sim/numeric_similarity.h"
#include "sim/phonetic.h"
#include "sim/token_similarity.h"

namespace pdd {

namespace {

const std::map<std::string, const Comparator*, std::less<>>& BuiltinMap() {
  static const auto* map = [] {
    static ExactComparator exact;
    static ExactIgnoreCaseComparator exact_nocase;
    static PrefixComparator prefix;
    static NormalizedHammingComparator hamming;
    static LevenshteinComparator levenshtein;
    static DamerauLevenshteinComparator damerau;
    static LcsComparator lcs;
    static JaroComparator jaro;
    static JaroWinklerComparator jaro_winkler;
    static QGramComparator qgram2(2);
    static QGramComparator qgram3(3);
    static JaccardTokenComparator jaccard;
    static DiceTokenComparator dice;
    static CosineQGramComparator cosine(2);
    static MongeElkanComparator monge_elkan(&jaro_winkler);
    static SoundexComparator soundex;
    static NumericComparator numeric(1.0);
    static RelativeNumericComparator numeric_rel;
    auto* m = new std::map<std::string, const Comparator*, std::less<>>{
        {"exact", &exact},
        {"exact_nocase", &exact_nocase},
        {"prefix", &prefix},
        {"hamming", &hamming},
        {"levenshtein", &levenshtein},
        {"damerau", &damerau},
        {"lcs", &lcs},
        {"jaro", &jaro},
        {"jaro_winkler", &jaro_winkler},
        {"qgram2", &qgram2},
        {"qgram3", &qgram3},
        {"jaccard", &jaccard},
        {"dice", &dice},
        {"cosine", &cosine},
        {"monge_elkan", &monge_elkan},
        {"soundex", &soundex},
        {"numeric", &numeric},
        {"numeric_rel", &numeric_rel},
    };
    return m;
  }();
  return *map;
}

}  // namespace

Result<const Comparator*> GetComparator(std::string_view name) {
  const auto& map = BuiltinMap();
  auto it = map.find(name);
  if (it == map.end()) {
    return Status::NotFound("no comparator named '" + std::string(name) + "'");
  }
  return it->second;
}

std::vector<std::string> ComparatorNames() {
  std::vector<std::string> names;
  for (const auto& [name, cmp] : BuiltinMap()) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

bool ComparatorHasColumnarKernel(std::string_view name) {
  return BuiltinMap().count(name) > 0 &&
         FindColumnarKernel(name) != nullptr;
}

}  // namespace pdd
