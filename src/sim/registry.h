// Name-based lookup of the built-in comparison functions.

#ifndef PDD_SIM_REGISTRY_H_
#define PDD_SIM_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "sim/comparator.h"
#include "util/status.h"

namespace pdd {

/// Returns the built-in comparator registered under `name`
/// ("exact", "exact_nocase", "prefix", "hamming", "levenshtein",
/// "damerau", "lcs", "jaro", "jaro_winkler", "qgram2", "qgram3",
/// "jaccard", "dice", "cosine", "monge_elkan", "soundex", "numeric",
/// "numeric_rel"). The returned pointer has static storage duration.
Result<const Comparator*> GetComparator(std::string_view name);

/// Names of all built-in comparators, sorted.
std::vector<std::string> ComparatorNames();

/// True when the named comparator has a columnar kernel (the registry's
/// `columnar` capability flag, mirroring the reductions'
/// `native_streaming`): a plan selecting only such comparators can take
/// the batched kernel path with bit-identical results. Scalar-only
/// comparators (monge_elkan, soundex) and unknown names return false.
bool ComparatorHasColumnarKernel(std::string_view name);

}  // namespace pdd

#endif  // PDD_SIM_REGISTRY_H_
