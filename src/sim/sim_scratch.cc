#include "sim/sim_scratch.h"

namespace pdd {

SimScratch& ThreadLocalSimScratch() {
  static thread_local SimScratch scratch;
  return scratch;
}

}  // namespace pdd
