// Reusable per-worker scratch for the similarity hot path. The
// edit-distance family and Jaro used to allocate their DP rows / match
// flags on every Compare() call — millions of times per run. All
// scratch-hungry comparators now borrow these buffers instead: the
// vectors only ever grow (assign() never shrinks capacity), so after
// the first few calls a worker's compare loop runs allocation-free.
//
// One SimScratch per thread of execution: the registry comparators
// reach the thread-local instance below, while the columnar kernel
// path (match/columnar_matcher.h) owns one per matcher so its lifetime
// is explicit. The buffers carry no state between calls — every user
// assign()s before reading — so sharing one instance across different
// comparators is safe.

#ifndef PDD_SIM_SIM_SCRATCH_H_
#define PDD_SIM_SIM_SCRATCH_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace pdd {

struct SimScratch {
  /// Rolling DP rows (Levenshtein: row0; Damerau/OSA: row0-row2;
  /// LCS: row0, row1; banded kernels reuse the same rows).
  std::vector<size_t> row0;
  std::vector<size_t> row1;
  std::vector<size_t> row2;
  /// Jaro matched-character flags (0/1 per position).
  std::vector<unsigned char> flags_a;
  std::vector<unsigned char> flags_b;
  /// Token / q-gram views for the columnar token kernels. Gram views
  /// point into pad_a / pad_b (the padded copies).
  std::vector<std::string_view> items_a;
  std::vector<std::string_view> items_b;
  std::string pad_a;
  std::string pad_b;
};

/// The calling thread's scratch instance (static storage; never freed
/// until thread exit). Registry comparators route through this, so
/// plain Comparator::Compare calls are allocation-free after warmup.
SimScratch& ThreadLocalSimScratch();

}  // namespace pdd

#endif  // PDD_SIM_SIM_SCRATCH_H_
