#include "sim/tfidf.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/string_util.h"

namespace pdd {

IdfTable IdfTable::Train(const std::vector<std::string>& corpus) {
  IdfTable table;
  std::map<std::string, size_t> doc_freq;
  for (const std::string& doc : corpus) {
    std::set<std::string> seen;
    for (const std::string& token : SplitWhitespace(ToLower(doc))) {
      seen.insert(token);
    }
    for (const std::string& token : seen) ++doc_freq[token];
  }
  double n = static_cast<double>(std::max<size_t>(1, corpus.size()));
  for (const auto& [token, df] : doc_freq) {
    table.idf_[token] = std::log(1.0 + n / static_cast<double>(df));
  }
  table.default_idf_ = std::log(1.0 + n);
  return table;
}

double IdfTable::Weight(const std::string& token) const {
  auto it = idf_.find(token);
  return it != idf_.end() ? it->second : default_idf_;
}

namespace {

// Lower-cased token -> tf*idf weight, L2-normalized.
std::map<std::string, double> WeightedVector(std::string_view text,
                                             const IdfTable& idf) {
  std::map<std::string, double> vec;
  for (const std::string& token : SplitWhitespace(ToLower(text))) {
    vec[token] += idf.Weight(token);
  }
  double norm = 0.0;
  for (const auto& [token, w] : vec) norm += w * w;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (auto& [token, w] : vec) w /= norm;
  }
  return vec;
}

}  // namespace

double TfIdfComparator::Compare(std::string_view a, std::string_view b) const {
  if (Trim(a).empty() && Trim(b).empty()) return 1.0;
  std::map<std::string, double> va = WeightedVector(a, *idf_);
  std::map<std::string, double> vb = WeightedVector(b, *idf_);
  if (va.empty() || vb.empty()) return va.empty() == vb.empty() ? 1.0 : 0.0;
  double dot = 0.0;
  for (const auto& [token, w] : va) {
    auto it = vb.find(token);
    if (it != vb.end()) dot += w * it->second;
  }
  return std::min(1.0, dot);
}

double SoftTfIdfComparator::Compare(std::string_view a,
                                    std::string_view b) const {
  if (Trim(a).empty() && Trim(b).empty()) return 1.0;
  std::map<std::string, double> va = WeightedVector(a, *idf_);
  std::map<std::string, double> vb = WeightedVector(b, *idf_);
  if (va.empty() || vb.empty()) return va.empty() == vb.empty() ? 1.0 : 0.0;
  // Greedy best-pair alignment of close tokens (per CLOSE(θ, a, b)).
  double score = 0.0;
  for (const auto& [ta, wa] : va) {
    double best_sim = 0.0;
    double best_weight = 0.0;
    for (const auto& [tb, wb] : vb) {
      double sim = inner_->Compare(ta, tb);
      if (sim >= token_threshold_ && sim > best_sim) {
        best_sim = sim;
        best_weight = wb;
      }
    }
    if (best_sim > 0.0) score += wa * best_weight * best_sim;
  }
  return std::min(1.0, score);
}

}  // namespace pdd
