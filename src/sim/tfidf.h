// Corpus-weighted token similarity: TF-IDF cosine and SoftTFIDF
// (Cohen et al.'s hybrid of TF-IDF weighting with a secondary
// character-level comparator). Rare tokens (surnames) count more than
// ubiquitous ones ("inc", "street") — the standard upgrade over plain
// Jaccard for multi-token fields.

#ifndef PDD_SIM_TFIDF_H_
#define PDD_SIM_TFIDF_H_

#include <map>
#include <string>
#include <vector>

#include "sim/comparator.h"

namespace pdd {

/// Inverse-document-frequency table trained from a corpus of field
/// values (one document per value; tokens are whitespace-separated and
/// lower-cased).
class IdfTable {
 public:
  /// Trains from corpus values. Unseen tokens receive the maximal idf.
  static IdfTable Train(const std::vector<std::string>& corpus);

  /// idf weight of a (lower-cased) token.
  double Weight(const std::string& token) const;

  /// Number of distinct trained tokens.
  size_t size() const { return idf_.size(); }

 private:
  std::map<std::string, double> idf_;
  double default_idf_ = 1.0;
};

/// Cosine similarity of TF-IDF weighted token vectors.
class TfIdfComparator : public Comparator {
 public:
  /// `idf` must outlive the comparator.
  explicit TfIdfComparator(const IdfTable* idf) : idf_(idf) {}
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "tfidf"; }

 private:
  const IdfTable* idf_;
};

/// SoftTFIDF: tokens need not match exactly — pairs whose secondary
/// similarity exceeds `token_threshold` contribute, scaled by that
/// similarity. Robust to per-token typos in multi-token fields.
class SoftTfIdfComparator : public Comparator {
 public:
  /// `idf` and `inner` must outlive the comparator.
  SoftTfIdfComparator(const IdfTable* idf, const Comparator* inner,
                      double token_threshold = 0.9)
      : idf_(idf), inner_(inner), token_threshold_(token_threshold) {}
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "soft_tfidf"; }

 private:
  const IdfTable* idf_;
  const Comparator* inner_;
  double token_threshold_;
};

}  // namespace pdd

#endif  // PDD_SIM_TFIDF_H_
