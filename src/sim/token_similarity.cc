#include "sim/token_similarity.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "util/string_util.h"

namespace pdd {

double QGramComparator::Compare(std::string_view a, std::string_view b) const {
  if (a.empty() && b.empty()) return 1.0;
  std::vector<std::string> ga = QGrams(a, q_);
  std::vector<std::string> gb = QGrams(b, q_);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  std::map<std::string, size_t> counts;
  for (const std::string& g : ga) ++counts[g];
  size_t intersection = 0;
  for (const std::string& g : gb) {
    auto it = counts.find(g);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++intersection;
    }
  }
  return 2.0 * static_cast<double>(intersection) /
         static_cast<double>(ga.size() + gb.size());
}

namespace {

std::set<std::string> TokenSet(std::string_view s) {
  std::vector<std::string> tokens = SplitWhitespace(s);
  return {tokens.begin(), tokens.end()};
}

}  // namespace

double JaccardTokenComparator::Compare(std::string_view a,
                                       std::string_view b) const {
  std::set<std::string> ta = TokenSet(a), tb = TokenSet(b);
  if (ta.empty() && tb.empty()) return 1.0;
  size_t intersection = 0;
  for (const std::string& t : ta) intersection += tb.count(t);
  size_t uni = ta.size() + tb.size() - intersection;
  return uni == 0 ? 1.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

double DiceTokenComparator::Compare(std::string_view a,
                                    std::string_view b) const {
  std::set<std::string> ta = TokenSet(a), tb = TokenSet(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  size_t intersection = 0;
  for (const std::string& t : ta) intersection += tb.count(t);
  return 2.0 * static_cast<double>(intersection) /
         static_cast<double>(ta.size() + tb.size());
}

double CosineQGramComparator::Compare(std::string_view a,
                                      std::string_view b) const {
  if (a.empty() && b.empty()) return 1.0;
  std::map<std::string, double> va, vb;
  for (const std::string& g : QGrams(a, q_)) va[g] += 1.0;
  for (const std::string& g : QGrams(b, q_)) vb[g] += 1.0;
  if (va.empty() && vb.empty()) return 1.0;
  if (va.empty() || vb.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [g, w] : va) {
    na += w * w;
    auto it = vb.find(g);
    if (it != vb.end()) dot += w * it->second;
  }
  for (const auto& [g, w] : vb) nb += w * w;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double MongeElkanComparator::Compare(std::string_view a,
                                     std::string_view b) const {
  std::vector<std::string> ta = SplitWhitespace(a);
  std::vector<std::string> tb = SplitWhitespace(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  auto directed = [&](const std::vector<std::string>& xs,
                      const std::vector<std::string>& ys) {
    double total = 0.0;
    for (const std::string& x : xs) {
      double best = 0.0;
      for (const std::string& y : ys) {
        best = std::max(best, inner_->Compare(x, y));
      }
      total += best;
    }
    return total / static_cast<double>(xs.size());
  };
  return (directed(ta, tb) + directed(tb, ta)) / 2.0;
}

}  // namespace pdd
