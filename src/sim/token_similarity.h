// Token- and q-gram-based comparison functions (n-grams are cited in
// Section III-C as standard syntactic means).

#ifndef PDD_SIM_TOKEN_SIMILARITY_H_
#define PDD_SIM_TOKEN_SIMILARITY_H_

#include <memory>

#include "sim/comparator.h"

namespace pdd {

/// Dice coefficient over padded character q-grams (multiset semantics):
/// 2|A ∩ B| / (|A| + |B|).
class QGramComparator : public Comparator {
 public:
  explicit QGramComparator(size_t q = 2) : q_(q) {}
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "qgram" + std::to_string(q_); }

 private:
  size_t q_;
};

/// Jaccard coefficient over whitespace tokens: |A ∩ B| / |A ∪ B|.
class JaccardTokenComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "jaccard"; }
};

/// Dice coefficient over whitespace token sets.
class DiceTokenComparator : public Comparator {
 public:
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "dice"; }
};

/// Cosine similarity of q-gram frequency vectors.
class CosineQGramComparator : public Comparator {
 public:
  explicit CosineQGramComparator(size_t q = 2) : q_(q) {}
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "cosine"; }

 private:
  size_t q_;
};

/// Monge-Elkan similarity: mean over the tokens of one string of the best
/// inner-comparator match in the other, symmetrized by averaging both
/// directions. Suits multi-token fields (full names, addresses).
class MongeElkanComparator : public Comparator {
 public:
  /// `inner` scores token pairs; must outlive this comparator.
  explicit MongeElkanComparator(const Comparator* inner) : inner_(inner) {}
  double Compare(std::string_view a, std::string_view b) const override;
  std::string name() const override { return "monge_elkan"; }

 private:
  const Comparator* inner_;
};

}  // namespace pdd

#endif  // PDD_SIM_TOKEN_SIMILARITY_H_
