// Overflow-guarded size arithmetic for pair-universe accounting. The
// candidate universe of a full run is n(n-1)/2, which wraps size_t for
// n past ~6.1e9 on 64-bit (and already past ~92k on 32-bit size_t);
// streams report that universe as a denominator, so the counters must
// saturate instead of wrapping to a small lie.

#ifndef PDD_UTIL_CHECKED_MATH_H_
#define PDD_UTIL_CHECKED_MATH_H_

#include <cstddef>
#include <limits>

namespace pdd {

/// a * b, saturating at size_t max instead of wrapping.
inline size_t SaturatingMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  constexpr size_t kMax = std::numeric_limits<size_t>::max();
  if (a > kMax / b) return kMax;
  return a * b;
}

/// a + b, saturating at size_t max instead of wrapping.
inline size_t SaturatingAdd(size_t a, size_t b) {
  constexpr size_t kMax = std::numeric_limits<size_t>::max();
  if (a > kMax - b) return kMax;
  return a + b;
}

/// The triangular pair count n(n-1)/2 (the unreduced pair universe of n
/// tuples), saturating. Divides the even factor first so the
/// intermediate product is the smallest possible.
inline size_t TriangularPairCount(size_t n) {
  if (n < 2) return 0;
  return (n % 2 == 0) ? SaturatingMul(n / 2, n - 1)
                      : SaturatingMul(n, (n - 1) / 2);
}

}  // namespace pdd

#endif  // PDD_UTIL_CHECKED_MATH_H_
