#include "util/random.h"

#include <cmath>

namespace pdd {

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return Discrete(weights);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace pdd
