// Deterministic random number generation for data generation and sampling.
//
// All randomized components of the library take an explicit Rng so that
// experiments are reproducible from a seed.

#ifndef PDD_UTIL_RANDOM_H_
#define PDD_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pdd {

/// Seedable pseudo-random generator wrapping a fixed engine
/// (mt19937_64) so sequences are stable across platforms.
class Rng {
 public:
  /// Constructs with the given seed; equal seeds yield equal sequences.
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). n must be > 0.
  size_t Index(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Normally distributed double.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Zipf-distributed index in [0, n) with skew `s` (s=0 is uniform).
  /// Uses inverse-CDF over precomputed weights; intended for modest n.
  size_t Zipf(size_t n, double s);

  /// Samples an index from unnormalized non-negative weights.
  /// Returns 0 when all weights are zero.
  size_t Discrete(const std::vector<double>& weights);

  /// Geometric number of trials until first success (>= 0 failures).
  int Geometric(double p) {
    return std::geometric_distribution<int>(p)(engine_);
  }

  /// Poisson-distributed count with the given mean.
  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  /// Access to the underlying engine for standard distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pdd

#endif  // PDD_UTIL_RANDOM_H_
