// Status / Result<T> error handling for the pdd library.
//
// The public API avoids exceptions (RocksDB idiom): fallible operations
// return a Status, or a Result<T> when they also produce a value.

#ifndef PDD_UTIL_STATUS_H_
#define PDD_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pdd {

/// Machine-readable error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kParseError = 5,
  kResourceExhausted = 6,
  kInternal = 7,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy; the
/// message is only allocated on error paths.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union, analogous to absl::StatusOr<T>.
///
/// Either holds a T (status().ok()) or an error Status. Dereferencing a
/// non-OK Result is a programming error caught by assert in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicitly, so functions can `return value;`).
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Constructs from an error status. `status.ok()` is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is held.
  const Status& status() const { return status_; }

  /// Access the held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  /// Rvalue dereference returns by value so that iterating `*Call()`
  /// directly (range-for over a temporary Result) stays lifetime-safe.
  T operator*() && { return std::move(*value_); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates errors to the caller: `PDD_RETURN_IF_ERROR(DoThing());`
#define PDD_RETURN_IF_ERROR(expr)           \
  do {                                      \
    ::pdd::Status _pdd_status = (expr);     \
    if (!_pdd_status.ok()) return _pdd_status; \
  } while (0)

/// Unwraps a Result into `lhs`, propagating errors:
/// `PDD_ASSIGN_OR_RETURN(auto v, ComputeV());`
#define PDD_ASSIGN_OR_RETURN(lhs, expr)                  \
  PDD_ASSIGN_OR_RETURN_IMPL_(                            \
      PDD_STATUS_CONCAT_(_pdd_result, __LINE__), lhs, expr)
#define PDD_STATUS_CONCAT_INNER_(a, b) a##b
#define PDD_STATUS_CONCAT_(a, b) PDD_STATUS_CONCAT_INNER_(a, b)
#define PDD_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

}  // namespace pdd

#endif  // PDD_UTIL_STATUS_H_
