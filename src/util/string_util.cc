#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace pdd {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view Prefix(std::string_view s, size_t n) {
  return s.substr(0, std::min(n, s.size()));
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

std::string HexU64(uint64_t v) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not available everywhere; strtod on a
  // NUL-terminated copy is portable and sufficient here.
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string> QGrams(std::string_view s, size_t q, char pad) {
  std::vector<std::string> grams;
  if (q == 0) return grams;
  std::string padded;
  if (pad != '\0') {
    padded.assign(q - 1, pad);
    padded += s;
    padded.append(q - 1, pad);
  } else {
    padded.assign(s);
  }
  if (padded.size() < q) return grams;
  grams.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, q));
  }
  return grams;
}

}  // namespace pdd
