// Small string helpers shared across the library.

#ifndef PDD_UTIL_STRING_UTIL_H_
#define PDD_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pdd {

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

/// ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// The first `n` characters of `s` (all of `s` if shorter).
std::string_view Prefix(std::string_view s, size_t n);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Formats a double with `digits` significant decimals, trimming zeros
/// ("0.59", "1", "0.8383").
std::string FormatDouble(double v, int digits = 6);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// Fixed-width (16 digit) lower-case hex form of a 64-bit value —
/// the rendering plan fingerprints and cache snapshots share.
std::string HexU64(uint64_t v);

/// The multiset of character q-grams of `s`, padded with `pad` (use '\0' to
/// disable padding). q must be >= 1.
std::vector<std::string> QGrams(std::string_view s, size_t q, char pad = '#');

}  // namespace pdd

#endif  // PDD_UTIL_STRING_UTIL_H_
