// Fixed-width ASCII table printing for figure-reproduction benchmarks.

#ifndef PDD_UTIL_TABLE_PRINTER_H_
#define PDD_UTIL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace pdd {

/// Accumulates rows of string cells and renders an aligned ASCII table.
///
/// Used by the bench/ figure-reproduction binaries so that regenerated paper
/// figures are easy to eyeball against the original.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells are rendered empty, extra cells dropped.
  void AddRow(std::vector<std::string> cells);

  /// Renders the full table (header, separator, rows).
  std::string ToString() const;

  /// Writes ToString() to the stream.
  void Print(std::ostream& os) const;

  /// Number of data rows added so far.
  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdd

#endif  // PDD_UTIL_TABLE_PRINTER_H_
