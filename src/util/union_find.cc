#include "util/union_find.h"

#include <unordered_map>

namespace pdd {

std::vector<std::vector<size_t>> UnionFind::Groups() {
  std::unordered_map<size_t, size_t> root_to_group;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < parent_.size(); ++i) {
    size_t root = Find(i);
    auto [it, inserted] = root_to_group.emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  return groups;
}

}  // namespace pdd
