// Disjoint-set union with path compression and union by size — the
// substrate for grouping pairwise match decisions into entity clusters
// (entity resolution / merge-purge, Section III).

#ifndef PDD_UTIL_UNION_FIND_H_
#define PDD_UTIL_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <utility>
#include <vector>

namespace pdd {

/// Disjoint sets over indices [0, n).
class UnionFind {
 public:
  /// Creates n singleton sets.
  explicit UnionFind(size_t n)
      : parent_(n), size_(n, 1), set_count_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of `x`'s set (with path compression).
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of `a` and `b`; returns false when already joined.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --set_count_;
    return true;
  }

  /// True iff `a` and `b` share a set.
  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Size of `x`'s set.
  size_t SetSize(size_t x) { return size_[Find(x)]; }

  /// Number of elements.
  size_t size() const { return parent_.size(); }

  /// Number of disjoint sets.
  size_t set_count() const { return set_count_; }

  /// Materializes the sets as index groups in ascending member order,
  /// ordered by each group's smallest member.
  std::vector<std::vector<size_t>> Groups();

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t set_count_;
};

}  // namespace pdd

#endif  // PDD_UTIL_UNION_FIND_H_
