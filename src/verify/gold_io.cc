#include "verify/gold_io.h"

#include "util/string_util.h"

namespace pdd {

std::string SerializeGoldStandard(const GoldStandard& gold) {
  std::string out;
  for (const IdPair& pair : gold.Pairs()) {
    out += pair.first + "," + pair.second + "\n";
  }
  return out;
}

Result<GoldStandard> ParseGoldStandard(std::string_view text) {
  GoldStandard gold;
  size_t line_no = 0;
  for (const std::string& line : Split(text, '\n')) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = Split(trimmed, ',');
    if (fields.size() != 2) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected 'id1,id2'");
    }
    std::string a(Trim(fields[0]));
    std::string b(Trim(fields[1]));
    if (a.empty() || b.empty()) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": empty id");
    }
    gold.AddMatch(a, b);
  }
  return gold;
}

}  // namespace pdd
