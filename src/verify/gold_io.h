// Text I/O for gold standards: one pair per line, "id1,id2"
// ('#' comments and blank lines ignored).

#ifndef PDD_VERIFY_GOLD_IO_H_
#define PDD_VERIFY_GOLD_IO_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "verify/gold_standard.h"

namespace pdd {

/// Serializes the gold pairs, one "id1,id2" line each (canonical order).
std::string SerializeGoldStandard(const GoldStandard& gold);

/// Parses the format; fails (with the line number) on lines that are not
/// exactly two non-empty comma-separated fields.
Result<GoldStandard> ParseGoldStandard(std::string_view text);

}  // namespace pdd

#endif  // PDD_VERIFY_GOLD_IO_H_
