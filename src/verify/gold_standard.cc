#include "verify/gold_standard.h"

namespace pdd {

IdPair MakeIdPair(std::string a, std::string b) {
  if (b < a) std::swap(a, b);
  return {std::move(a), std::move(b)};
}

void GoldStandard::AddMatch(const std::string& a, const std::string& b) {
  if (a == b) return;
  pairs_.insert(MakeIdPair(a, b));
}

bool GoldStandard::IsMatch(const std::string& a, const std::string& b) const {
  if (a == b) return false;
  return pairs_.count(MakeIdPair(a, b)) > 0;
}

size_t GoldStandard::CountCovered(const std::vector<IdPair>& candidates) const {
  size_t covered = 0;
  for (const IdPair& pair : candidates) {
    if (pairs_.count(MakeIdPair(pair.first, pair.second)) > 0) ++covered;
  }
  return covered;
}

}  // namespace pdd
