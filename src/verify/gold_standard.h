// Gold standards: the set of true duplicate pairs, keyed by tuple ids.

#ifndef PDD_VERIFY_GOLD_STANDARD_H_
#define PDD_VERIFY_GOLD_STANDARD_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace pdd {

/// Canonical unordered id pair (lexicographically ordered endpoints).
using IdPair = std::pair<std::string, std::string>;

/// Orders the endpoints of an id pair canonically.
IdPair MakeIdPair(std::string a, std::string b);

/// The set of true-duplicate tuple pairs of a dataset.
class GoldStandard {
 public:
  /// Records (a, b) as a true duplicate pair; order-insensitive,
  /// idempotent. Self pairs are ignored.
  void AddMatch(const std::string& a, const std::string& b);

  /// True iff (a, b) is a recorded duplicate pair.
  bool IsMatch(const std::string& a, const std::string& b) const;

  /// Number of recorded pairs.
  size_t size() const { return pairs_.size(); }

  /// All pairs in canonical order.
  std::vector<IdPair> Pairs() const { return {pairs_.begin(), pairs_.end()}; }

  /// Counts how many of `candidates` are gold pairs.
  size_t CountCovered(const std::vector<IdPair>& candidates) const;

 private:
  std::set<IdPair> pairs_;
};

}  // namespace pdd

#endif  // PDD_VERIFY_GOLD_STANDARD_H_
