#include "verify/metrics.h"

#include "util/string_util.h"

namespace pdd {

EffectivenessMetrics ComputeEffectiveness(const ConfusionCounts& counts) {
  EffectivenessMetrics m;
  const double tp = static_cast<double>(counts.true_positives);
  const double fp = static_cast<double>(counts.false_positives);
  const double fn = static_cast<double>(counts.false_negatives);
  const double tn = static_cast<double>(counts.true_negatives);
  if (tp + fp > 0.0) {
    m.precision = tp / (tp + fp);
  } else {
    m.precision = fn == 0.0 ? 1.0 : 0.0;  // nothing predicted
  }
  if (tp + fn > 0.0) {
    m.recall = tp / (tp + fn);
  } else {
    m.recall = fp == 0.0 ? 1.0 : 0.0;  // nothing to find
  }
  if (m.precision + m.recall > 0.0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  if (fp + tn > 0.0) m.false_positive_rate = fp / (fp + tn);
  if (tp + fn > 0.0) m.false_negative_rate = fn / (tp + fn);
  const double total = tp + fp + fn + tn;
  if (total > 0.0) m.accuracy = (tp + tn) / total;
  return m;
}

std::string EffectivenessMetrics::ToString() const {
  return "P=" + FormatDouble(precision, 4) + " R=" + FormatDouble(recall, 4) +
         " F1=" + FormatDouble(f1, 4) +
         " FPR=" + FormatDouble(false_positive_rate, 4) +
         " FNR=" + FormatDouble(false_negative_rate, 4);
}

ReductionMetrics ComputeReduction(size_t candidates, size_t total_pairs,
                                  size_t gold_covered, size_t gold_total) {
  ReductionMetrics m;
  if (total_pairs > 0) {
    m.reduction_ratio = 1.0 - static_cast<double>(candidates) /
                                  static_cast<double>(total_pairs);
  }
  m.pairs_completeness =
      gold_total > 0 ? static_cast<double>(gold_covered) /
                           static_cast<double>(gold_total)
                     : 1.0;
  m.pairs_quality = candidates > 0 ? static_cast<double>(gold_covered) /
                                         static_cast<double>(candidates)
                                   : (gold_total == 0 ? 1.0 : 0.0);
  return m;
}

std::string ReductionMetrics::ToString() const {
  return "RR=" + FormatDouble(reduction_ratio, 4) +
         " PC=" + FormatDouble(pairs_completeness, 4) +
         " PQ=" + FormatDouble(pairs_quality, 4);
}

}  // namespace pdd
