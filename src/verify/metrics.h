// Verification metrics (Section III-E): recall, precision, false
// negative/positive percentages and F1 for match effectiveness, plus
// reduction ratio / pairs completeness / pairs quality for search space
// reduction methods.

#ifndef PDD_VERIFY_METRICS_H_
#define PDD_VERIFY_METRICS_H_

#include <cstddef>
#include <string>

namespace pdd {

/// Confusion counts over tuple pairs.
struct ConfusionCounts {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  size_t true_negatives = 0;

  size_t total() const {
    return true_positives + false_positives + false_negatives +
           true_negatives;
  }
};

/// Effectiveness measures of Section III-E. Degenerate denominators
/// (no predicted / no actual matches) yield the conventional 0, except
/// that perfect emptiness (no gold matches and none predicted) scores 1.
struct EffectivenessMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// FP / (FP + TN): fraction of true non-matches declared matches.
  double false_positive_rate = 0.0;
  /// FN / (TP + FN): fraction of true matches missed.
  double false_negative_rate = 0.0;
  double accuracy = 0.0;

  /// One-line "P=.. R=.. F1=.." summary.
  std::string ToString() const;
};

/// Derives the effectiveness metrics from confusion counts.
EffectivenessMetrics ComputeEffectiveness(const ConfusionCounts& counts);

/// Quality measures of a search space reduction method.
struct ReductionMetrics {
  /// 1 - candidates / total pairs (how much work was saved).
  double reduction_ratio = 0.0;
  /// Fraction of true-match pairs surviving into the candidate set
  /// (recall of the reduction step).
  double pairs_completeness = 0.0;
  /// True-match pairs per candidate pair (precision of the reduction).
  double pairs_quality = 0.0;

  std::string ToString() const;
};

/// Computes reduction metrics. `gold_covered` counts gold pairs present
/// among the candidates, `gold_total` all gold pairs, `candidates` the
/// candidate pair count and `total_pairs` n(n-1)/2.
ReductionMetrics ComputeReduction(size_t candidates, size_t total_pairs,
                                  size_t gold_covered, size_t gold_total);

}  // namespace pdd

#endif  // PDD_VERIFY_METRICS_H_
