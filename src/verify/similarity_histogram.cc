#include "verify/similarity_histogram.h"

#include <algorithm>
#include <cstdio>

namespace pdd {

SimilarityHistogram::SimilarityHistogram(size_t buckets, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

void SimilarityHistogram::Add(double value) {
  double clamped = std::clamp(value, lo_, hi_);
  double span = hi_ - lo_;
  size_t idx =
      span <= 0.0
          ? 0
          : std::min(counts_.size() - 1,
                     static_cast<size_t>((clamped - lo_) / span *
                                         static_cast<double>(counts_.size())));
  ++counts_[idx];
  ++total_;
}

void SimilarityHistogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

double SimilarityHistogram::BucketLow(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string SimilarityHistogram::ToString(size_t max_bar_width) const {
  size_t max_count = 0;
  for (size_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "%5.2f-%5.2f |", BucketLow(i),
                  BucketLow(i + 1));
    out += label;
    size_t bar = max_count == 0
                     ? 0
                     : counts_[i] * max_bar_width / max_count;
    out += std::string(bar, '#');
    out += std::string(max_bar_width - bar, ' ');
    char count[32];
    std::snprintf(count, sizeof(count), "| %zu\n", counts_[i]);
    out += count;
  }
  return out;
}

}  // namespace pdd
