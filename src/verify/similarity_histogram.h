// Similarity histograms: the distribution of candidate-pair similarities
// a run produced. The two-mode shape (non-matches near 0, matches near
// 1) is what Fig. 2's thresholds carve up; the histogram makes threshold
// choice visible before a gold standard exists.

#ifndef PDD_VERIFY_SIMILARITY_HISTOGRAM_H_
#define PDD_VERIFY_SIMILARITY_HISTOGRAM_H_

#include <string>
#include <vector>

namespace pdd {

/// Fixed-width histogram over [lo, hi].
class SimilarityHistogram {
 public:
  /// Creates `buckets` equal-width buckets spanning [lo, hi].
  SimilarityHistogram(size_t buckets = 20, double lo = 0.0, double hi = 1.0);

  /// Adds one observation (clamped into [lo, hi]).
  void Add(double value);

  /// Adds many observations.
  void AddAll(const std::vector<double>& values);

  /// Count in bucket `i`.
  size_t bucket(size_t i) const { return counts_[i]; }

  /// Number of buckets.
  size_t bucket_count() const { return counts_.size(); }

  /// Total observations.
  size_t total() const { return total_; }

  /// The left edge of bucket `i`.
  double BucketLow(size_t i) const;

  /// ASCII rendering, one bucket per line:
  /// "0.40-0.45 |#########          | 123".
  std::string ToString(size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace pdd

#endif  // PDD_VERIFY_SIMILARITY_HISTOGRAM_H_
