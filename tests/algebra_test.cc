// Unit tests for the probabilistic relational algebra, including the
// paper's Section IV membership example (selection creating
// maybe-tuples with the exact probabilities the paper states).

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "pdb/algebra.h"

namespace pdd {
namespace {

// The paper's example: a person certainly 34 years old, jobless with
// confidence 90 % (job exists with probability 0.1).
XRelation PersonsRelation() {
  XRelation rel("people", Schema::Strings({"name", "age", "job"}));
  rel.AppendUnchecked(XTuple(
      "ann", {{{Value::Certain("Ann"), Value::Certain("34"),
                Value::Dist({{"clerk", 0.1}})},  // ⊥ mass 0.9
               1.0}}));
  rel.AppendUnchecked(XTuple(
      "bob", {{{Value::Certain("Bob"), Value::Certain("51"),
                Value::Certain("baker")},
               1.0}}));
  return rel;
}

TEST(AlgebraTest, PaperMembershipExample) {
  // Selecting "people having a job" gives Ann membership p = 0.1
  // (Section IV: "the probability that a corresponding tuple t2 belongs
  // to the second relation is only p(t2) = 0.1") and Bob p = 1.
  XRelation people = PersonsRelation();
  Result<XRelation> employed = SelectWhereExists(people, "job", "employed");
  ASSERT_TRUE(employed.ok());
  ASSERT_EQ(employed->size(), 2u);
  const XTuple& ann = employed->xtuple(0);
  EXPECT_EQ(ann.id(), "ann");
  EXPECT_NEAR(ann.existence_probability(), 0.1, 1e-12);
  EXPECT_TRUE(ann.is_maybe());
  // Within the surviving worlds Ann's job is certain.
  EXPECT_TRUE(ann.alternative(0).values[2].is_certain());
  EXPECT_EQ(ann.alternative(0).values[2].MostProbableText(), "clerk");
  const XTuple& bob = employed->xtuple(1);
  EXPECT_NEAR(bob.existence_probability(), 1.0, 1e-12);
}

TEST(AlgebraTest, SelectWhereExistsDropsCertainNullBranches) {
  // t43's first alternative has a ⊥ job: selecting job-existence keeps
  // only the (Sean, pilot) alternative with its original mass 0.6.
  XRelation r4 = BuildR4();
  Result<XRelation> selected = SelectWhereExists(r4, "job");
  ASSERT_TRUE(selected.ok());
  const XTuple* t43 = nullptr;
  for (const XTuple& t : selected->xtuples()) {
    if (t.id() == "t43") t43 = &t;
  }
  ASSERT_NE(t43, nullptr);
  ASSERT_EQ(t43->size(), 1u);
  EXPECT_NEAR(t43->existence_probability(), 0.6, 1e-12);
  EXPECT_EQ(t43->alternative(0).values[0], Value::Certain("Sean"));
}

TEST(AlgebraTest, SelectWhereExistsUnknownAttributeFails) {
  EXPECT_FALSE(SelectWhereExists(BuildR4(), "city").ok());
}

TEST(AlgebraTest, SelectByPredicatePreservesMass) {
  XRelation r34 = BuildR34();
  // Keep alternatives whose name starts with 'J'.
  XRelation selected = Select(r34, [](const AltTuple& alt) {
    std::string name = alt.values[0].MostProbableText();
    return !name.empty() && name[0] == 'J';
  });
  // t31: both alternatives survive minus none; t32: only the Jim ones.
  const XTuple* t32 = nullptr;
  for (const XTuple& t : selected.xtuples()) {
    if (t.id() == "t32") t32 = &t;
  }
  ASSERT_NE(t32, nullptr);
  EXPECT_EQ(t32->size(), 2u);
  EXPECT_NEAR(t32->existence_probability(), 0.6, 1e-12);  // 0.2 + 0.4
}

TEST(AlgebraTest, SelectDropsEmptyTuples) {
  XRelation r34 = BuildR34();
  XRelation none = Select(r34, [](const AltTuple&) { return false; });
  EXPECT_EQ(none.size(), 0u);
  XRelation all = Select(r34, [](const AltTuple&) { return true; });
  EXPECT_EQ(all.size(), r34.size());
}

TEST(AlgebraTest, ProjectionKeepsSelectedAttributes) {
  XRelation r34 = BuildR34();
  Result<XRelation> names = ProjectByName(r34, {"name"});
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->schema().arity(), 1u);
  EXPECT_EQ(names->schema().attribute(0).name, "name");
  EXPECT_EQ(names->size(), r34.size());
}

TEST(AlgebraTest, ProjectionMergesIdenticalAlternatives) {
  // t32's alternatives (Jim, mechanic) 0.2 and (Jim, baker) 0.4 merge to
  // Jim 0.6 when the job attribute is projected away.
  XRelation r34 = BuildR34();
  Result<XRelation> names = ProjectByName(r34, {"name"});
  ASSERT_TRUE(names.ok());
  const XTuple* t32 = nullptr;
  for (const XTuple& t : names->xtuples()) {
    if (t.id() == "t32") t32 = &t;
  }
  ASSERT_NE(t32, nullptr);
  ASSERT_EQ(t32->size(), 2u);  // Tim 0.3, Jim 0.6
  EXPECT_NEAR(t32->alternative(0).prob, 0.3, 1e-12);
  EXPECT_NEAR(t32->alternative(1).prob, 0.6, 1e-12);
  // Existence probability is untouched by projection.
  EXPECT_NEAR(t32->existence_probability(), 0.9, 1e-12);
}

TEST(AlgebraTest, ProjectionReordersAttributes) {
  XRelation r34 = BuildR34();
  Result<XRelation> swapped = ProjectByName(r34, {"job", "name"});
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped->schema().attribute(0).name, "job");
  EXPECT_EQ(swapped->xtuple(0).alternative(0).values[1],
            Value::Certain("John"));
}

TEST(AlgebraTest, ProjectionValidation) {
  XRelation r34 = BuildR34();
  EXPECT_FALSE(Project(r34, {}).ok());
  EXPECT_FALSE(Project(r34, {7}).ok());
  EXPECT_FALSE(ProjectByName(r34, {"city"}).ok());
  // Duplicate attribute names in the result schema are rejected.
  EXPECT_FALSE(Project(r34, {0, 0}).ok());
}

TEST(AlgebraTest, ResultNamesDefaultAndOverride) {
  XRelation r34 = BuildR34();
  EXPECT_EQ(Select(r34, [](const AltTuple&) { return true; }).name(),
            "R34_sel");
  EXPECT_EQ(Select(r34, [](const AltTuple&) { return true; }, "X").name(),
            "X");
  EXPECT_EQ(ProjectByName(r34, {"name"})->name(), "R34_proj");
}

TEST(AlgebraTest, SelectionComposesWithProjection) {
  // π_name(σ_job-exists(R4)) — pipeline of both operators.
  Result<XRelation> employed = SelectWhereExists(BuildR4(), "job");
  ASSERT_TRUE(employed.ok());
  Result<XRelation> names = ProjectByName(*employed, {"name"});
  ASSERT_TRUE(names.ok());
  for (const XTuple& t : names->xtuples()) {
    EXPECT_TRUE(t.Validate().ok());
    EXPECT_EQ(t.arity(), 1u);
  }
}

}  // namespace
}  // namespace pdd
