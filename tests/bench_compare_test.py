#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py's exit-code contract.

Exercised through the CLI (subprocess) because the exit codes ARE the
interface CI scripts depend on: 0 clean, 1 regression, 2 usage/IO
error, 3 missing baseline.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "tools" / \
    "bench_compare.py"


def sidecar(throughput, identical=True):
    return {
        "schema": "pdd.telemetry.v1",
        "counters": {},
        "gauges": {"pairs_per_sec": throughput},
        "info": {"report_identical": "true" if identical else "false"},
        "histograms": {},
    }


def run(run_dir, baselines, *extra):
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--run-dir", str(run_dir),
         "--baselines", str(baselines), *extra],
        capture_output=True, text=True)


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = pathlib.Path(self._tmp.name)
        self.run_dir = root / "run"
        self.baselines = root / "baselines"
        self.run_dir.mkdir()
        self.baselines.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, directory, name, doc):
        (directory / name).write_text(json.dumps(doc))

    def test_clean_compare_exits_zero(self):
        self.write(self.run_dir, "BENCH_x.json", sidecar(1000.0))
        self.write(self.baselines, "BENCH_x.json", sidecar(1000.0))
        result = run(self.run_dir, self.baselines)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("clean", result.stdout)

    def test_regression_exits_one(self):
        self.write(self.run_dir, "BENCH_x.json", sidecar(100.0))
        self.write(self.baselines, "BENCH_x.json", sidecar(1000.0))
        result = run(self.run_dir, self.baselines)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("REGRESSION", result.stderr)

    def test_broken_invariant_exits_one(self):
        self.write(self.run_dir, "BENCH_x.json",
                   sidecar(1000.0, identical=False))
        self.write(self.baselines, "BENCH_x.json", sidecar(1000.0))
        result = run(self.run_dir, self.baselines)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("expected true", result.stderr)

    def test_missing_baseline_is_a_hard_failure(self):
        # An unbaselined sidecar must fail with the distinct exit code
        # (3) and point at --update — never silently skip.
        self.write(self.run_dir, "BENCH_new.json", sidecar(1000.0))
        result = run(self.run_dir, self.baselines)
        self.assertEqual(result.returncode, 3, result.stdout)
        self.assertIn("missing baseline for BENCH_new.json", result.stderr)
        self.assertIn("--update", result.stderr)

    def test_missing_baseline_fails_even_when_others_compare(self):
        self.write(self.run_dir, "BENCH_old.json", sidecar(1000.0))
        self.write(self.baselines, "BENCH_old.json", sidecar(1000.0))
        self.write(self.run_dir, "BENCH_new.json", sidecar(1000.0))
        result = run(self.run_dir, self.baselines)
        self.assertEqual(result.returncode, 3, result.stdout)
        self.assertIn("missing baseline for BENCH_new.json", result.stderr)

    def test_regression_takes_priority_over_missing(self):
        self.write(self.run_dir, "BENCH_old.json", sidecar(100.0))
        self.write(self.baselines, "BENCH_old.json", sidecar(1000.0))
        self.write(self.run_dir, "BENCH_new.json", sidecar(1000.0))
        result = run(self.run_dir, self.baselines)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("missing baseline for BENCH_new.json", result.stderr)

    def test_update_creates_the_baseline_and_then_compares_clean(self):
        self.write(self.run_dir, "BENCH_new.json", sidecar(1000.0))
        update = run(self.run_dir, self.baselines, "--update")
        self.assertEqual(update.returncode, 0, update.stderr)
        self.assertTrue((self.baselines / "BENCH_new.json").exists())
        result = run(self.run_dir, self.baselines)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_empty_run_dir_is_a_usage_error(self):
        result = run(self.run_dir, self.baselines)
        self.assertEqual(result.returncode, 2, result.stdout)


if __name__ == "__main__":
    unittest.main()
