// Unit tests for the bibliography generator, relation statistics and
// the interpolated Fellegi-Sunter weight.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/paper_examples.h"
#include "datagen/bibliography_generator.h"
#include "decision/fellegi_sunter.h"
#include "pdb/statistics.h"
#include "util/string_util.h"

namespace pdd {
namespace {

// ------------------------------------------------------------ bibliography

TEST(BibliographyTest, SchemaShape) {
  Schema schema = BibliographySchema();
  EXPECT_EQ(schema.arity(), 4u);
  EXPECT_EQ(schema.attribute(0).name, "author");
  EXPECT_EQ(schema.attribute(3).type, ValueType::kNumeric);
}

TEST(BibliographyTest, VenueSynonymsPairFullAndAbbrev) {
  for (const auto& group : VenueSynonyms()) {
    ASSERT_EQ(group.size(), 2u);
    EXPECT_GT(group[0].size(), group[1].size());  // full form longer
  }
  EXPECT_GE(VenueSynonyms().size(), 8u);
}

TEST(BibliographyTest, GeneratesValidRelationAndGold) {
  BiblioGenOptions gen;
  gen.num_publications = 50;
  gen.duplicate_rate = 1.0;
  GeneratedData data = GenerateBibliography(gen);
  EXPECT_GE(data.relation.size(), 50u);
  EXPECT_GT(data.gold.size(), 0u);
  std::set<std::string> ids;
  for (const XTuple& t : data.relation.xtuples()) {
    EXPECT_TRUE(t.Validate().ok());
    EXPECT_TRUE(ids.insert(t.id()).second);
    EXPECT_EQ(t.arity(), 4u);
  }
}

TEST(BibliographyTest, DeterministicUnderSeed) {
  BiblioGenOptions gen;
  gen.num_publications = 20;
  GeneratedData a = GenerateBibliography(gen);
  GeneratedData b = GenerateBibliography(gen);
  ASSERT_EQ(a.relation.size(), b.relation.size());
  EXPECT_EQ(a.gold.size(), b.gold.size());
  for (size_t i = 0; i < a.relation.size(); ++i) {
    EXPECT_EQ(a.relation.xtuple(i).ToString(),
              b.relation.xtuple(i).ToString());
  }
}

TEST(BibliographyTest, UncertaintyProducesTwoAlternativeValues) {
  BiblioGenOptions gen;
  gen.num_publications = 80;
  gen.duplicate_rate = 1.5;
  gen.uncertainty_prob = 1.0;  // every corrupted field keeps both readings
  GeneratedData data = GenerateBibliography(gen);
  size_t uncertain = 0;
  for (const XTuple& t : data.relation.xtuples()) {
    for (const Value& v : t.alternative(0).values) {
      if (v.size() == 2) ++uncertain;
    }
  }
  EXPECT_GT(uncertain, 0u);
}

TEST(BibliographyTest, ZeroRatesYieldCleanCopies) {
  BiblioGenOptions gen;
  gen.num_publications = 20;
  gen.duplicate_rate = 1.0;
  gen.author_initial_prob = 0.0;
  gen.venue_abbrev_prob = 0.0;
  gen.title_word_drop_prob = 0.0;
  gen.year_error_prob = 0.0;
  gen.uncertainty_prob = 0.0;
  GeneratedData data = GenerateBibliography(gen);
  // Every duplicate is identical to its original: gold pairs must have
  // identical tuples.
  for (const IdPair& pair : data.gold.Pairs()) {
    const XTuple* a = nullptr;
    const XTuple* b = nullptr;
    for (const XTuple& t : data.relation.xtuples()) {
      if (t.id() == pair.first) a = &t;
      if (t.id() == pair.second) b = &t;
    }
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    for (size_t v = 0; v < 4; ++v) {
      EXPECT_EQ(a->alternative(0).values[v], b->alternative(0).values[v]);
    }
  }
}

// -------------------------------------------------------------- statistics

TEST(StatisticsTest, EmptyRelation) {
  XRelation empty("E", PaperSchema());
  RelationStatistics stats = ComputeStatistics(empty);
  EXPECT_EQ(stats.tuple_count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_alternatives, 0.0);
}

TEST(StatisticsTest, PaperR34Profile) {
  RelationStatistics stats = ComputeStatistics(BuildR34());
  EXPECT_EQ(stats.tuple_count, 5u);
  EXPECT_EQ(stats.alternative_count, 10u);
  EXPECT_DOUBLE_EQ(stats.mean_alternatives, 2.0);
  EXPECT_EQ(stats.max_alternatives, 3u);
  EXPECT_NEAR(stats.maybe_fraction, 3.0 / 5.0, 1e-12);  // t32, t42, t43
  EXPECT_NEAR(stats.mean_existence, (1.0 + 0.9 + 1.0 + 0.8 + 0.8) / 5.0,
              1e-12);
  // One pattern value ('mu*') and one ⊥ value among 20 values.
  EXPECT_NEAR(stats.pattern_fraction, 1.0 / 20.0, 1e-12);
  // t43's first alternative has a ⊥ job — the only value with ⊥ mass
  // among the 20 attribute values of R34's alternatives.
  EXPECT_NEAR(stats.null_mass_fraction, 1.0 / 20.0, 1e-12);
  // 96 worlds -> log10 ≈ 1.98.
  EXPECT_NEAR(stats.log10_world_count, std::log10(96.0), 1e-9);
}

TEST(StatisticsTest, CertainRelationHasZeroEntropy) {
  XRelation rel("C", PaperSchema());
  rel.AppendUnchecked(XTuple(
      "t", {{{Value::Certain("a"), Value::Certain("b")}, 1.0}}));
  RelationStatistics stats = ComputeStatistics(rel);
  EXPECT_DOUBLE_EQ(stats.mean_value_entropy, 0.0);
  EXPECT_DOUBLE_EQ(stats.uncertain_value_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.log10_world_count, 0.0);
}

TEST(StatisticsTest, EntropyOfUniformBinaryValueIsOneBit) {
  XRelation rel("U", Schema::Strings({"a"}));
  rel.AppendUnchecked(XTuple(
      "t", {{{Value::Dist({{"x", 0.5}, {"y", 0.5}})}, 1.0}}));
  RelationStatistics stats = ComputeStatistics(rel);
  EXPECT_NEAR(stats.mean_value_entropy, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.uncertain_value_fraction, 1.0);
}

TEST(StatisticsTest, ToStringMentionsKeyFigures) {
  std::string s = ComputeStatistics(BuildR34()).ToString();
  EXPECT_NE(s.find("tuples: 5"), std::string::npos);
  EXPECT_NE(s.find("maybe fraction"), std::string::npos);
  EXPECT_NE(s.find("log10(worlds)"), std::string::npos);
}

// -------------------------------------------------- interpolated FS weight

TEST(InterpolatedWeightTest, EndpointsMatchBinarizedWeight) {
  FellegiSunterModel fs({{0.9, 0.1, 0.5}, {0.8, 0.2, 0.5}});
  // Full agreement (c=1) and full disagreement (c=0) must coincide with
  // the binarized weight.
  EXPECT_NEAR(fs.InterpolatedWeight(ComparisonVector({1.0, 1.0})),
              fs.MatchingWeight(ComparisonVector({1.0, 1.0})), 1e-9);
  EXPECT_NEAR(fs.InterpolatedWeight(ComparisonVector({0.0, 0.0})),
              fs.MatchingWeight(ComparisonVector({0.0, 0.0})), 1e-9);
}

TEST(InterpolatedWeightTest, MonotoneInSimilarity) {
  FellegiSunterModel fs({{0.9, 0.1, 0.5}});
  double prev = 0.0;
  for (double c = 0.0; c <= 1.0001; c += 0.1) {
    double w = fs.InterpolatedWeight(ComparisonVector({c}));
    EXPECT_GE(w, prev);
    prev = w;
  }
}

TEST(InterpolatedWeightTest, PreservesContinuousEvidence) {
  // Binarized weight treats 0.81 and 0.99 identically (both above the
  // 0.8 agreement threshold); the interpolated weight does not.
  FellegiSunterModel fs({{0.9, 0.1, 0.8}});
  EXPECT_DOUBLE_EQ(fs.MatchingWeight(ComparisonVector({0.81})),
                   fs.MatchingWeight(ComparisonVector({0.99})));
  EXPECT_LT(fs.InterpolatedWeight(ComparisonVector({0.81})),
            fs.InterpolatedWeight(ComparisonVector({0.99})));
}

TEST(InterpolatedWeightTest, MidpointIsGeometricMean) {
  FellegiSunterModel fs({{0.9, 0.1, 0.5}});
  double agree = 9.0, disagree = 1.0 / 9.0;
  EXPECT_NEAR(fs.InterpolatedWeight(ComparisonVector({0.5})),
              std::sqrt(agree * disagree), 1e-9);
}

}  // namespace
}  // namespace pdd
