// Unit tests for the canopy and adaptive-SNM reduction methods and the
// detector-integrated data preparation.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "datagen/person_generator.h"
#include "reduction/canopy.h"
#include "reduction/full_pairs.h"
#include "reduction/snm_adaptive.h"
#include "sim/edit_distance.h"

namespace pdd {
namespace {

constexpr size_t kT31 = 0, kT32 = 1, kT41 = 2, kT42 = 3, kT43 = 4;

// ------------------------------------------------------------------ canopy

TEST(CanopyTest, EveryTupleLandsInSomeCanopy) {
  CanopyOptions options;
  CanopyReduction canopy(PaperSortingKey(), options);
  XRelation r34 = BuildR34();
  std::vector<std::vector<size_t>> canopies = canopy.Canopies(r34);
  std::vector<bool> seen(r34.size(), false);
  for (const auto& c : canopies) {
    EXPECT_FALSE(c.empty());
    for (size_t i : c) seen[i] = true;
  }
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_TRUE(seen[i]) << i;
}

TEST(CanopyTest, OverlappingKeysShareACanopy) {
  // t31 {Johpi .7, Johmu .3} and t41 {Johpi 1.0}: overlap distance 0.3.
  CanopyOptions options;
  options.loose = 0.5;
  options.tight = 0.2;
  CanopyReduction canopy(PaperSortingKey(), options);
  Result<std::vector<CandidatePair>> pairs = canopy.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(ContainsPair(*pairs, MakePair(kT31, kT41)));
}

TEST(CanopyTest, LooseThresholdOneComparesEverything) {
  CanopyOptions options;
  options.loose = 1.0;
  options.tight = 1.0;
  CanopyReduction canopy(PaperSortingKey(), options);
  XRelation r34 = BuildR34();
  Result<std::vector<CandidatePair>> pairs = canopy.Generate(r34);
  ASSERT_TRUE(pairs.ok());
  FullPairs full;
  EXPECT_EQ(pairs->size(), full.Generate(r34)->size());
}

TEST(CanopyTest, TightAboveLooseRejected) {
  CanopyOptions options;
  options.loose = 0.3;
  options.tight = 0.8;
  CanopyReduction canopy(PaperSortingKey(), options);
  EXPECT_FALSE(canopy.Generate(BuildR34()).ok());
}

TEST(CanopyTest, ExpectedKeyDistanceFindsNearKeys) {
  // With the soft distance, Joh-prefixed keys cluster even without
  // identical key strings.
  NormalizedHammingComparator hamming;
  CanopyOptions options;
  options.comparator = &hamming;
  options.loose = 0.5;
  options.tight = 0.3;
  CanopyReduction canopy(PaperSortingKey(), options);
  Result<std::vector<CandidatePair>> pairs = canopy.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(ContainsPair(*pairs, MakePair(kT31, kT41)));
}

TEST(CanopyTest, SubsetOfFullPairs) {
  PersonGenOptions gen;
  gen.num_entities = 30;
  GeneratedData data = GeneratePersons(gen);
  KeySpec spec = *KeySpec::FromNames({{"name", 3}, {"job", 2}},
                                     PersonSchema());
  CanopyReduction canopy(spec, CanopyOptions{});
  Result<std::vector<CandidatePair>> pairs = canopy.Generate(data.relation);
  ASSERT_TRUE(pairs.ok());
  FullPairs full;
  Result<std::vector<CandidatePair>> all = full.Generate(data.relation);
  for (const CandidatePair& p : *pairs) {
    EXPECT_TRUE(ContainsPair(*all, p));
  }
}

// ---------------------------------------------------------------- adaptive

TEST(SnmAdaptiveTest, SimilarKeyRunsPairUp) {
  // Certain keys of R34: Jimba, Johpi, Johpi, Seapi, Tomme (Fig. 10).
  // The two Johpi entries are identical -> similarity 1 -> paired.
  SnmAdaptiveOptions options;
  options.key_similarity_threshold = 0.9;
  SnmAdaptive snm(PaperSortingKey(), options);
  Result<std::vector<CandidatePair>> pairs = snm.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(ContainsPair(*pairs, MakePair(kT31, kT41)));
  // Jimba vs Johpi differ in 3 of 5 positions (sim 0.4 < 0.9): the chain
  // breaks, so t32 pairs with nobody.
  for (const CandidatePair& p : *pairs) {
    EXPECT_NE(p.first, kT32);
    EXPECT_NE(p.second, kT32);
  }
}

TEST(SnmAdaptiveTest, LowerThresholdWidensWindows) {
  XRelation r34 = BuildR34();
  SnmAdaptiveOptions strict;
  strict.key_similarity_threshold = 0.95;
  SnmAdaptiveOptions loose;
  loose.key_similarity_threshold = 0.1;
  SnmAdaptive strict_snm(PaperSortingKey(), strict);
  SnmAdaptive loose_snm(PaperSortingKey(), loose);
  Result<std::vector<CandidatePair>> strict_pairs = strict_snm.Generate(r34);
  Result<std::vector<CandidatePair>> loose_pairs = loose_snm.Generate(r34);
  ASSERT_TRUE(strict_pairs.ok());
  ASSERT_TRUE(loose_pairs.ok());
  EXPECT_GE(loose_pairs->size(), strict_pairs->size());
  for (const CandidatePair& p : *strict_pairs) {
    EXPECT_TRUE(ContainsPair(*loose_pairs, p));
  }
}

TEST(SnmAdaptiveTest, MaxWindowCapsChains) {
  // Identical keys everywhere: only max_window bounds the pairing.
  XRelation rel("R", Schema::Strings({"a"}));
  for (int i = 0; i < 6; ++i) {
    rel.AppendUnchecked(XTuple("t" + std::to_string(i),
                               {{{Value::Certain("same")}, 1.0}}));
  }
  KeySpec spec({{0, 4}});
  SnmAdaptiveOptions options;
  options.max_window = 2;  // adjacent only
  SnmAdaptive snm(spec, options);
  Result<std::vector<CandidatePair>> pairs = snm.Generate(rel);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 5u);  // chain of adjacents
  options.max_window = 6;
  SnmAdaptive wide(spec, options);
  EXPECT_EQ(wide.Generate(rel)->size(), 15u);  // all pairs
}

TEST(SnmAdaptiveTest, RejectsDegenerateWindow) {
  SnmAdaptiveOptions options;
  options.max_window = 1;
  SnmAdaptive snm(PaperSortingKey(), options);
  EXPECT_FALSE(snm.Generate(BuildR34()).ok());
}

// ----------------------------------------------------- detector integration

TEST(DetectorIntegrationTest, CanopyAndAdaptiveRunThroughConfig) {
  for (ReductionMethod method :
       {ReductionMethod::kCanopy, ReductionMethod::kSnmAdaptive}) {
    DetectorConfig config;
    config.key = {{"name", 3}, {"job", 2}};
    config.weights = {0.8, 0.2};
    config.reduction = method;
    Result<DuplicateDetector> detector =
        DuplicateDetector::Make(config, PaperSchema());
    ASSERT_TRUE(detector.ok()) << ReductionMethodName(method);
    Result<DetectionResult> result = detector->Run(BuildR34());
    ASSERT_TRUE(result.ok()) << ReductionMethodName(method);
  }
}

TEST(DetectorIntegrationTest, PreparationNormalizesCase) {
  // Two sources disagreeing only in case: without preparation the pair
  // scores low under case-sensitive Hamming; with lowering it matches.
  XRelation rel("R", PaperSchema());
  rel.AppendUnchecked(XTuple(
      "a", {{{Value::Certain("JOHN"), Value::Certain("PILOT")}, 1.0}}));
  rel.AppendUnchecked(XTuple(
      "b", {{{Value::Certain("john"), Value::Certain("pilot")}, 1.0}}));
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  config.final_thresholds = {0.4, 0.7};
  Result<DuplicateDetector> plain =
      DuplicateDetector::Make(config, PaperSchema());
  Standardizer lower;
  lower.LowerCase();
  config.preparation = DataPreparation::Uniform(lower, 2);
  Result<DuplicateDetector> prepared =
      DuplicateDetector::Make(config, PaperSchema());
  double sim_plain = (*plain->Run(rel)).decisions[0].similarity;
  double sim_prepared = (*prepared->Run(rel)).decisions[0].similarity;
  EXPECT_LT(sim_plain, 0.2);
  EXPECT_NEAR(sim_prepared, 1.0, 1e-12);
}

TEST(DetectorIntegrationTest, PreparationDoesNotMutateInput) {
  XRelation rel("R", PaperSchema());
  rel.AppendUnchecked(XTuple(
      "a", {{{Value::Certain("JOHN"), Value::Certain("PILOT")}, 1.0}}));
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  Standardizer lower;
  lower.LowerCase();
  config.preparation = DataPreparation::Uniform(lower, 2);
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  ASSERT_TRUE(detector->Run(rel).ok());
  EXPECT_EQ(rel.xtuple(0).alternative(0).values[0],
            Value::Certain("JOHN"));
}

}  // namespace
}  // namespace pdd
