// Tests for the columnar match path: RelationArena round-trips the
// prepared relation field for field, every columnar kernel is
// bit-identical to its registry comparator, and end-to-end detection
// with `match.kernel` forced either way produces byte-identical
// reports across batch sizes, worker counts, caching and sharding.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/decision_cache.h"
#include "cache/pair_digest.h"
#include "columnar/relation_arena.h"
#include "core/detector.h"
#include "core/paper_examples.h"
#include "core/report_writer.h"
#include "datagen/person_generator.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/detection_plan.h"
#include "pipeline/stage_executor.h"
#include "plan/plan_builder.h"
#include "sim/columnar_kernels.h"
#include "sim/registry.h"
#include "sim/sim_scratch.h"

namespace pdd {
namespace {

GeneratedData UncertainPersons(size_t entities = 60) {
  PersonGenOptions gen;
  gen.num_entities = entities;
  gen.duplicate_rate = 0.6;
  gen.uncertainty.value_uncertainty_prob = 0.4;
  gen.uncertainty.xtuple_alternative_prob = 0.3;
  gen.uncertainty.null_mass_prob = 0.2;
  gen.seed = 60606;
  return GeneratePersons(gen);
}

DetectorConfig PersonConfig() {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  return config;
}

// --- arena round-trip ---------------------------------------------------

TEST(RelationArenaTest, RoundTripsPreparedRelation) {
  GeneratedData data = UncertainPersons();
  const XRelation& rel = data.relation;
  const Schema& schema = rel.schema();
  std::shared_ptr<const RelationArena> arena = RelationArena::Build(rel);
  ASSERT_NE(arena, nullptr);

  EXPECT_EQ(arena->tuple_count(), rel.size());
  EXPECT_EQ(arena->arity(), schema.arity());
  EXPECT_EQ(arena->row_count(), rel.TotalAlternatives());

  for (size_t t = 0; t < rel.size(); ++t) {
    const XTuple& tuple = rel.xtuple(t);
    const size_t row_begin = arena->tuple_row_begin(t);
    const size_t row_end = arena->tuple_row_end(t);
    ASSERT_EQ(row_end - row_begin, tuple.size());
    EXPECT_EQ(arena->tuple_digest(t), TupleContentDigest(tuple));

    const std::vector<double> cond = tuple.ConditionedProbabilities();
    for (size_t i = 0; i < tuple.size(); ++i) {
      const size_t row = row_begin + i;
      EXPECT_EQ(arena->row_cond_prob(row), cond[i]);
      for (size_t attr = 0; attr < schema.arity(); ++attr) {
        const Value& value = tuple.alternative(i).values[attr];
        ASSERT_FALSE(value.has_pattern());  // persons carry no patterns
        const size_t v = arena->value_index(row, attr);
        const size_t alt_begin = arena->value_alt_begin(v);
        const size_t alt_end = arena->value_alt_end(v);
        ASSERT_EQ(alt_end - alt_begin, value.alternatives().size());
        EXPECT_EQ(arena->value_null_prob(v), value.null_probability());
        for (size_t a = 0; a < value.alternatives().size(); ++a) {
          const Alternative& alt = value.alternatives()[a];
          const size_t k = alt_begin + a;
          EXPECT_EQ(arena->alt_text(k), alt.text);
          EXPECT_EQ(arena->alt_prob(k), alt.prob);
          EXPECT_EQ(arena->alt_sig(k), QGram2Signature(alt.text));
        }
      }
    }
  }
}

TEST(RelationArenaTest, ExpandsPatternsLikeTheMatcher) {
  // R3/R4 carry Fig. 5's 'mu*' pattern on the job attribute; the arena
  // must store exactly what Value::Expanded produces, in its order.
  XRelation rel = BuildR34();
  const Schema& schema = rel.schema();
  std::shared_ptr<const RelationArena> arena = RelationArena::Build(rel);
  ASSERT_NE(arena, nullptr);

  size_t patterns_seen = 0;
  for (size_t t = 0; t < rel.size(); ++t) {
    const XTuple& tuple = rel.xtuple(t);
    for (size_t i = 0; i < tuple.size(); ++i) {
      const size_t row = arena->tuple_row_begin(t) + i;
      for (size_t attr = 0; attr < schema.arity(); ++attr) {
        const Value& raw = tuple.alternative(i).values[attr];
        if (!raw.has_pattern()) continue;
        ++patterns_seen;
        Value expanded = raw.Expanded(schema.attribute(attr).vocabulary);
        const size_t v = arena->value_index(row, attr);
        ASSERT_EQ(arena->value_alt_end(v) - arena->value_alt_begin(v),
                  expanded.alternatives().size());
        EXPECT_EQ(arena->value_null_prob(v), expanded.null_probability());
        for (size_t a = 0; a < expanded.alternatives().size(); ++a) {
          const size_t k = arena->value_alt_begin(v) + a;
          EXPECT_EQ(arena->alt_text(k), expanded.alternatives()[a].text);
          EXPECT_EQ(arena->alt_prob(k), expanded.alternatives()[a].prob);
        }
      }
    }
  }
  EXPECT_GT(patterns_seen, 0u);
}

// --- kernel ≡ comparator ------------------------------------------------

TEST(ColumnarKernelTest, KernelsBitIdenticalToRegistryComparators) {
  // Edge-heavy corpus: empties, equal strings, disjoint alphabets,
  // prefixes, transpositions, numerics (valid and not), long strings.
  const std::vector<std::string> corpus = {
      "",       "a",        "ab",          "abc",       "abd",
      "abcd",   "dcba",     "xyz",         "kitten",    "sitting",
      "martha", "marhta",   "dixon",       "dicksonx",  "jones",
      "johnson", "3.14",    "2.71",        "-12",       "0",
      "1000",   "not_a_number",
      "mississippi",        "misspellings",
      "the quick brown fox jumps over the lazy dog",
      "the quick brown fox jumped over a lazy dog"};
  SimScratch scratch;
  for (const std::string& name : ColumnarKernelNames()) {
    ColumnarKernelFn kernel = FindColumnarKernel(name);
    ASSERT_NE(kernel, nullptr) << name;
    Result<const Comparator*> cmp = GetComparator(name);
    ASSERT_TRUE(cmp.ok()) << name;
    for (const std::string& a : corpus) {
      for (const std::string& b : corpus) {
        const double expected = (*cmp)->Compare(a, b);
        const double actual =
            kernel(a, b, QGram2Signature(a), QGram2Signature(b), scratch);
        // EXPECT_EQ, not NEAR: the contract is bit-identity.
        EXPECT_EQ(actual, expected)
            << name << "(\"" << a << "\", \"" << b << "\")";
      }
    }
  }
}

TEST(ColumnarKernelTest, CapabilityFlagMatchesKernelTable) {
  for (const std::string& name : ComparatorNames()) {
    EXPECT_EQ(ComparatorHasColumnarKernel(name),
              FindColumnarKernel(name) != nullptr)
        << name;
  }
  // Trained/phonetic comparators stay scalar-only by design.
  EXPECT_FALSE(ComparatorHasColumnarKernel("monge_elkan"));
  EXPECT_FALSE(ComparatorHasColumnarKernel("soundex"));
  EXPECT_TRUE(ComparatorHasColumnarKernel("hamming"));
  EXPECT_TRUE(ComparatorHasColumnarKernel("levenshtein"));
  EXPECT_TRUE(ComparatorHasColumnarKernel("jaro_winkler"));
}

// --- plan compilation ---------------------------------------------------

TEST(ColumnarPlanTest, SpecKeySelectsKernel) {
  PlanSpec base = PlanBuilder()
                      .AddKey("name", 3)
                      .AddKey("job", 2)
                      .Weights({0.5, 0.3, 0.2})
                      .Build();
  auto auto_plan = DetectionPlan::Compile(base, PersonSchema());
  ASSERT_TRUE(auto_plan.ok());
  // Default comparators all have kernels, so auto resolves columnar.
  EXPECT_TRUE((*auto_plan)->use_columnar_kernels());
  EXPECT_STREQ((*auto_plan)->match_kernel_name(), "columnar");

  PlanSpec scalar_spec = base;
  ASSERT_TRUE(scalar_spec.SetAssignment("match.kernel=scalar").ok());
  auto scalar_plan = DetectionPlan::Compile(scalar_spec, PersonSchema());
  ASSERT_TRUE(scalar_plan.ok());
  EXPECT_FALSE((*scalar_plan)->use_columnar_kernels());
  EXPECT_STREQ((*scalar_plan)->match_kernel_name(), "scalar");

  // The kernel is a throughput knob, not plan identity: same
  // fingerprints, so cache entries and reports are shared.
  EXPECT_EQ((*auto_plan)->fingerprint(), (*scalar_plan)->fingerprint());
  EXPECT_EQ((*auto_plan)->decision_fingerprint(),
            (*scalar_plan)->decision_fingerprint());
}

TEST(ColumnarPlanTest, ForcedColumnarWithoutKernelFails) {
  PlanSpec spec = PlanBuilder()
                      .AddKey("name", 3)
                      .AddKey("job", 2)
                      .Weights({0.5, 0.3, 0.2})
                      .Comparators({"monge_elkan", "hamming", "hamming"})
                      .Set("match.kernel", "columnar")
                      .Build();
  auto plan = DetectionPlan::Compile(spec, PersonSchema());
  EXPECT_FALSE(plan.ok());

  // auto quietly falls back to scalar for the same mix.
  PlanSpec auto_spec = PlanBuilder()
                           .AddKey("name", 3)
                           .AddKey("job", 2)
                           .Weights({0.5, 0.3, 0.2})
                           .Comparators({"monge_elkan", "hamming", "hamming"})
                           .Build();
  auto auto_plan = DetectionPlan::Compile(auto_spec, PersonSchema());
  ASSERT_TRUE(auto_plan.ok());
  EXPECT_FALSE((*auto_plan)->use_columnar_kernels());
}

TEST(ColumnarPlanTest, UnknownKernelNameFails) {
  PlanSpec spec = PlanBuilder()
                      .AddKey("name", 3)
                      .Weights({})
                      .Set("match.kernel", "vectorized")
                      .Build();
  EXPECT_FALSE(DetectionPlan::Compile(spec, PersonSchema()).ok());
}

// --- end-to-end identity ------------------------------------------------

TEST(ColumnarEndToEndTest, ByteIdenticalAcrossBatchSizesAndWorkers) {
  GeneratedData data = UncertainPersons(80);

  DetectorConfig config = PersonConfig();
  config.match_kernel = MatchKernel::kScalar;
  auto scalar_det = DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(scalar_det.ok());
  auto scalar_run = scalar_det->Run(data.relation);
  ASSERT_TRUE(scalar_run.ok());
  EXPECT_EQ(scalar_run->match_kernel, "scalar");
  const std::string baseline = DetectionReport(*scalar_run, &data.gold);
  ASSERT_GT(scalar_run->candidate_count, 0u);

  for (size_t batch : {size_t{1}, size_t{7}, size_t{4096}}) {
    for (size_t workers : {size_t{0}, size_t{2}}) {
      DetectorConfig columnar = PersonConfig();
      columnar.match_kernel = MatchKernel::kColumnar;
      columnar.batch_size = batch;
      columnar.workers = workers;
      auto det = DuplicateDetector::Make(columnar, PersonSchema());
      ASSERT_TRUE(det.ok());
      auto run = det->Run(data.relation);
      ASSERT_TRUE(run.ok()) << "batch " << batch << " workers " << workers;
      EXPECT_EQ(run->match_kernel, "columnar");
      EXPECT_EQ(DetectionReport(*run, &data.gold), baseline)
          << "batch " << batch << " workers " << workers;
    }
  }
}

TEST(ColumnarEndToEndTest, ByteIdenticalOnShardedDrain) {
  GeneratedData data = UncertainPersons(80);
  DetectorConfig config = PersonConfig();
  config.shard_count = 3;
  config.match_kernel = MatchKernel::kScalar;
  auto scalar_det = DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(scalar_det.ok());
  auto scalar_run = scalar_det->Run(data.relation);
  ASSERT_TRUE(scalar_run.ok());

  config.match_kernel = MatchKernel::kColumnar;
  auto columnar_det = DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(columnar_det.ok());
  auto columnar_run = columnar_det->Run(data.relation);
  ASSERT_TRUE(columnar_run.ok());
  EXPECT_EQ(columnar_run->match_kernel, "columnar");
  EXPECT_EQ(DetectionReport(*columnar_run, &data.gold),
            DetectionReport(*scalar_run, &data.gold));
}

TEST(ColumnarEndToEndTest, ByteIdenticalThroughDecisionCache) {
  GeneratedData data = UncertainPersons(50);
  PlanSpec base = PlanBuilder()
                      .AddKey("name", 3)
                      .AddKey("job", 2)
                      .Weights({0.5, 0.3, 0.2})
                      .Comparators(
                          {"levenshtein", "levenshtein", "levenshtein"})
                      .Build();
  PlanSpec scalar_spec = base;
  ASSERT_TRUE(scalar_spec.SetAssignment("match.kernel=scalar").ok());
  auto scalar_plan = DetectionPlan::Compile(scalar_spec, PersonSchema());
  auto columnar_plan = DetectionPlan::Compile(base, PersonSchema());
  ASSERT_TRUE(scalar_plan.ok());
  ASSERT_TRUE(columnar_plan.ok());
  ASSERT_TRUE((*columnar_plan)->use_columnar_kernels());

  auto run = [&](const std::shared_ptr<const DetectionPlan>& plan,
                 const std::shared_ptr<DecisionCache>& cache) {
    StageExecutorOptions options;
    options.cache = cache;
    auto stream = MakeFullStream(*plan, data.relation);
    EXPECT_TRUE(stream.ok());
    auto result = StageExecutor(plan, options).Execute(**stream);
    EXPECT_TRUE(result.ok());
    return std::move(*result);
  };

  DetectionResult uncached = run(*scalar_plan, nullptr);
  const std::string baseline = DetectionReport(uncached, &data.gold);

  // Columnar cold fill, then a warm pass that must hit on every pair;
  // then a scalar run through the SAME cache (same decision
  // fingerprint, same digests — the kernel choice shares entries).
  auto cache = std::make_shared<ShardedDecisionCache>();
  DetectionResult cold = run(*columnar_plan, cache);
  EXPECT_EQ(DetectionReport(cold, &data.gold), baseline);
  ASSERT_TRUE(cold.cache_stats.has_value());
  EXPECT_EQ(cold.cache_stats->hits, 0u);
  DetectionResult warm = run(*columnar_plan, cache);
  EXPECT_EQ(DetectionReport(warm, &data.gold), baseline);
  ASSERT_TRUE(warm.cache_stats.has_value());
  EXPECT_EQ(warm.cache_stats->hits, warm.cache_stats->lookups);
  DetectionResult scalar_warm = run(*scalar_plan, cache);
  EXPECT_EQ(DetectionReport(scalar_warm, &data.gold), baseline);
  ASSERT_TRUE(scalar_warm.cache_stats.has_value());
  EXPECT_EQ(scalar_warm.cache_stats->hits, scalar_warm.cache_stats->lookups);
}

TEST(ColumnarEndToEndTest, StatsReportNamesTheKernel) {
  GeneratedData data = UncertainPersons(30);
  DetectorConfig config = PersonConfig();
  config.match_kernel = MatchKernel::kColumnar;
  auto columnar_det = DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(columnar_det.ok());
  auto columnar_run = columnar_det->Run(data.relation);
  ASSERT_TRUE(columnar_run.ok());
  EXPECT_NE(ExecutionStatsReport(*columnar_run)
                .find("match kernel: columnar"),
            std::string::npos);

  config.match_kernel = MatchKernel::kScalar;
  auto scalar_det = DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(scalar_det.ok());
  auto scalar_run = scalar_det->Run(data.relation);
  ASSERT_TRUE(scalar_run.ok());
  EXPECT_NE(
      ExecutionStatsReport(*scalar_run).find("match kernel: scalar"),
      std::string::npos);
}

// --- scratch reuse regression -------------------------------------------

TEST(SimScratchTest, CompareLoopIsAllocationFreeAfterWarmup) {
  // The hot-path fix this PR rides on: registry comparators borrow the
  // thread-local scratch instead of allocating DP rows per call. After
  // touching the largest strings once, further calls with smaller or
  // equal inputs must not grow any buffer's capacity.
  const std::vector<std::string> corpus = {
      "mississippi", "misspellings", "kitten", "sitting", "", "a",
      "the quick brown fox jumps over the lazy dog"};
  const std::vector<std::string> names = {"levenshtein", "damerau", "lcs",
                                          "jaro", "jaro_winkler"};
  // Warmup: every comparator sees the full corpus once.
  for (const std::string& name : names) {
    const Comparator* cmp = *GetComparator(name);
    for (const std::string& a : corpus) {
      for (const std::string& b : corpus) cmp->Compare(a, b);
    }
  }
  SimScratch& scratch = ThreadLocalSimScratch();
  const size_t cap_row0 = scratch.row0.capacity();
  const size_t cap_row1 = scratch.row1.capacity();
  const size_t cap_row2 = scratch.row2.capacity();
  const size_t cap_flags_a = scratch.flags_a.capacity();
  const size_t cap_flags_b = scratch.flags_b.capacity();
  for (int rep = 0; rep < 100; ++rep) {
    for (const std::string& name : names) {
      const Comparator* cmp = *GetComparator(name);
      for (const std::string& a : corpus) {
        for (const std::string& b : corpus) cmp->Compare(a, b);
      }
    }
  }
  EXPECT_EQ(scratch.row0.capacity(), cap_row0);
  EXPECT_EQ(scratch.row1.capacity(), cap_row1);
  EXPECT_EQ(scratch.row2.capacity(), cap_row2);
  EXPECT_EQ(scratch.flags_a.capacity(), cap_flags_a);
  EXPECT_EQ(scratch.flags_b.capacity(), cap_flags_b);
}

}  // namespace
}  // namespace pdd
