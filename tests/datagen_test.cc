// Unit tests for the synthetic data generators: error injection,
// uncertainty injection, person datasets and telescope catalogs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>

#include "datagen/astronomy_generator.h"
#include "datagen/error_injector.h"
#include "datagen/person_generator.h"
#include "datagen/uncertainty_injector.h"
#include "datagen/vocabularies.h"
#include "util/string_util.h"

namespace pdd {
namespace {

// ------------------------------------------------------------ vocabularies

TEST(VocabulariesTest, ContainPaperValues) {
  auto contains = [](const std::vector<std::string>& vocab,
                     const std::string& word) {
    return std::find(vocab.begin(), vocab.end(), word) != vocab.end();
  };
  for (const char* name : {"Tim", "Tom", "Jim", "Kim", "John", "Johan", "Jon",
                           "Sean", "Timothy"}) {
    EXPECT_TRUE(contains(FirstNames(), name)) << name;
  }
  for (const char* job : {"machinist", "mechanic", "baker", "confectioner",
                          "confectionist", "pilot", "pianist", "musician",
                          "engineer"}) {
    EXPECT_TRUE(contains(Jobs(), job)) << job;
  }
}

TEST(VocabulariesTest, ReasonableSizes) {
  EXPECT_GE(FirstNames().size(), 100u);
  EXPECT_GE(Surnames().size(), 100u);
  EXPECT_GE(Jobs().size(), 80u);
  EXPECT_GE(Cities().size(), 70u);
  EXPECT_GE(JobSynonyms().size(), 5u);
}

TEST(VocabulariesTest, SynonymGroupsUseVocabulary) {
  for (const auto& group : JobSynonyms()) {
    EXPECT_GE(group.size(), 2u);
    for (const std::string& term : group) {
      EXPECT_NE(std::find(Jobs().begin(), Jobs().end(), term), Jobs().end())
          << term;
    }
  }
}

// ----------------------------------------------------------- error channel

TEST(ErrorInjectorTest, PrimitiveOpsChangeLengthAsExpected) {
  Rng rng(1);
  std::string s = "machinist";
  EXPECT_EQ(ErrorInjector::SubstituteChar(s, &rng).size(), s.size());
  EXPECT_EQ(ErrorInjector::InsertChar(s, &rng).size(), s.size() + 1);
  EXPECT_EQ(ErrorInjector::DeleteChar(s, &rng).size(), s.size() - 1);
  EXPECT_EQ(ErrorInjector::TransposeChars(s, &rng).size(), s.size());
  EXPECT_LT(ErrorInjector::Truncate(s, &rng).size(), s.size());
}

TEST(ErrorInjectorTest, PrimitiveOpsHandleDegenerateInput) {
  Rng rng(1);
  EXPECT_EQ(ErrorInjector::SubstituteChar("", &rng), "");
  EXPECT_EQ(ErrorInjector::DeleteChar("", &rng), "");
  EXPECT_EQ(ErrorInjector::TransposeChars("a", &rng), "a");
  EXPECT_EQ(ErrorInjector::Truncate("a", &rng), "a");
  EXPECT_EQ(ErrorInjector::InsertChar("", &rng).size(), 1u);
}

TEST(ErrorInjectorTest, TransposeSwapsNeighbors) {
  Rng rng(3);
  std::string out = ErrorInjector::TransposeChars("ab", &rng);
  EXPECT_EQ(out, "ba");
}

TEST(ErrorInjectorTest, AbbreviateKeepsInitial) {
  EXPECT_EQ(ErrorInjector::Abbreviate("John"), "J.");
  EXPECT_EQ(ErrorInjector::Abbreviate(""), "");
}

TEST(ErrorInjectorTest, SwapTokensNeedsTwoTokens) {
  Rng rng(1);
  EXPECT_EQ(ErrorInjector::SwapTokens("single", &rng), "single");
  std::string out = ErrorInjector::SwapTokens("john smith", &rng);
  EXPECT_EQ(out, "smith john");
}

TEST(ErrorInjectorTest, OcrConfusesVisuallySimilar) {
  Rng rng(1);
  std::string out = ErrorInjector::OcrConfuse("mm", &rng);
  // Either character may flip to 'n'.
  EXPECT_TRUE(out == "nm" || out == "mn") << out;
  // No confusable characters -> unchanged.
  EXPECT_EQ(ErrorInjector::OcrConfuse("xyz", &rng), "xyz");
}

TEST(ErrorInjectorTest, SubstitutePreservesCase) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    std::string out = ErrorInjector::SubstituteChar("A", &rng);
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(out[0]))) << out;
  }
}

TEST(ErrorInjectorTest, ZeroRatesAreIdentity) {
  ErrorInjectorOptions options;
  options.char_error_rate = 0.0;
  options.truncate_prob = 0.0;
  options.abbreviate_prob = 0.0;
  options.token_swap_prob = 0.0;
  options.ocr_prob = 0.0;
  ErrorInjector injector(options);
  Rng rng(5);
  EXPECT_EQ(injector.Corrupt("machinist", &rng), "machinist");
}

TEST(ErrorInjectorTest, HighRatesUsuallyChangeValue) {
  ErrorInjectorOptions options;
  options.char_error_rate = 0.3;
  ErrorInjector injector(options);
  Rng rng(5);
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    if (injector.Corrupt("machinist", &rng) != "machinist") ++changed;
  }
  EXPECT_GT(changed, 80);
}

TEST(ErrorInjectorTest, DeterministicUnderSeed) {
  ErrorInjector injector;
  Rng a(9), b(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(injector.Corrupt("confectioner", &a),
              injector.Corrupt("confectioner", &b));
  }
}

// ----------------------------------------------------- uncertainty channel

TEST(UncertaintyInjectorTest, ValuesAreAlwaysValid) {
  ErrorInjector errors;
  UncertaintyOptions options;
  options.value_uncertainty_prob = 1.0;
  options.null_mass_prob = 0.5;
  UncertaintyInjector injector(options, &errors);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    Value v = injector.MakeValue("machinist", &rng);
    double total = 0.0;
    for (const Alternative& a : v.alternatives()) {
      EXPECT_GT(a.prob, 0.0);
      total += a.prob;
    }
    EXPECT_LE(total, 1.0 + 1e-9);
    // Truth is the dominant alternative.
    EXPECT_EQ(v.alternatives()[0].text, "machinist");
  }
}

TEST(UncertaintyInjectorTest, ZeroUncertaintyYieldsCertainValues) {
  ErrorInjector errors;
  UncertaintyOptions options;
  options.value_uncertainty_prob = 0.0;
  UncertaintyInjector injector(options, &errors);
  Rng rng(11);
  Value v = injector.MakeValue("pilot", &rng);
  EXPECT_TRUE(v.is_certain());
  EXPECT_EQ(v.MostProbableText(), "pilot");
}

TEST(UncertaintyInjectorTest, XTuplesValidate) {
  ErrorInjector errors;
  UncertaintyOptions options;
  options.xtuple_alternative_prob = 1.0;
  options.maybe_prob = 0.5;
  UncertaintyInjector injector(options, &errors);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    XTuple t = injector.MakeXTuple("t" + std::to_string(i),
                                   {"Tim", "mechanic", "Hamburg"}, &rng);
    EXPECT_TRUE(t.Validate().ok()) << t.ToString();
    EXPECT_EQ(t.arity(), 3u);
    EXPECT_GE(t.size(), 1u);
  }
}

TEST(UncertaintyInjectorTest, MaybeProbabilityRespected) {
  ErrorInjector errors;
  UncertaintyOptions options;
  options.maybe_prob = 1.0;
  UncertaintyInjector injector(options, &errors);
  Rng rng(13);
  XTuple t = injector.MakeXTuple("t", {"Tim"}, &rng);
  EXPECT_TRUE(t.is_maybe());
  options.maybe_prob = 0.0;
  UncertaintyInjector certain(options, &errors);
  XTuple t2 = certain.MakeXTuple("t", {"Tim"}, &rng);
  EXPECT_FALSE(t2.is_maybe());
}

// ------------------------------------------------------------------ person

TEST(PersonGeneratorTest, SchemaAndSizes) {
  PersonGenOptions options;
  options.num_entities = 50;
  options.duplicate_rate = 1.0;
  GeneratedData data = GeneratePersons(options);
  EXPECT_EQ(data.num_entities, 50u);
  EXPECT_GE(data.relation.size(), 50u);
  EXPECT_TRUE(data.relation.schema().CompatibleWith(PersonSchema()));
  // With duplicate_rate 1 there must be duplicates and gold pairs.
  EXPECT_GT(data.gold.size(), 0u);
}

TEST(PersonGeneratorTest, AllXTuplesValid) {
  PersonGenOptions options;
  options.num_entities = 40;
  GeneratedData data = GeneratePersons(options);
  for (const XTuple& t : data.relation.xtuples()) {
    EXPECT_TRUE(t.Validate().ok()) << t.id();
  }
}

TEST(PersonGeneratorTest, UniqueIds) {
  PersonGenOptions options;
  options.num_entities = 60;
  GeneratedData data = GeneratePersons(options);
  std::set<std::string> ids;
  for (const XTuple& t : data.relation.xtuples()) {
    EXPECT_TRUE(ids.insert(t.id()).second) << t.id();
  }
}

TEST(PersonGeneratorTest, DeterministicUnderSeed) {
  PersonGenOptions options;
  options.num_entities = 20;
  options.seed = 77;
  GeneratedData a = GeneratePersons(options);
  GeneratedData b = GeneratePersons(options);
  ASSERT_EQ(a.relation.size(), b.relation.size());
  EXPECT_EQ(a.gold.size(), b.gold.size());
  for (size_t i = 0; i < a.relation.size(); ++i) {
    EXPECT_EQ(a.relation.xtuple(i).ToString(),
              b.relation.xtuple(i).ToString());
  }
}

TEST(PersonGeneratorTest, GoldPairsConnectOnlyGeneratedIds) {
  PersonGenOptions options;
  options.num_entities = 30;
  options.duplicate_rate = 0.8;
  GeneratedData data = GeneratePersons(options);
  std::set<std::string> ids;
  for (const XTuple& t : data.relation.xtuples()) ids.insert(t.id());
  for (const IdPair& pair : data.gold.Pairs()) {
    EXPECT_TRUE(ids.count(pair.first)) << pair.first;
    EXPECT_TRUE(ids.count(pair.second)) << pair.second;
  }
}

TEST(PersonGeneratorTest, ZeroDuplicateRateYieldsNoGold) {
  PersonGenOptions options;
  options.num_entities = 30;
  options.duplicate_rate = 0.0;
  GeneratedData data = GeneratePersons(options);
  EXPECT_EQ(data.gold.size(), 0u);
  EXPECT_EQ(data.relation.size(), 30u);
}

TEST(PersonGeneratorTest, TwoSourceSplitPreservesRecords) {
  PersonGenOptions options;
  options.num_entities = 25;
  options.duplicate_rate = 1.0;
  GeneratedSources sources = GeneratePersonSources(options);
  GeneratedData whole = GeneratePersons(options);
  EXPECT_EQ(sources.source1.size() + sources.source2.size(),
            whole.relation.size());
  EXPECT_EQ(sources.gold.size(), whole.gold.size());
}

TEST(PersonGeneratorTest, FullNamesOption) {
  PersonGenOptions options;
  options.num_entities = 10;
  options.full_names = true;
  options.uncertainty.value_uncertainty_prob = 0.0;
  GeneratedData data = GeneratePersons(options);
  // First record of each entity is clean: full name has two tokens.
  const Value& name = data.relation.xtuple(0).alternative(0).values[0];
  EXPECT_EQ(SplitWhitespace(name.MostProbableText()).size(), 2u);
}

// --------------------------------------------------------------- telescope

TEST(AstronomyGeneratorTest, SchemaAndGold) {
  AstroGenOptions options;
  options.num_objects = 50;
  options.detection_prob = 1.0;
  GeneratedSources sources = GenerateTelescopeSources(options);
  EXPECT_EQ(sources.source1.size(), 50u);
  EXPECT_EQ(sources.source2.size(), 50u);
  EXPECT_EQ(sources.gold.size(), 50u);  // every object seen by both
  EXPECT_TRUE(sources.source1.schema().CompatibleWith(TelescopeSchema()));
}

TEST(AstronomyGeneratorTest, PartialDetectionShrinksGold) {
  AstroGenOptions options;
  options.num_objects = 200;
  options.detection_prob = 0.5;
  GeneratedSources sources = GenerateTelescopeSources(options);
  // Cross-source pairs only exist for doubly-detected objects (~25%).
  EXPECT_LT(sources.gold.size(), 120u);
  EXPECT_GT(sources.gold.size(), 20u);
}

TEST(AstronomyGeneratorTest, ValuesAreValidDiscreteDistributions) {
  AstroGenOptions options;
  options.num_objects = 30;
  options.readings = 4;
  GeneratedSources sources = GenerateTelescopeSources(options);
  for (const XRelation* rel : {&sources.source1, &sources.source2}) {
    for (const XTuple& t : rel->xtuples()) {
      EXPECT_TRUE(t.Validate().ok());
      for (const Value& v : t.alternative(0).values) {
        EXPECT_GE(v.size(), 1u);
        EXPECT_LE(v.size(), 4u);
        EXPECT_NEAR(v.existence_probability(), 1.0, 1e-9);
      }
    }
  }
}

TEST(AstronomyGeneratorTest, FaintDetectionsAreMaybe) {
  AstroGenOptions options;
  options.num_objects = 100;
  options.faint_prob = 1.0;
  GeneratedSources sources = GenerateTelescopeSources(options);
  for (const XTuple& t : sources.source1.xtuples()) {
    EXPECT_TRUE(t.is_maybe()) << t.id();
  }
}

TEST(AstronomyGeneratorTest, DeterministicUnderSeed) {
  AstroGenOptions options;
  options.num_objects = 20;
  GeneratedSources a = GenerateTelescopeSources(options);
  GeneratedSources b = GenerateTelescopeSources(options);
  EXPECT_EQ(a.source1.size(), b.source1.size());
  EXPECT_EQ(a.gold.size(), b.gold.size());
}

}  // namespace
}  // namespace pdd
