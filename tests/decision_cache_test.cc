// Tests for the decision-cache subsystem: pair content digests,
// the sharded LRU store (incl. concurrency and disk snapshots), and
// the StageExecutor/DuplicateDetector memoization path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <unordered_map>

#include "cache/decision_cache.h"
#include "cache/pair_digest.h"
#include "core/detector.h"
#include "core/explain.h"
#include "datagen/person_generator.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/detection_plan.h"
#include "pipeline/stage_executor.h"
#include "plan/plan_builder.h"
#include "sim/edit_distance.h"

namespace pdd {
namespace {

XTuple MakeTuple(const std::string& id, const std::string& name,
                 const std::string& job, double prob = 1.0) {
  return XTuple(id, {{{Value::Certain(name), Value::Certain(job)}, prob}});
}

DetectorConfig PersonConfig() {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  config.final_thresholds = {0.4, 0.7};
  return config;
}

GeneratedData SeededPersons(size_t entities = 60, uint64_t seed = 20100301) {
  PersonGenOptions options;
  options.num_entities = entities;
  options.duplicate_rate = 0.8;
  options.uncertainty.value_uncertainty_prob = 0.3;
  options.uncertainty.xtuple_alternative_prob = 0.3;
  options.seed = seed;
  return GeneratePersons(options);
}

void ExpectIdenticalDecisions(const DetectionResult& a,
                              const DetectionResult& b) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].id1, b.decisions[i].id1) << "record " << i;
    EXPECT_EQ(a.decisions[i].id2, b.decisions[i].id2) << "record " << i;
    // Bit-identical: the cache must serve exactly the bits the stage
    // graph produced, never a re-derived approximation.
    EXPECT_EQ(a.decisions[i].similarity, b.decisions[i].similarity)
        << "record " << i;
    EXPECT_EQ(a.decisions[i].match_class, b.decisions[i].match_class)
        << "record " << i;
  }
}

// --- digests --------------------------------------------------------

TEST(PairDigestTest, TupleDigestIgnoresIdButReadsContent) {
  XTuple a = MakeTuple("t1", "anna", "doctor");
  XTuple same_content = MakeTuple("t2", "anna", "doctor");
  XTuple other_name = MakeTuple("t1", "anne", "doctor");
  XTuple other_prob("t1",
                    {{{Value::Certain("anna"), Value::Certain("doctor")},
                      0.5}});
  EXPECT_EQ(TupleContentDigest(a), TupleContentDigest(same_content));
  EXPECT_NE(TupleContentDigest(a), TupleContentDigest(other_name));
  EXPECT_NE(TupleContentDigest(a), TupleContentDigest(other_prob));
}

TEST(PairDigestTest, ValueDistributionReachesTheDigest) {
  XTuple plain("t", {{{Value::Certain("anna"), Value::Certain("doctor")},
                      1.0}});
  XTuple dist("t", {{{Value::Dist({{"anna", 0.5}, {"hanna", 0.5}}),
                      Value::Certain("doctor")},
                     1.0}});
  XTuple pattern("t", {{{Value::Pattern("anna", 1.0),
                         Value::Certain("doctor")},
                        1.0}});
  EXPECT_NE(TupleContentDigest(plain), TupleContentDigest(dist));
  // Same text and probability, but pattern flag set: must differ.
  EXPECT_NE(TupleContentDigest(plain), TupleContentDigest(pattern));
}

TEST(PairDigestTest, PairDigestIsOrderInvariant) {
  XTuple a = MakeTuple("a", "anna", "doctor");
  XTuple b = MakeTuple("b", "bernd", "baker");
  EXPECT_EQ(PairContentDigest(a, b), PairContentDigest(b, a));
  EXPECT_EQ(CombineTupleDigests(1, 2), CombineTupleDigests(2, 1));
  // Unordered combination must still separate {x,x} from {y,y} (a
  // plain xor would map both to the same digest).
  EXPECT_NE(CombineTupleDigests(1, 1), CombineTupleDigests(2, 2));
}

TEST(PairDigestTest, CollisionSanityOverGeneratedRelation) {
  GeneratedData data = SeededPersons(120);
  // Distinct tuple contents must digest distinctly (64-bit FNV over a
  // few hundred tuples: a collision here means a broken digest, not
  // bad luck).
  std::unordered_map<uint64_t, std::string> seen;
  size_t distinct = 0;
  for (const XTuple& t : data.relation.xtuples()) {
    // ToString() minus the leading id line: digests are content-only,
    // so exact duplicates under different ids SHOULD share a digest.
    std::string content = t.ToString();
    content.erase(0, content.find('\n') + 1);
    uint64_t digest = TupleContentDigest(t);
    auto [it, inserted] = seen.emplace(digest, content);
    if (inserted) {
      ++distinct;
    } else {
      EXPECT_EQ(it->second, content)
          << "digest collision between different contents";
    }
  }
  EXPECT_GT(distinct, 100u);
}

// --- sharded LRU store ----------------------------------------------

PairDecisionKey Key(uint64_t fp, uint64_t digest) {
  PairDecisionKey key;
  key.plan_fingerprint = fp;
  key.pair_digest = digest;
  return key;
}

TEST(ShardedDecisionCacheTest, LruEvictsOldestAtCapacity) {
  ShardedDecisionCacheOptions options;
  options.capacity = 3;
  options.shards = 1;  // single stripe so the LRU order is global
  ShardedDecisionCache cache(options);
  for (uint64_t i = 1; i <= 3; ++i) {
    cache.Insert(Key(7, i), {0.1 * static_cast<double>(i),
                             MatchClass::kUnmatch});
  }
  // Touch key 1 so key 2 becomes the least recently used...
  EXPECT_TRUE(cache.Lookup(Key(7, 1)).has_value());
  cache.Insert(Key(7, 4), {0.4, MatchClass::kMatch});
  // ...and is the one evicted.
  EXPECT_FALSE(cache.Lookup(Key(7, 2)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(7, 1)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(7, 3)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(7, 4)).has_value());
  EXPECT_EQ(cache.size(), 3u);
  DecisionCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.inserts, 4u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 3u);
}

TEST(ShardedDecisionCacheTest, ReinsertRefreshesWithoutEviction) {
  ShardedDecisionCacheOptions options;
  options.capacity = 2;
  options.shards = 1;
  ShardedDecisionCache cache(options);
  cache.Insert(Key(1, 1), {0.1, MatchClass::kUnmatch});
  cache.Insert(Key(1, 2), {0.2, MatchClass::kUnmatch});
  cache.Insert(Key(1, 1), {0.9, MatchClass::kMatch});  // refresh, not new
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Stats().evictions, 0u);
  std::optional<CachedPairDecision> hit = cache.Lookup(Key(1, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->similarity, 0.9);
  EXPECT_EQ(hit->match_class, MatchClass::kMatch);
}

// Regression: capacity must divide over the stripes EXACTLY. The old
// division rounded every stripe up to at least one entry, so capacity 8
// over 16 stripes admitted 16 residents; and plain truncation loses the
// remainder (capacity 10 over 8 stripes bounded only 8). The per-shard
// bounds must always sum to the configured capacity, and the resident
// total must never exceed it.
TEST(ShardedDecisionCacheTest, CapacityDividesOverShardsExactly) {
  struct Case {
    size_t capacity;
    size_t shards;
  };
  const Case cases[] = {{8, 16}, {10, 8}, {3, 16}, {1, 4},
                        {7, 2},  {100, 16}, {4096, 16}};
  for (const Case& c : cases) {
    ShardedDecisionCacheOptions options;
    options.capacity = c.capacity;
    options.shards = c.shards;
    ShardedDecisionCache cache(options);
    // The per-shard bounds sum to the capacity exactly — never more
    // (silent inflation), never less (lost remainder).
    EXPECT_EQ(cache.TotalCapacity(), c.capacity)
        << "capacity " << c.capacity << " over " << c.shards << " shards";
    // Hammer with far more distinct keys than capacity: whatever the
    // hash spread, the resident total must respect the bound.
    for (uint64_t i = 0; i < 64 * c.capacity + 100; ++i) {
      cache.Insert(Key(9, i + 1), {0.5, MatchClass::kPossible});
    }
    EXPECT_LE(cache.size(), c.capacity)
        << "capacity " << c.capacity << " over " << c.shards << " shards";
    EXPECT_EQ(cache.Stats().size, cache.size());
  }
}

TEST(ShardedDecisionCacheTest, SamePairDifferentPlanFingerprints) {
  ShardedDecisionCache cache;
  cache.Insert(Key(1, 42), {0.5, MatchClass::kPossible});
  EXPECT_TRUE(cache.Lookup(Key(1, 42)).has_value());
  // A different plan fingerprint is a different entry: no cross-plan
  // leakage between plans whose decide stages differ.
  EXPECT_FALSE(cache.Lookup(Key(2, 42)).has_value());
}

TEST(ShardedDecisionCacheTest, ConcurrentHammerMatchesReference) {
  // The deterministic value for key i — what every thread inserts and
  // what a single-threaded reference run would hold.
  auto value_of = [](uint64_t i) {
    return CachedPairDecision{static_cast<double>(i) * 0.001,
                              i % 3 == 0 ? MatchClass::kMatch
                                         : MatchClass::kUnmatch};
  };
  constexpr size_t kThreads = 8;
  constexpr size_t kKeys = 2048;
  constexpr size_t kOpsPerThread = 20000;
  ShardedDecisionCacheOptions options;
  options.capacity = 4096;  // no evictions: every key stays resident
  options.shards = 16;
  ShardedDecisionCache cache(options);
  std::atomic<size_t> wrong_values{0};
  std::vector<std::thread> pool;
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t i = (state >> 33) % kKeys;
        PairDecisionKey key = Key(/*fp=*/99, /*digest=*/i);
        if (state & 1) {
          cache.Insert(key, value_of(i));
        } else {
          std::optional<CachedPairDecision> hit = cache.Lookup(key);
          if (hit.has_value() && !(*hit == value_of(i))) ++wrong_values;
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(wrong_values.load(), 0u)
      << "a lookup observed a value no insert ever wrote";
  // Single-threaded reference sweep: everything inserted must be
  // resident (capacity exceeds the key space) with the right value.
  size_t resident = 0;
  for (uint64_t i = 0; i < kKeys; ++i) {
    std::optional<CachedPairDecision> hit = cache.Lookup(Key(99, i));
    if (!hit.has_value()) continue;
    ++resident;
    EXPECT_TRUE(*hit == value_of(i)) << "key " << i;
  }
  EXPECT_GT(resident, kKeys / 2);
  EXPECT_EQ(cache.Stats().evictions, 0u);
  EXPECT_EQ(cache.size(), resident);
}

// --- disk snapshot --------------------------------------------------

class SnapshotFile {
 public:
  explicit SnapshotFile(const char* name) : path_(name) {
    std::remove(path_.c_str());
  }
  ~SnapshotFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SnapshotTest, RoundTripIsBitIdentical) {
  SnapshotFile file("decision_cache_test_roundtrip.pddcache");
  ShardedDecisionCache cache;
  // Values chosen to stress the bit-pattern serialization (not
  // representable exactly in short decimal form).
  cache.Insert(Key(0xdeadbeef, 1), {0.1 + 0.2, MatchClass::kMatch});
  cache.Insert(Key(0xdeadbeef, 2), {1.0 / 3.0, MatchClass::kPossible});
  cache.Insert(Key(0xffffffffffffffffull, 0), {0.0, MatchClass::kUnmatch});
  ASSERT_TRUE(cache.AppendSnapshot(file.path()).ok());

  ShardedDecisionCache restored;
  ASSERT_TRUE(restored.LoadSnapshot(file.path()).ok());
  EXPECT_EQ(restored.size(), 3u);
  std::optional<CachedPairDecision> hit = restored.Lookup(Key(0xdeadbeef, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->similarity, 0.1 + 0.2);  // exact bits, not ~0.3
  EXPECT_EQ(hit->match_class, MatchClass::kMatch);
  hit = restored.Lookup(Key(0xdeadbeef, 2));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->similarity, 1.0 / 3.0);
  EXPECT_EQ(hit->match_class, MatchClass::kPossible);
}

TEST(SnapshotTest, SavesAreAppendOnly) {
  SnapshotFile file("decision_cache_test_append.pddcache");
  ShardedDecisionCache cache;
  cache.Insert(Key(1, 1), {0.25, MatchClass::kUnmatch});
  ASSERT_TRUE(cache.AppendSnapshot(file.path()).ok());
  // Second save with no new entries must not grow the file.
  std::ifstream before(file.path(), std::ios::ate);
  std::streampos size_before = before.tellg();
  before.close();
  ASSERT_TRUE(cache.AppendSnapshot(file.path()).ok());
  std::ifstream unchanged(file.path(), std::ios::ate);
  EXPECT_EQ(unchanged.tellg(), size_before);
  unchanged.close();
  // New inserts append; the earlier entry survives a reload.
  cache.Insert(Key(1, 2), {0.75, MatchClass::kMatch});
  ASSERT_TRUE(cache.AppendSnapshot(file.path()).ok());
  ShardedDecisionCache restored;
  ASSERT_TRUE(restored.LoadSnapshot(file.path()).ok());
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_TRUE(restored.Lookup(Key(1, 1)).has_value());
  EXPECT_TRUE(restored.Lookup(Key(1, 2)).has_value());
}

TEST(SnapshotTest, MissingFileIsNotFoundAndGarbageIsParseError) {
  ShardedDecisionCache cache;
  Status missing = cache.LoadSnapshot("decision_cache_test_missing.tmp");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  SnapshotFile file("decision_cache_test_garbage.pddcache");
  {
    std::ofstream out(file.path());
    out << "not a cache file\n";
  }
  EXPECT_EQ(cache.LoadSnapshot(file.path()).code(),
            StatusCode::kParseError);
}

// --- executor integration -------------------------------------------

TEST(CachedExecutionTest, CachedColdWarmAndParallelAreBitIdentical) {
  GeneratedData data = SeededPersons();
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok()) << detector.status().ToString();
  Result<DetectionResult> uncached = detector->Run(data.relation);
  ASSERT_TRUE(uncached.ok());
  ASSERT_GT(uncached->decisions.size(), 0u);
  EXPECT_FALSE(uncached->cache_stats.has_value());

  auto cache = std::make_shared<ShardedDecisionCache>();
  detector->set_cache(cache);
  Result<DetectionResult> cold = detector->Run(data.relation);
  ASSERT_TRUE(cold.ok());
  Result<DetectionResult> warm = detector->Run(data.relation);
  ASSERT_TRUE(warm.ok());
  ExpectIdenticalDecisions(*uncached, *cold);
  ExpectIdenticalDecisions(*uncached, *warm);

  ASSERT_TRUE(cold.value().cache_stats.has_value());
  ASSERT_TRUE(warm.value().cache_stats.has_value());
  // The repeated identical run must be pure hit path.
  EXPECT_EQ(warm->cache_stats->hits, warm->cache_stats->lookups);
  EXPECT_GT(warm->cache_stats->HitRate(), 0.95);
  EXPECT_EQ(warm->cache_stats->inserts, 0u);

  // Thread-pool run against the same cache: still bit-identical.
  Result<std::unique_ptr<CandidateStream>> stream =
      MakeFullStream(detector->plan(), data.relation);
  ASSERT_TRUE(stream.ok());
  StageExecutorOptions options;
  options.workers = 4;
  options.batch_size = 32;
  options.cache = cache;
  StageExecutor executor(detector->shared_plan(), options);
  Result<DetectionResult> parallel = executor.Execute(**stream);
  ASSERT_TRUE(parallel.ok());
  ExpectIdenticalDecisions(*uncached, *parallel);
  EXPECT_GT(parallel->cache_stats->HitRate(), 0.95);
}

TEST(CachedExecutionTest, StageTimingsAccumulateWhenOptedIn) {
  GeneratedData data = SeededPersons(30);
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  // Off by default: the hot path pays no clock reads unasked.
  Result<DetectionResult> untimed = detector->Run(data.relation);
  ASSERT_TRUE(untimed.ok());
  EXPECT_EQ(untimed->stage_timings.TotalSeconds(), 0.0);

  detector->set_collect_stage_timings(true);
  Result<DetectionResult> timed = detector->Run(data.relation);
  ASSERT_TRUE(timed.ok());
  EXPECT_GT(timed->stage_timings.TotalSeconds(), 0.0);
  EXPECT_GT(timed->stage_timings.match_seconds, 0.0);
  // The timed walk executes the same stage graph bit for bit.
  ExpectIdenticalDecisions(*untimed, *timed);
}

TEST(CachedExecutionTest, ReductionSweepReusesDecisionsAcrossPlans) {
  GeneratedData data = SeededPersons();
  auto cache = std::make_shared<ShardedDecisionCache>();
  auto make_plan = [&](size_t window) {
    PlanBuilder builder;
    builder.AddKey("name", 3).AddKey("job", 2).Weights({0.5, 0.3, 0.2});
    builder.Reduction("snm_sorting_alternatives")
        .Set("reduction.window", window);
    Result<std::shared_ptr<const DetectionPlan>> plan =
        DetectionPlan::Compile(builder.Build(), PersonSchema());
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return *plan;
  };
  std::shared_ptr<const DetectionPlan> narrow = make_plan(3);
  std::shared_ptr<const DetectionPlan> wide = make_plan(9);
  // Different full plan identities, same decide stage.
  EXPECT_NE(narrow->fingerprint(), wide->fingerprint());
  EXPECT_EQ(narrow->decision_fingerprint(), wide->decision_fingerprint());

  auto run = [&](const std::shared_ptr<const DetectionPlan>& plan,
                 std::shared_ptr<DecisionCache> shared) {
    Result<std::unique_ptr<CandidateStream>> stream =
        MakeFullStream(*plan, data.relation);
    EXPECT_TRUE(stream.ok());
    StageExecutorOptions options;
    options.cache = std::move(shared);
    Result<DetectionResult> result =
        StageExecutor(plan, options).Execute(**stream);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(*result);
  };
  DetectionResult narrow_run = run(narrow, cache);
  DetectionResult wide_uncached = run(wide, nullptr);
  // A fresh-cache run isolates the intra-run hits (generated data has
  // exact content duplicates, which legitimately hit each other)...
  DetectionResult wide_fresh =
      run(wide, std::make_shared<ShardedDecisionCache>());
  DetectionResult wide_cached = run(wide, cache);
  // ...so cross-plan reuse shows as hits beyond the fresh-cache count:
  // the wide window examines a superset of the narrow window's pairs
  // and pulls those decisions from the shared cache.
  EXPECT_GT(wide_cached.cache_stats->hits,
            wide_fresh.cache_stats->hits);
  EXPECT_GE(wide_cached.cache_stats->hits,
            narrow_run.cache_stats->inserts);
  ExpectIdenticalDecisions(wide_uncached, wide_cached);
}

TEST(CachedExecutionTest, ChangedDecideComponentsNeverServeStale) {
  GeneratedData data = SeededPersons();
  auto cache = std::make_shared<ShardedDecisionCache>();
  DetectorConfig config = PersonConfig();
  Result<DuplicateDetector> original =
      DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(original.ok());
  original->set_cache(cache);
  ASSERT_TRUE(original->Run(data.relation).ok());  // populate

  // A decide-relevant change (derivation ϑ) yields a new decision
  // fingerprint: zero hits, fresh decisions identical to uncached.
  config.derivation = DerivationKind::kMinSimilarity;
  Result<DuplicateDetector> changed =
      DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(changed.ok());
  EXPECT_NE(changed->plan().decision_fingerprint(),
            original->plan().decision_fingerprint());
  Result<DetectionResult> fresh_uncached = changed->Run(data.relation);
  ASSERT_TRUE(fresh_uncached.ok());
  changed->set_cache(cache);
  Result<DetectionResult> on_shared = changed->Run(data.relation);
  ASSERT_TRUE(on_shared.ok());
  changed->set_cache(std::make_shared<ShardedDecisionCache>());
  Result<DetectionResult> on_empty = changed->Run(data.relation);
  ASSERT_TRUE(on_empty.ok());
  // Intra-run content-duplicate hits are fine and identical either
  // way; anything beyond them would be a stale entry served from the
  // original plan's population.
  EXPECT_EQ(on_shared->cache_stats->hits, on_empty->cache_stats->hits);
  ExpectIdenticalDecisions(*fresh_uncached, *on_shared);

  // Threshold changes are decide-relevant too.
  DetectorConfig thresholds = PersonConfig();
  thresholds.final_thresholds = {0.3, 0.9};
  Result<DuplicateDetector> rethresholded =
      DuplicateDetector::Make(thresholds, PersonSchema());
  ASSERT_TRUE(rethresholded.ok());
  EXPECT_NE(rethresholded->plan().decision_fingerprint(),
            original->plan().decision_fingerprint());
}

TEST(CachedExecutionTest, IncrementalRerunHitsAndInvalidatesByPlan) {
  GeneratedData existing = SeededPersons(30);
  GeneratedData additions_data = SeededPersons(10, /*seed=*/77);
  XRelation additions("additions", additions_data.relation.schema());
  size_t n = 0;
  for (const XTuple& t : additions_data.relation.xtuples()) {
    XTuple renamed("new" + std::to_string(n++), t.alternatives());
    ASSERT_TRUE(additions.Append(std::move(renamed)).ok());
  }
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> uncached =
      detector->RunIncremental(existing.relation, additions);
  ASSERT_TRUE(uncached.ok());

  auto cache = std::make_shared<ShardedDecisionCache>();
  detector->set_cache(cache);
  Result<DetectionResult> cold =
      detector->RunIncremental(existing.relation, additions);
  ASSERT_TRUE(cold.ok());
  // An identical incremental re-run is pure hit path (100%).
  Result<DetectionResult> warm =
      detector->RunIncremental(existing.relation, additions);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->cache_stats->hits, warm->cache_stats->lookups);
  EXPECT_GT(warm->cache_stats->HitRate(), 0.95);
  ExpectIdenticalDecisions(*uncached, *cold);
  ExpectIdenticalDecisions(*uncached, *warm);

  // A changed plan fingerprint (decide-relevant: Tμ) must not serve
  // any of those entries.
  DetectorConfig strict = PersonConfig();
  strict.final_thresholds = {0.4, 0.95};
  Result<DuplicateDetector> changed =
      DuplicateDetector::Make(strict, PersonSchema());
  ASSERT_TRUE(changed.ok());
  Result<DetectionResult> changed_uncached =
      changed->RunIncremental(existing.relation, additions);
  ASSERT_TRUE(changed_uncached.ok());
  changed->set_cache(cache);
  Result<DetectionResult> on_shared =
      changed->RunIncremental(existing.relation, additions);
  ASSERT_TRUE(on_shared.ok());
  changed->set_cache(std::make_shared<ShardedDecisionCache>());
  Result<DetectionResult> on_empty =
      changed->RunIncremental(existing.relation, additions);
  ASSERT_TRUE(on_empty.ok());
  // Only intra-run content-duplicate hits are allowed — none of the
  // old plan's entries may be served under the new fingerprint.
  EXPECT_EQ(on_shared->cache_stats->hits, on_empty->cache_stats->hits);
  ExpectIdenticalDecisions(*changed_uncached, *on_shared);
}

TEST(CachedExecutionTest, CustomComparatorPlansBypassTheCache) {
  GeneratedData data = SeededPersons(20);
  NormalizedHammingComparator hamming;
  DetectorConfig config = PersonConfig();
  config.custom_comparators = {&hamming, &hamming, &hamming};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(detector.ok()) << detector.status().ToString();
  EXPECT_EQ(detector->plan().decision_fingerprint(), 0u);
  auto cache = std::make_shared<ShardedDecisionCache>();
  detector->set_cache(cache);
  Result<DetectionResult> first = detector->Run(data.relation);
  Result<DetectionResult> second = detector->Run(data.relation);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Stats are reported (a cache was attached) but nothing was looked
  // up or stored: no stable key exists for custom code.
  ASSERT_TRUE(second->cache_stats.has_value());
  EXPECT_EQ(second->cache_stats->lookups, 0u);
  EXPECT_EQ(cache->size(), 0u);
  ExpectIdenticalDecisions(*first, *second);
}

// --- fingerprint stamping (0 == unknown; real runs stamp real ids) --

TEST(FingerprintStampingTest, EveryEntryPathStampsANonZeroFingerprint) {
  GeneratedData data = SeededPersons(20);
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  EXPECT_NE(detector->plan().fingerprint(), 0u);
  EXPECT_NE(detector->plan().decision_fingerprint(), 0u);

  Result<DetectionResult> full = detector->Run(data.relation);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->plan_fingerprint, detector->plan().fingerprint());
  EXPECT_NE(full->plan_fingerprint, 0u);

  PersonGenOptions options;
  options.num_entities = 10;
  options.seed = 4242;
  GeneratedSources sources = GeneratePersonSources(options);
  Result<DetectionResult> unioned =
      detector->RunOnSources(sources.source1, sources.source2);
  ASSERT_TRUE(unioned.ok());
  EXPECT_NE(unioned->plan_fingerprint, 0u);

  GeneratedData additions = SeededPersons(5, /*seed=*/99);
  XRelation renamed("additions", additions.relation.schema());
  size_t n = 0;
  for (const XTuple& t : additions.relation.xtuples()) {
    ASSERT_TRUE(
        renamed.Append(XTuple("new" + std::to_string(n++), t.alternatives()))
            .ok());
  }
  Result<DetectionResult> incremental =
      detector->RunIncremental(data.relation, renamed);
  ASSERT_TRUE(incremental.ok());
  EXPECT_NE(incremental->plan_fingerprint, 0u);

  PairExplanation explanation = ExplainPair(
      *detector, data.relation.xtuple(0), data.relation.xtuple(1));
  EXPECT_EQ(explanation.plan_fingerprint, detector->plan().fingerprint());
  EXPECT_NE(explanation.plan_fingerprint, 0u);
}

}  // namespace
}  // namespace pdd
