// Tests for the decision-index serving layer (src/index/): the
// pdd.index.v1 format round trip, byte-identical answers against the
// fresh pipeline across every run shape (serial / pooled / sharded /
// cached), structural staleness and corruption rejection, and the
// zero-allocation query guarantee (global operator-new counting
// hooks — the reason these tests live in their own binary).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "cache/decision_cache.h"
#include "core/detector.h"
#include "core/entity_clusters.h"
#include "datagen/person_generator.h"
#include "index/decision_index.h"
#include "index/format.h"
#include "index/index_builder.h"
#include "obs/metrics_registry.h"

// --- allocation counting hooks --------------------------------------
//
// Every allocation in the binary routes through these. The
// ZeroAllocation tests snapshot the counter around query sweeps; the
// rest of the suite simply ignores it.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pdd {
namespace {

GeneratedData SeededPersons(size_t entities = 60, uint64_t seed = 20100301) {
  PersonGenOptions options;
  options.num_entities = entities;
  options.duplicate_rate = 0.8;
  options.uncertainty.value_uncertainty_prob = 0.3;
  options.uncertainty.xtuple_alternative_prob = 0.3;
  options.seed = seed;
  return GeneratePersons(options);
}

DetectorConfig PersonConfig(const Schema& schema) {
  DetectorConfig config;
  config.key.clear();
  config.key.emplace_back(schema.attribute(0).name, 3);
  if (schema.arity() > 1) {
    config.key.emplace_back(schema.attribute(1).name, 2);
  }
  config.weights.assign(schema.arity(),
                        1.0 / static_cast<double>(schema.arity()));
  return config;
}

Result<DetectionResult> RunShape(const XRelation& rel,
                                 const std::string& shape) {
  DetectorConfig config = PersonConfig(rel.schema());
  if (shape == "pooled") {
    config.workers = 4;
    config.batch_size = 16;
  }
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, rel.schema());
  if (!detector.ok()) return detector.status();
  if (shape == "sharded") {
    detector->set_shard_options({3, ShardStrategy::kAuto});
  }
  if (shape == "cached") {
    detector->set_cache(std::make_shared<ShardedDecisionCache>());
    // Warm run, then the run under test is served from the cache.
    Result<DetectionResult> warm = detector->Run(rel);
    if (!warm.ok()) return warm.status();
  }
  return detector->Run(rel);
}

std::string MustBuild(const XRelation& rel, const DetectionResult& result,
                      IndexBuildStats* stats = nullptr) {
  Result<std::string> image = BuildDecisionIndexImage(rel, result, stats);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return image.ok() ? *image : std::string();
}

DecisionIndex MustOpenImage(std::string image) {
  Result<DecisionIndex> index = DecisionIndex::FromImage(std::move(image));
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return index.ok() ? *std::move(index) : DecisionIndex();
}

class IndexFile {
 public:
  explicit IndexFile(const char* name) : path_(name) {
    std::remove(path_.c_str());
  }
  ~IndexFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- answers vs the fresh pipeline ----------------------------------

TEST(DecisionIndexTest, AnswersMatchTheFreshPipelineExactly) {
  GeneratedData data = SeededPersons();
  Result<DetectionResult> result = RunShape(data.relation, "serial");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->decisions.size(), 0u);
  DecisionIndex index = MustOpenImage(MustBuild(data.relation, *result));

  for (const PairDecisionRecord& rec : result->decisions) {
    SCOPED_TRACE(rec.id1 + "/" + rec.id2);
    std::optional<IndexedDecision> by_index =
        index.Lookup(static_cast<uint32_t>(rec.index1),
                     static_cast<uint32_t>(rec.index2));
    ASSERT_TRUE(by_index.has_value());
    EXPECT_EQ(by_index->match_class, rec.match_class);
    // Bit-identical similarity: the index serves the report's bits,
    // never a re-derived approximation.
    EXPECT_EQ(by_index->similarity, rec.similarity);
    // Unordered-pair symmetry and the id-keyed form agree.
    std::optional<IndexedDecision> reversed =
        index.Lookup(static_cast<uint32_t>(rec.index2),
                     static_cast<uint32_t>(rec.index1));
    ASSERT_TRUE(reversed.has_value());
    EXPECT_EQ(reversed->similarity, by_index->similarity);
    std::optional<IndexedDecision> by_id = index.Lookup(rec.id1, rec.id2);
    ASSERT_TRUE(by_id.has_value());
    EXPECT_EQ(by_id->similarity, by_index->similarity);
    EXPECT_EQ(by_id->match_class, by_index->match_class);
  }
}

TEST(DecisionIndexTest, ClustersMatchClusterEntities) {
  GeneratedData data = SeededPersons();
  Result<DetectionResult> result = RunShape(data.relation, "serial");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  DecisionIndex index = MustOpenImage(MustBuild(data.relation, *result));

  std::vector<std::vector<size_t>> clusters =
      ClusterEntities(data.relation.size(), *result);
  ASSERT_EQ(index.cluster_count(), clusters.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    RecordSpan members = index.Members(static_cast<uint32_t>(c));
    ASSERT_EQ(members.size, clusters[c].size()) << "cluster " << c;
    for (size_t k = 0; k < members.size; ++k) {
      EXPECT_EQ(members[k], clusters[c][k]) << "cluster " << c;
    }
    for (uint32_t member : members) {
      EXPECT_EQ(index.ClusterOf(member), static_cast<uint32_t>(c));
    }
  }
}

TEST(DecisionIndexTest, MissesAndBadInputsAreAnswersNotErrors) {
  GeneratedData data = SeededPersons();
  Result<DetectionResult> result = RunShape(data.relation, "serial");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  DecisionIndex index = MustOpenImage(MustBuild(data.relation, *result));

  const uint32_t n = static_cast<uint32_t>(index.record_count());
  // A pair the run never examined: reduction prunes most of the n^2
  // space, so some pair below n is undecided unless the run was full.
  if (result->decisions.size() <
      static_cast<size_t>(n) * (n - 1) / 2) {
    bool found_miss = false;
    for (uint32_t a = 0; a < n && !found_miss; ++a) {
      for (uint32_t b = a + 1; b < n && !found_miss; ++b) {
        if (!index.Lookup(a, b).has_value()) found_miss = true;
      }
    }
    EXPECT_TRUE(found_miss);
  }
  EXPECT_FALSE(index.Lookup(0u, 0u).has_value());      // self pair
  EXPECT_FALSE(index.Lookup(0u, n).has_value());       // out of range
  EXPECT_FALSE(index.Lookup(n, n + 1).has_value());
  EXPECT_FALSE(index.FindRecord("no-such-id").has_value());
  EXPECT_FALSE(index.Lookup("no-such-id", "also-missing").has_value());
  EXPECT_FALSE(index.ClusterOf(n).has_value());
  EXPECT_TRUE(index.Members(static_cast<uint32_t>(index.cluster_count()))
                  .empty());
  // Every known id resolves to its tuple index.
  for (uint32_t r = 0; r < n; ++r) {
    EXPECT_EQ(index.FindRecord(index.RecordId(r)), r);
  }
}

// --- determinism across run shapes ----------------------------------

TEST(DecisionIndexTest, RunShapesCompileToByteIdenticalImages) {
  GeneratedData data = SeededPersons();
  Result<DetectionResult> serial = RunShape(data.relation, "serial");
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const std::string reference = MustBuild(data.relation, *serial);
  ASSERT_FALSE(reference.empty());
  for (const char* shape : {"pooled", "sharded", "cached"}) {
    SCOPED_TRACE(shape);
    Result<DetectionResult> result = RunShape(data.relation, shape);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Same report content digest -> same image, byte for byte.
    EXPECT_EQ(result->ContentDigest(), serial->ContentDigest());
    EXPECT_EQ(MustBuild(data.relation, *result), reference);
  }
}

// --- file round trip ------------------------------------------------

TEST(DecisionIndexTest, FileRoundTripServesTheSameAnswers) {
  GeneratedData data = SeededPersons(30, 7);
  Result<DetectionResult> result = RunShape(data.relation, "serial");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  IndexBuildStats stats;
  std::string image = MustBuild(data.relation, *result, &stats);
  EXPECT_EQ(stats.bytes, image.size());
  EXPECT_EQ(stats.record_count, data.relation.size());
  EXPECT_EQ(stats.pair_count, result->decisions.size());
  EXPECT_GT(stats.BytesPerPair(), 0.0);

  IndexFile file("decision_index_test_roundtrip.pddindex");
  ASSERT_TRUE(WriteDecisionIndexFile(file.path(), image).ok());
  Result<DecisionIndex> opened = DecisionIndex::Open(file.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DecisionIndex from_image = MustOpenImage(image);
  EXPECT_FALSE(from_image.is_mmap());
  EXPECT_EQ(opened->record_count(), from_image.record_count());
  EXPECT_EQ(opened->pair_count(), from_image.pair_count());
  EXPECT_EQ(opened->cluster_count(), from_image.cluster_count());
  EXPECT_EQ(opened->plan_fingerprint(), result->plan_fingerprint);
  EXPECT_EQ(opened->source_digest(), result->ContentDigest());
  for (const PairDecisionRecord& rec : result->decisions) {
    std::optional<IndexedDecision> a =
        opened->Lookup(static_cast<uint32_t>(rec.index1),
                       static_cast<uint32_t>(rec.index2));
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->similarity, rec.similarity);
    EXPECT_EQ(a->match_class, rec.match_class);
  }
}

// --- staleness ------------------------------------------------------

TEST(DecisionIndexTest, StalePlanFingerprintIsRejected) {
  GeneratedData data = SeededPersons(30, 7);
  Result<DetectionResult> result = RunShape(data.relation, "serial");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  DecisionIndex index = MustOpenImage(MustBuild(data.relation, *result));

  EXPECT_TRUE(index.VerifyPlanFingerprint(result->plan_fingerprint).ok());
  EXPECT_TRUE(index.VerifySourceDigest(result->ContentDigest()).ok());

  // A plan with different decision parameters has another fingerprint;
  // the index built under the old plan must refuse to serve for it.
  DetectorConfig changed = PersonConfig(data.relation.schema());
  changed.final_thresholds = {0.2, 0.9};
  Result<DuplicateDetector> other =
      DuplicateDetector::Make(changed, data.relation.schema());
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  ASSERT_NE(other->plan().fingerprint(), result->plan_fingerprint);
  Status stale = index.VerifyPlanFingerprint(other->plan().fingerprint());
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(stale.message().find("stale index"), std::string::npos);
  Status stale_source = index.VerifySourceDigest(result->ContentDigest() ^ 1);
  EXPECT_EQ(stale_source.code(), StatusCode::kFailedPrecondition);
}

// --- corruption -----------------------------------------------------

TEST(DecisionIndexTest, CorruptedAndTruncatedImagesAreRejected) {
  GeneratedData data = SeededPersons(30, 7);
  Result<DetectionResult> result = RunShape(data.relation, "serial");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string image = MustBuild(data.relation, *result);

  std::string bad_magic = image;
  bad_magic[0] ^= 0x5a;
  EXPECT_EQ(DecisionIndex::FromImage(bad_magic).status().code(),
            StatusCode::kParseError);

  std::string flipped = image;
  flipped[kIndexHeaderBytes + flipped.size() / 2] ^= 0x01;
  Status corrupt = DecisionIndex::FromImage(flipped).status();
  EXPECT_EQ(corrupt.code(), StatusCode::kParseError);
  EXPECT_NE(corrupt.message().find("digest"), std::string::npos);

  std::string truncated = image.substr(0, image.size() - 16);
  EXPECT_EQ(DecisionIndex::FromImage(truncated).status().code(),
            StatusCode::kParseError);

  EXPECT_EQ(DecisionIndex::FromImage(std::string("tiny")).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(DecisionIndex::Open("decision_index_test_missing.pddindex")
                .status()
                .code(),
            StatusCode::kNotFound);

  // The digest check is what caught the flip: skipping it (the
  // documented fast-reopen path) accepts the same payload bytes.
  DecisionIndex::OpenOptions trusting;
  trusting.verify_digest = false;
  EXPECT_TRUE(DecisionIndex::FromImage(flipped, trusting).ok());
}

// --- degenerate shapes ----------------------------------------------

TEST(DecisionIndexTest, EmptyUniverseAndSingletonClusters) {
  DetectionResult empty;
  IndexBuildStats stats;
  Result<std::string> none =
      BuildDecisionIndexImage(std::vector<std::string>{}, empty, &stats);
  ASSERT_TRUE(none.ok()) << none.status().ToString();
  DecisionIndex index = MustOpenImage(*none);
  EXPECT_EQ(index.record_count(), 0u);
  EXPECT_EQ(index.pair_count(), 0u);
  EXPECT_EQ(index.cluster_count(), 0u);
  EXPECT_EQ(stats.BytesPerPair(), 0.0);
  EXPECT_FALSE(index.Lookup(0u, 1u).has_value());
  EXPECT_FALSE(index.FindRecord("r0").has_value());

  // Records without any decision still serve as singleton clusters.
  DecisionIndex singletons = MustOpenImage(*BuildDecisionIndexImage(
      std::vector<std::string>{"a", "b", "c"}, empty));
  EXPECT_EQ(singletons.record_count(), 3u);
  EXPECT_EQ(singletons.cluster_count(), 3u);
  for (uint32_t r = 0; r < 3; ++r) {
    std::optional<uint32_t> cluster = singletons.ClusterOf(r);
    ASSERT_TRUE(cluster.has_value());
    RecordSpan members = singletons.Members(*cluster);
    ASSERT_EQ(members.size, 1u);
    EXPECT_EQ(members[0], r);
  }
  EXPECT_EQ(singletons.FindRecord("b"), 1u);
  EXPECT_FALSE(singletons.Lookup(0u, 1u).has_value());
}

TEST(DecisionIndexTest, BuilderRejectsInconsistentDecisions) {
  const std::vector<std::string> ids = {"a", "b"};
  DetectionResult result;
  PairDecisionRecord rec;
  rec.id1 = "a";
  rec.id2 = "b";
  rec.index1 = 0;
  rec.index2 = 1;
  rec.similarity = 0.5;
  rec.match_class = MatchClass::kMatch;
  result.decisions = {rec, rec};  // duplicate pair
  EXPECT_FALSE(BuildDecisionIndexImage(ids, result).ok());
  result.decisions = {rec};
  result.decisions[0].index2 = 7;  // out of range
  EXPECT_FALSE(BuildDecisionIndexImage(ids, result).ok());
  result.decisions[0].index2 = 0;  // self pair
  EXPECT_FALSE(BuildDecisionIndexImage(ids, result).ok());
  result.decisions[0].index2 = 1;
  result.decisions[0].id2 = "mismatch";  // id disagrees with universe
  EXPECT_FALSE(BuildDecisionIndexImage(ids, result).ok());
}

// --- metrics --------------------------------------------------------

TEST(DecisionIndexTest, BuildMetricsLandInTheExecNamespace) {
  GeneratedData data = SeededPersons(30, 7);
  Result<DetectionResult> result = RunShape(data.relation, "serial");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  IndexBuildStats stats;
  MustBuild(data.relation, *result, &stats);
  MetricsRegistry metrics;
  AddIndexBuildMetrics(stats, &metrics);
  EXPECT_EQ(metrics.counters().at("exec.index.records"),
            stats.record_count);
  EXPECT_EQ(metrics.counters().at("exec.index.pairs"), stats.pair_count);
  EXPECT_EQ(metrics.counters().at("exec.index.clusters"),
            stats.cluster_count);
  EXPECT_EQ(metrics.counters().at("exec.index.bytes"), stats.bytes);
  EXPECT_EQ(metrics.gauges().at("exec.index.bytes_per_pair"),
            stats.BytesPerPair());
}

// --- zero allocation ------------------------------------------------

TEST(DecisionIndexTest, QueriesAllocateNothing) {
  GeneratedData data = SeededPersons();
  Result<DetectionResult> result = RunShape(data.relation, "serial");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  DecisionIndex index = MustOpenImage(MustBuild(data.relation, *result));
  ASSERT_GT(index.pair_count(), 0u);

  // Everything a query needs is prepared outside the counted region.
  const uint32_t n = static_cast<uint32_t>(index.record_count());
  const std::string known_id(index.RecordId(0));
  const std::string other_id(index.RecordId(n - 1));
  const std::string unknown_id = "decision-index-test-unknown";
  uint64_t checksum = 0;

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (uint32_t a = 0; a < n; ++a) {
    const size_t degree = index.RunLength(a);
    for (size_t k = 0; k < degree; ++k) {
      uint32_t neighbor = 0;
      IndexedDecision entry;
      index.RunEntry(a, k, &neighbor, &entry);
      std::optional<IndexedDecision> hit = index.Lookup(a, neighbor);
      checksum += hit.has_value()
                      ? static_cast<uint64_t>(hit->match_class) + neighbor
                      : 0;
    }
    checksum += *index.ClusterOf(a);
    RecordSpan members = index.Members(*index.ClusterOf(a));
    checksum += members.size + members[0];
    checksum += index.Lookup(a, a + 1).has_value() ? 1 : 0;  // likely miss
  }
  checksum += index.FindRecord(known_id).value_or(0);
  checksum += index.FindRecord(unknown_id).has_value() ? 1 : 0;
  checksum += index.Lookup(known_id, other_id).has_value() ? 1 : 0;
  checksum += index.RecordId(0).size();
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after, before) << "queries allocated " << (after - before)
                           << " times (checksum " << checksum << ")";
}

TEST(DecisionIndexTest, MmapQueriesAllocateNothing) {
  GeneratedData data = SeededPersons(30, 7);
  Result<DetectionResult> result = RunShape(data.relation, "serial");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  IndexFile file("decision_index_test_zeroalloc.pddindex");
  ASSERT_TRUE(
      WriteDecisionIndexFile(file.path(), MustBuild(data.relation, *result))
          .ok());
  Result<DecisionIndex> opened = DecisionIndex::Open(file.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const uint32_t n = static_cast<uint32_t>(opened->record_count());
  ASSERT_GT(n, 0u);

  uint64_t checksum = 0;
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (uint32_t a = 0; a < n; ++a) {
    std::optional<IndexedDecision> hit = opened->Lookup(a, a + 1);
    checksum += hit.has_value() ? 1u : 0u;
    checksum += *opened->ClusterOf(a);
  }
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "checksum " << checksum;
}

}  // namespace
}  // namespace pdd
