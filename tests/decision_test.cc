// Unit tests for decision models: combination functions, threshold
// classification (Fig. 2), the knowledge-based rule engine and parser
// (Fig. 1), the Fellegi-Sunter model and EM estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/paper_examples.h"
#include "decision/classifier.h"
#include "decision/combination.h"
#include "decision/em_estimator.h"
#include "decision/fellegi_sunter.h"
#include "decision/rule_engine.h"
#include "decision/rule_parser.h"
#include "util/random.h"

namespace pdd {
namespace {

// ------------------------------------------------------------ combination

TEST(WeightedSumTest, PaperExample) {
  // φ(c⃗) = 0.8*0.9 + 0.2*0.59 ≈ 0.838.
  WeightedSumCombination phi({0.8, 0.2});
  double job = 0.2 + 0.7 * 5.0 / 9.0;
  EXPECT_NEAR(phi.Combine(ComparisonVector({0.9, job})),
              0.8 * 0.9 + 0.2 * job, 1e-12);
  EXPECT_NEAR(phi.Combine(ComparisonVector({0.9, job})), 0.838, 0.001);
  EXPECT_TRUE(phi.normalized());
}

TEST(WeightedSumTest, UnnormalizedWhenWeightsExceedOne) {
  WeightedSumCombination phi({2.0, 2.0});
  EXPECT_FALSE(phi.normalized());
  EXPECT_NEAR(phi.Combine(ComparisonVector({1.0, 1.0})), 4.0, 1e-12);
}

TEST(WeightedSumTest, MakeValidation) {
  EXPECT_FALSE(WeightedSumCombination::Make({-0.5, 0.5}).ok());
  EXPECT_FALSE(WeightedSumCombination::Make({0.0, 0.0}).ok());
  EXPECT_TRUE(WeightedSumCombination::Make({0.8, 0.2}).ok());
}

TEST(WeightedProductTest, ZeroComponentDominates) {
  WeightedProductCombination phi({1.0, 1.0});
  EXPECT_DOUBLE_EQ(phi.Combine(ComparisonVector({0.0, 1.0})), 0.0);
  EXPECT_NEAR(phi.Combine(ComparisonVector({0.5, 0.5})), 0.25, 1e-12);
}

TEST(MinMaxMeanTest, Basics) {
  ComparisonVector c({0.2, 0.8, 0.5});
  EXPECT_DOUBLE_EQ(MinCombination().Combine(c), 0.2);
  EXPECT_DOUBLE_EQ(MaxCombination().Combine(c), 0.8);
  EXPECT_NEAR(MeanCombination().Combine(c), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(MeanCombination().Combine(ComparisonVector()), 0.0);
}

// -------------------------------------------------------------- classifier

TEST(ClassifierTest, Fig2Bands) {
  Thresholds t{0.4, 0.7};
  EXPECT_EQ(Classify(0.9, t), MatchClass::kMatch);
  EXPECT_EQ(Classify(0.5, t), MatchClass::kPossible);
  EXPECT_EQ(Classify(0.1, t), MatchClass::kUnmatch);
  // Boundaries are inclusive to the possible band (strict > and <).
  EXPECT_EQ(Classify(0.7, t), MatchClass::kPossible);
  EXPECT_EQ(Classify(0.4, t), MatchClass::kPossible);
}

TEST(ClassifierTest, SingleThresholdDisablesPossibleBand) {
  Thresholds t{0.6, 0.6};
  EXPECT_EQ(Classify(0.7, t), MatchClass::kMatch);
  EXPECT_EQ(Classify(0.5, t), MatchClass::kUnmatch);
  EXPECT_EQ(Classify(0.6, t), MatchClass::kPossible);  // exact boundary
}

TEST(ClassifierTest, ValidateOrdersThresholds) {
  EXPECT_TRUE((Thresholds{0.4, 0.7}).Validate().ok());
  EXPECT_FALSE((Thresholds{0.8, 0.7}).Validate().ok());
}

TEST(ClassifierTest, CodesAndNames) {
  EXPECT_EQ(MatchClassCode(MatchClass::kMatch), 'm');
  EXPECT_EQ(MatchClassCode(MatchClass::kPossible), 'p');
  EXPECT_EQ(MatchClassCode(MatchClass::kUnmatch), 'u');
  EXPECT_STREQ(MatchClassName(MatchClass::kMatch), "match");
}

// ------------------------------------------------------------- rule engine

TEST(RuleEngineTest, PaperRuleFires) {
  IdentificationRule rule = PaperRule();
  EXPECT_TRUE(rule.Fires(ComparisonVector({0.9, 0.59})));
  EXPECT_FALSE(rule.Fires(ComparisonVector({0.8, 0.59})));  // strict >
  EXPECT_FALSE(rule.Fires(ComparisonVector({0.9, 0.5})));
}

TEST(RuleEngineTest, EvaluateMaxPolicy) {
  RuleEngine engine({{{{0, 0.5}}, 0.6}, {{{0, 0.8}}, 0.9}},
                    RuleEngine::Policy::kMax);
  EXPECT_DOUBLE_EQ(engine.Evaluate(ComparisonVector({0.9})), 0.9);
  EXPECT_DOUBLE_EQ(engine.Evaluate(ComparisonVector({0.6})), 0.6);
  EXPECT_DOUBLE_EQ(engine.Evaluate(ComparisonVector({0.3})), 0.0);
}

TEST(RuleEngineTest, EvaluateNoisyOrPolicy) {
  RuleEngine engine({{{{0, 0.5}}, 0.6}, {{{1, 0.5}}, 0.5}},
                    RuleEngine::Policy::kNoisyOr);
  // Both fire: 1 - 0.4*0.5 = 0.8.
  EXPECT_NEAR(engine.Evaluate(ComparisonVector({0.9, 0.9})), 0.8, 1e-12);
}

TEST(RuleEngineTest, MakeValidatesIndicesAndRanges) {
  Schema schema = PaperSchema();
  EXPECT_FALSE(RuleEngine::Make({{{{5, 0.5}}, 0.8}}, schema).ok());
  EXPECT_FALSE(RuleEngine::Make({{{{0, 1.5}}, 0.8}}, schema).ok());
  EXPECT_FALSE(RuleEngine::Make({{{{0, 0.5}}, 1.8}}, schema).ok());
  EXPECT_TRUE(RuleEngine::Make({PaperRule()}, schema).ok());
}

TEST(RuleEngineTest, ConditionBeyondVectorNeverFires) {
  IdentificationRule rule{{{3, 0.1}}, 1.0};
  EXPECT_FALSE(rule.Fires(ComparisonVector({0.9, 0.9})));
}

// ------------------------------------------------------------- rule parser

TEST(RuleParserTest, ParsesFig1Syntax) {
  Schema schema = PaperSchema();
  Result<IdentificationRule> rule = ParseRule(
      "IF name > 0.8 AND job > 0.5 THEN DUPLICATES WITH CERTAINTY 0.8",
      schema);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->conditions.size(), 2u);
  EXPECT_EQ(rule->conditions[0].attribute, 0u);
  EXPECT_DOUBLE_EQ(rule->conditions[0].threshold, 0.8);
  EXPECT_EQ(rule->conditions[1].attribute, 1u);
  EXPECT_DOUBLE_EQ(rule->conditions[1].threshold, 0.5);
  EXPECT_DOUBLE_EQ(rule->certainty, 0.8);
}

TEST(RuleParserTest, AcceptsEqualsSyntaxAndCaseInsensitivity) {
  Schema schema = PaperSchema();
  Result<IdentificationRule> rule =
      ParseRule("if name>0.9 then duplicates certainty=0.7", schema);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_DOUBLE_EQ(rule->certainty, 0.7);
}

TEST(RuleParserTest, CertaintyDefaultsToOne) {
  Schema schema = PaperSchema();
  Result<IdentificationRule> rule =
      ParseRule("IF job > 0.5 THEN DUPLICATES", schema);
  ASSERT_TRUE(rule.ok());
  EXPECT_DOUBLE_EQ(rule->certainty, 1.0);
}

TEST(RuleParserTest, RejectsMalformedInput) {
  Schema schema = PaperSchema();
  EXPECT_FALSE(ParseRule("name > 0.8 THEN DUPLICATES", schema).ok());
  EXPECT_FALSE(ParseRule("IF city > 0.8 THEN DUPLICATES", schema).ok());
  EXPECT_FALSE(ParseRule("IF name 0.8 THEN DUPLICATES", schema).ok());
  EXPECT_FALSE(ParseRule("IF name > abc THEN DUPLICATES", schema).ok());
  EXPECT_FALSE(ParseRule("IF name > 1.8 THEN DUPLICATES", schema).ok());
  EXPECT_FALSE(ParseRule("IF name > 0.8 THEN MATCHES", schema).ok());
  EXPECT_FALSE(
      ParseRule("IF name > 0.8 THEN DUPLICATES WITH CERTAINTY 2", schema)
          .ok());
  EXPECT_FALSE(
      ParseRule("IF name > 0.8 THEN DUPLICATES WITH CERTAINTY 0.8 junk",
                schema)
          .ok());
}

TEST(RuleParserTest, ParsesRuleFileWithComments) {
  Schema schema = PaperSchema();
  Result<std::vector<IdentificationRule>> rules = ParseRules(
      "# paper rule\n"
      "IF name > 0.8 AND job > 0.5 THEN DUPLICATES WITH CERTAINTY 0.8\n"
      "\n"
      "IF name > 0.95 THEN DUPLICATES WITH CERTAINTY 0.9\n",
      schema);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 2u);
}

// ---------------------------------------------------------- FellegiSunter

TEST(FellegiSunterTest, MatchingWeightAgreeDisagree) {
  FellegiSunterModel fs({{0.9, 0.1, 0.8}, {0.8, 0.2, 0.8}});
  // Both agree: (0.9/0.1) * (0.8/0.2) = 36.
  EXPECT_NEAR(fs.MatchingWeight(ComparisonVector({0.9, 0.9})), 36.0, 1e-9);
  // First agrees, second disagrees: 9 * (0.2/0.8) = 2.25.
  EXPECT_NEAR(fs.MatchingWeight(ComparisonVector({0.9, 0.5})), 2.25, 1e-9);
  // Both disagree: (0.1/0.9) * 0.25 ≈ 0.02778.
  EXPECT_NEAR(fs.MatchingWeight(ComparisonVector({0.1, 0.1})), 1.0 / 36.0,
              1e-9);
}

TEST(FellegiSunterTest, LogWeightIsLog2) {
  FellegiSunterModel fs({{0.9, 0.1, 0.8}});
  EXPECT_NEAR(fs.LogWeight(ComparisonVector({1.0})), std::log2(9.0), 1e-9);
}

TEST(FellegiSunterTest, AgreementsUseThreshold) {
  FellegiSunterModel fs({{0.9, 0.1, 0.75}});
  EXPECT_TRUE(fs.Agreements(ComparisonVector({0.75}))[0]);
  EXPECT_FALSE(fs.Agreements(ComparisonVector({0.74}))[0]);
}

TEST(FellegiSunterTest, MakeValidatesProbabilities) {
  EXPECT_FALSE(FellegiSunterModel::Make({}).ok());
  EXPECT_FALSE(FellegiSunterModel::Make({{1.0, 0.1, 0.8}}).ok());
  EXPECT_FALSE(FellegiSunterModel::Make({{0.9, 0.0, 0.8}}).ok());
  EXPECT_TRUE(FellegiSunterModel::Make({{0.9, 0.1, 0.8}}).ok());
}

TEST(FellegiSunterTest, IsUnnormalizedCombination) {
  FellegiSunterModel fs({{0.9, 0.1, 0.8}});
  EXPECT_FALSE(fs.normalized());
  EXPECT_EQ(fs.name(), "fellegi_sunter");
}

TEST(FellegiSunterTest, DeriveThresholdsSeparateBands) {
  FellegiSunterModel fs(
      {{0.95, 0.05, 0.8}, {0.9, 0.1, 0.8}, {0.85, 0.15, 0.8}});
  Thresholds t = fs.DeriveThresholds(0.01, 0.01);
  EXPECT_TRUE(t.Validate().ok());
  // All-agree weight must classify as match, all-disagree as unmatch.
  double all_agree = fs.MatchingWeight(ComparisonVector({1, 1, 1}));
  double none_agree = fs.MatchingWeight(ComparisonVector({0, 0, 0}));
  EXPECT_EQ(Classify(all_agree, t), MatchClass::kMatch);
  EXPECT_EQ(Classify(none_agree, t), MatchClass::kUnmatch);
}

TEST(FellegiSunterTest, LooseBoundsCollapseBands) {
  FellegiSunterModel fs({{0.9, 0.1, 0.8}});
  // With generous error budgets the P band shrinks to (almost) nothing:
  // every pattern is decided.
  Thresholds t = fs.DeriveThresholds(1.0, 1.0);
  EXPECT_LE(t.t_lambda, t.t_mu);
  EXPECT_EQ(Classify(fs.MatchingWeight(ComparisonVector({1.0})), t),
            MatchClass::kMatch);
  EXPECT_EQ(Classify(fs.MatchingWeight(ComparisonVector({0.0})), t),
            MatchClass::kUnmatch);
}

// ---------------------------------------------------------------- EM

// Synthesizes comparison vectors from a known two-component model.
std::vector<ComparisonVector> SynthesizeVectors(double p, double m, double u,
                                                size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ComparisonVector> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bool is_match = rng.Bernoulli(p);
    std::vector<double> c(3);
    for (size_t a = 0; a < 3; ++a) {
      double rate = is_match ? m : u;
      c[a] = rng.Bernoulli(rate) ? 1.0 : 0.0;
    }
    out.push_back(ComparisonVector(std::move(c)));
  }
  return out;
}

TEST(EmTest, RecoversPlantedParameters) {
  std::vector<ComparisonVector> vectors =
      SynthesizeVectors(0.2, 0.9, 0.1, 6000, 7);
  EmOptions options;
  options.initial_p = 0.3;
  Result<EmEstimate> est = EstimateWithEm(vectors, options);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_NEAR(est->p, 0.2, 0.05);
  for (const FsAttribute& a : est->attributes) {
    EXPECT_NEAR(a.m, 0.9, 0.07);
    EXPECT_NEAR(a.u, 0.1, 0.07);
  }
}

TEST(EmTest, LogLikelihoodIsMonotonicallyNonDecreasing) {
  std::vector<ComparisonVector> vectors =
      SynthesizeVectors(0.3, 0.85, 0.15, 2000, 11);
  Result<EmEstimate> est = EstimateWithEm(vectors);
  ASSERT_TRUE(est.ok());
  for (size_t i = 1; i < est->trajectory.size(); ++i) {
    EXPECT_GE(est->trajectory[i], est->trajectory[i - 1] - 1e-7) << i;
  }
}

TEST(EmTest, MatchComponentHasHigherAgreement) {
  std::vector<ComparisonVector> vectors =
      SynthesizeVectors(0.25, 0.9, 0.1, 3000, 13);
  // Mirrored initialization must still land on m > u by convention.
  EmOptions options;
  options.initial_m = 0.2;
  options.initial_u = 0.8;
  Result<EmEstimate> est = EstimateWithEm(vectors, options);
  ASSERT_TRUE(est.ok());
  for (const FsAttribute& a : est->attributes) EXPECT_GT(a.m, a.u);
}

TEST(EmTest, ValidatesInput) {
  EXPECT_FALSE(EstimateWithEm({}).ok());
  std::vector<ComparisonVector> mixed = {ComparisonVector({0.5}),
                                         ComparisonVector({0.5, 0.5})};
  EXPECT_FALSE(EstimateWithEm(mixed).ok());
  EmOptions bad;
  bad.initial_p = 0.0;
  EXPECT_FALSE(
      EstimateWithEm({ComparisonVector({0.5})}, bad).ok());
}

TEST(EmTest, EstimatedModelSeparatesClasses) {
  std::vector<ComparisonVector> vectors =
      SynthesizeVectors(0.2, 0.92, 0.08, 4000, 17);
  Result<EmEstimate> est = EstimateWithEm(vectors);
  ASSERT_TRUE(est.ok());
  FellegiSunterModel fs(est->attributes);
  double agree_weight = fs.MatchingWeight(ComparisonVector({1, 1, 1}));
  double disagree_weight = fs.MatchingWeight(ComparisonVector({0, 0, 0}));
  EXPECT_GT(agree_weight, 1.0);
  EXPECT_LT(disagree_weight, 1.0);
}

}  // namespace
}  // namespace pdd
