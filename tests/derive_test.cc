// Unit tests for the x-tuple derivation functions (Section IV-B),
// including the full Fig. 7 worked example for both the similarity-based
// (Eq. 6) and decision-based (Eq. 7-9) approaches.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/paper_examples.h"
#include "decision/combination.h"
#include "derive/decision_based.h"
#include "derive/similarity_based.h"
#include "derive/xtuple_decision_model.h"
#include "match/tuple_matcher.h"
#include "sim/edit_distance.h"

namespace pdd {
namespace {

const Comparator& Hamming() {
  static NormalizedHammingComparator cmp;
  return cmp;
}

TupleMatcher MakePaperMatcher() {
  return *TupleMatcher::Make(PaperSchema(),
                             {&Hamming(), &Hamming()});
}

// Scores of the Fig. 7 pair (t32, t42) under φ = 0.8 c1 + 0.2 c2.
AlternativePairScores PaperScores() {
  TupleMatcher matcher = MakePaperMatcher();
  WeightedSumCombination phi({0.8, 0.2});
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  return BuildAlternativePairScores(t32, t42, matcher, phi);
}

TEST(AlternativePairScoresTest, PaperAlternativeSimilarities) {
  AlternativePairScores scores = PaperScores();
  ASSERT_EQ(scores.rows, 3u);
  ASSERT_EQ(scores.cols, 1u);
  EXPECT_NEAR(scores.sim(0, 0), 11.0 / 15.0, 1e-12);  // (Tim,mechanic)
  EXPECT_NEAR(scores.sim(1, 0), 7.0 / 15.0, 1e-12);   // (Jim,mechanic)
  EXPECT_NEAR(scores.sim(2, 0), 4.0 / 15.0, 1e-12);   // (Jim,baker)
}

TEST(AlternativePairScoresTest, ConditionedProbabilities) {
  AlternativePairScores scores = PaperScores();
  EXPECT_NEAR(scores.p1[0], 0.3 / 0.9, 1e-12);
  EXPECT_NEAR(scores.p1[1], 0.2 / 0.9, 1e-12);
  EXPECT_NEAR(scores.p1[2], 0.4 / 0.9, 1e-12);
  EXPECT_NEAR(scores.p2[0], 1.0, 1e-12);
  EXPECT_NEAR(scores.weight(2, 0), 4.0 / 9.0, 1e-12);
}

// ---------------------------------------------------- similarity-based

TEST(ExpectedSimilarityDerivationTest, PaperEq6Value) {
  // sim(t32, t42) = 7/15.
  ExpectedSimilarityDerivation theta;
  EXPECT_NEAR(theta.Derive(PaperScores()), 7.0 / 15.0, 1e-12);
}

TEST(ExpectedSimilarityDerivationTest, EqualsBruteForceWorldExpectation) {
  // Eq. 6 must equal the expected similarity over the conditioned worlds
  // of Fig. 7: P(I1|B)*sim1 + P(I2|B)*sim2 + P(I3|B)*sim3.
  AlternativePairScores scores = PaperScores();
  double brute = (0.24 / 0.72) * scores.sim(0, 0) +
                 (0.16 / 0.72) * scores.sim(1, 0) +
                 (0.32 / 0.72) * scores.sim(2, 0);
  ExpectedSimilarityDerivation theta;
  EXPECT_NEAR(theta.Derive(scores), brute, 1e-12);
}

TEST(MaxMinDerivationTest, Extremes) {
  AlternativePairScores scores = PaperScores();
  EXPECT_NEAR(MaxSimilarityDerivation().Derive(scores), 11.0 / 15.0, 1e-12);
  EXPECT_NEAR(MinSimilarityDerivation().Derive(scores), 4.0 / 15.0, 1e-12);
}

TEST(ModeDerivationTest, PicksMostProbablePair) {
  // Most probable alternative pair is (Jim, baker) x (Tom, mechanic).
  AlternativePairScores scores = PaperScores();
  EXPECT_NEAR(ModeSimilarityDerivation().Derive(scores), 4.0 / 15.0, 1e-12);
}

TEST(MinDerivationTest, EmptyScoresYieldZero) {
  AlternativePairScores empty;
  EXPECT_DOUBLE_EQ(MinSimilarityDerivation().Derive(empty), 0.0);
  EXPECT_DOUBLE_EQ(MaxSimilarityDerivation().Derive(empty), 0.0);
}

// ------------------------------------------------------ decision-based

TEST(ClassifyAlternativePairsTest, PaperEtaVector) {
  std::vector<MatchClass> eta =
      ClassifyAlternativePairs(PaperScores(), Thresholds{0.4, 0.7});
  ASSERT_EQ(eta.size(), 3u);
  EXPECT_EQ(eta[0], MatchClass::kMatch);     // 11/15 > 0.7
  EXPECT_EQ(eta[1], MatchClass::kPossible);  // 7/15 in [0.4, 0.7]
  EXPECT_EQ(eta[2], MatchClass::kUnmatch);   // 4/15 < 0.4
}

TEST(MatchingMassTest, PaperMasses) {
  MatchingMass mass = ComputeMatchingMass(PaperScores(),
                                          Thresholds{0.4, 0.7});
  EXPECT_NEAR(mass.p_match, 3.0 / 9.0, 1e-12);
  EXPECT_NEAR(mass.p_possible, 2.0 / 9.0, 1e-12);
  EXPECT_NEAR(mass.p_unmatch, 4.0 / 9.0, 1e-12);
  EXPECT_NEAR(mass.p_match + mass.p_possible + mass.p_unmatch, 1.0, 1e-12);
}

TEST(MatchingWeightDerivationTest, PaperEq7Value) {
  // sim(t32, t42) = (3/9)/(4/9) = 0.75.
  MatchingWeightDerivation theta(Thresholds{0.4, 0.7});
  EXPECT_NEAR(theta.Derive(PaperScores()), 0.75, 1e-12);
  EXPECT_FALSE(theta.normalized());
}

TEST(MatchingWeightDerivationTest, InfinityWhenNoUnmatchMass) {
  // Single identical alternative pair: everything is a match.
  AlternativePairScores scores;
  scores.rows = scores.cols = 1;
  scores.sims = {0.95};
  scores.p1 = {1.0};
  scores.p2 = {1.0};
  MatchingWeightDerivation theta(Thresholds{0.4, 0.7});
  EXPECT_TRUE(std::isinf(theta.Derive(scores)));
}

TEST(MatchingWeightDerivationTest, NeutralWhenAllPossible) {
  AlternativePairScores scores;
  scores.rows = scores.cols = 1;
  scores.sims = {0.5};
  scores.p1 = {1.0};
  scores.p2 = {1.0};
  MatchingWeightDerivation theta(Thresholds{0.4, 0.7});
  EXPECT_DOUBLE_EQ(theta.Derive(scores), 1.0);
}

TEST(ExpectedMatchingDerivationTest, PaperValue) {
  // E[η] = 2*(3/9) + 1*(2/9) + 0*(4/9) = 8/9.
  ExpectedMatchingDerivation theta(Thresholds{0.4, 0.7});
  EXPECT_NEAR(theta.Derive(PaperScores()), 8.0 / 9.0, 1e-12);
}

TEST(ExpectedMatchingDerivationTest, NormalizedVariantHalves) {
  ExpectedMatchingDerivation theta(Thresholds{0.4, 0.7}, /*normalize=*/true);
  EXPECT_NEAR(theta.Derive(PaperScores()), 4.0 / 9.0, 1e-12);
  EXPECT_TRUE(theta.normalized());
}

// ----------------------------------------------------------- full model

TEST(XTupleDecisionModelTest, DecidePaperPair) {
  TupleMatcher matcher = MakePaperMatcher();
  WeightedSumCombination phi({0.8, 0.2});
  ExpectedSimilarityDerivation theta;
  XTupleDecisionModel model(&matcher, &phi, &theta, Thresholds{0.4, 0.7});
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  XPairDecision decision = model.Decide(t32, t42);
  EXPECT_NEAR(decision.similarity, 7.0 / 15.0, 1e-12);
  EXPECT_EQ(decision.match_class, MatchClass::kPossible);
}

TEST(XTupleDecisionModelTest, DecisionBasedClassification) {
  TupleMatcher matcher = MakePaperMatcher();
  WeightedSumCombination phi({0.8, 0.2});
  MatchingWeightDerivation theta(Thresholds{0.4, 0.7});
  // Matching-weight scale: treat R > 1 as match, R < 0.5 as unmatch.
  XTupleDecisionModel model(&matcher, &phi, &theta, Thresholds{0.5, 1.0});
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  XPairDecision decision = model.Decide(t32, t42);
  EXPECT_NEAR(decision.similarity, 0.75, 1e-12);
  EXPECT_EQ(decision.match_class, MatchClass::kPossible);
}

TEST(XTupleDecisionModelTest, IdenticalXTuplesScoreOne) {
  TupleMatcher matcher = MakePaperMatcher();
  WeightedSumCombination phi({0.8, 0.2});
  ExpectedSimilarityDerivation theta;
  XTupleDecisionModel model(&matcher, &phi, &theta, Thresholds{0.4, 0.7});
  XTuple t41 = BuildR4().xtuple(0);
  XPairDecision decision = model.Decide(t41, t41);
  // Not exactly 1: different alternatives of t41 disagree. But the
  // diagonal worlds dominate; value must be high and classified m or p.
  EXPECT_GT(decision.similarity, 0.6);
}

TEST(XTupleDecisionModelTest, TupleMembershipDoesNotInfluenceSimilarity) {
  // Scaling all alternative probabilities by a constant (changing p(t))
  // must not change the derived similarity (Section IV's key principle).
  TupleMatcher matcher = MakePaperMatcher();
  WeightedSumCombination phi({0.8, 0.2});
  ExpectedSimilarityDerivation theta;
  XTupleDecisionModel model(&matcher, &phi, &theta, Thresholds{0.4, 0.7});
  XTuple t32 = BuildR3().xtuple(1);
  std::vector<AltTuple> scaled_alts = t32.alternatives();
  for (AltTuple& alt : scaled_alts) alt.prob *= 0.5;
  XTuple t32_scaled("t32s", std::move(scaled_alts));
  XTuple t42 = BuildR4().xtuple(1);
  EXPECT_NEAR(model.Similarity(t32, t42), model.Similarity(t32_scaled, t42),
              1e-12);
}

}  // namespace
}  // namespace pdd
