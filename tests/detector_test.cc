// Integration tests for the end-to-end DuplicateDetector public API.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "datagen/astronomy_generator.h"
#include "datagen/person_generator.h"

namespace pdd {
namespace {

DetectorConfig PaperConfig() {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  config.final_thresholds = {0.4, 0.7};
  return config;
}

TEST(DetectorConfigTest, DefaultsValidate) {
  EXPECT_TRUE(DetectorConfig{}.Validate().ok());
}

TEST(DetectorConfigTest, RejectsBadInputs) {
  DetectorConfig config;
  config.key = {};
  EXPECT_FALSE(config.Validate().ok());
  config = DetectorConfig{};
  config.reduction = ReductionMethod::kSnmCertainKeys;
  config.window = 1;
  EXPECT_FALSE(config.Validate().ok());
  config = DetectorConfig{};
  config.final_thresholds = {0.9, 0.2};
  EXPECT_FALSE(config.Validate().ok());
  config = DetectorConfig{};
  config.weights = {-1.0, 0.5};
  EXPECT_FALSE(config.Validate().ok());
  config = DetectorConfig{};
  config.combination = CombinationKind::kFellegiSunter;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(DetectorTest, MakeRejectsUnknownKeyAttribute) {
  DetectorConfig config = PaperConfig();
  config.key = {{"city", 2}};
  EXPECT_FALSE(DuplicateDetector::Make(config, PaperSchema()).ok());
}

TEST(DetectorTest, MakeRejectsUnknownComparator) {
  DetectorConfig config = PaperConfig();
  config.comparators = {"hamming", "bogus"};
  EXPECT_FALSE(DuplicateDetector::Make(config, PaperSchema()).ok());
}

TEST(DetectorTest, MakeRejectsComparatorArityMismatch) {
  DetectorConfig config = PaperConfig();
  config.comparators = {"hamming"};
  EXPECT_FALSE(DuplicateDetector::Make(config, PaperSchema()).ok());
}

TEST(DetectorTest, MakeRejectsWeightArityMismatch) {
  DetectorConfig config = PaperConfig();
  config.weights = {1.0};
  EXPECT_FALSE(DuplicateDetector::Make(config, PaperSchema()).ok());
}

TEST(DetectorTest, RunRejectsIncompatibleSchema) {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PaperConfig(), PaperSchema());
  ASSERT_TRUE(detector.ok());
  XRelation other("X", Schema::Strings({"a", "b", "c"}));
  EXPECT_FALSE(detector->Run(other).ok());
}

TEST(DetectorTest, PairSimilarityMatchesPaper) {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PaperConfig(), PaperSchema());
  ASSERT_TRUE(detector.ok());
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  EXPECT_NEAR(detector->PairSimilarity(t32, t42), 7.0 / 15.0, 1e-12);
}

TEST(DetectorTest, RunOnR34FullExaminesAllPairs) {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PaperConfig(), PaperSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result = detector->Run(BuildR34());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidate_count, 10u);
  EXPECT_EQ(result->total_pairs, 10u);
  EXPECT_EQ(result->decisions.size(), 10u);
  // (t31, t41) is the obvious duplicate: both mostly (John, pilot).
  bool found = false;
  for (const PairDecisionRecord& rec : result->decisions) {
    if (rec.id1 == "t31" && rec.id2 == "t41") {
      found = true;
      EXPECT_GT(rec.similarity, 0.7);
      EXPECT_EQ(rec.match_class, MatchClass::kMatch);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DetectorTest, RunOnSourcesUnions) {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PaperConfig(), PaperSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result =
      detector->RunOnSources(BuildR3(), BuildR4());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_pairs, 10u);
}

TEST(DetectorTest, MatchClassPartition) {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PaperConfig(), PaperSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result = detector->Run(BuildR34());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Matches().size() + result->PossibleMatches().size() +
                result->Unmatches().size(),
            result->decisions.size());
}

TEST(DetectorTest, EveryReductionMethodRuns) {
  for (ReductionMethod method :
       {ReductionMethod::kFull, ReductionMethod::kSnmMultipassWorlds,
        ReductionMethod::kSnmCertainKeys,
        ReductionMethod::kSnmSortingAlternatives,
        ReductionMethod::kSnmUncertainRanking,
        ReductionMethod::kBlockingCertainKeys,
        ReductionMethod::kBlockingAlternatives,
        ReductionMethod::kBlockingMultipassWorlds,
        ReductionMethod::kBlockingClustered}) {
    DetectorConfig config = PaperConfig();
    config.reduction = method;
    Result<DuplicateDetector> detector =
        DuplicateDetector::Make(config, PaperSchema());
    ASSERT_TRUE(detector.ok()) << ReductionMethodName(method);
    Result<DetectionResult> result = detector->Run(BuildR34());
    ASSERT_TRUE(result.ok()) << ReductionMethodName(method);
    EXPECT_LE(result->candidate_count, 10u) << ReductionMethodName(method);
  }
}

TEST(DetectorTest, EveryDerivationKindRuns) {
  for (DerivationKind kind :
       {DerivationKind::kExpectedSimilarity, DerivationKind::kMatchingWeight,
        DerivationKind::kExpectedMatching, DerivationKind::kMaxSimilarity,
        DerivationKind::kMinSimilarity, DerivationKind::kModeSimilarity}) {
    DetectorConfig config = PaperConfig();
    config.derivation = kind;
    if (kind == DerivationKind::kMatchingWeight) {
      config.final_thresholds = {0.5, 1.0};
    }
    Result<DuplicateDetector> detector =
        DuplicateDetector::Make(config, PaperSchema());
    ASSERT_TRUE(detector.ok()) << DerivationKindName(kind);
    Result<DetectionResult> result = detector->Run(BuildR34());
    ASSERT_TRUE(result.ok()) << DerivationKindName(kind);
  }
}

TEST(DetectorTest, CustomComparatorsOverrideNames) {
  // A constant-zero comparator on the name attribute must kill every
  // similarity contribution from it.
  class ZeroComparator : public Comparator {
   public:
    double Compare(std::string_view, std::string_view) const override {
      return 0.0;
    }
    std::string name() const override { return "zero"; }
  };
  static ZeroComparator zero;
  DetectorConfig config = PaperConfig();
  config.weights = {1.0, 0.0};  // only the name attribute counts
  config.custom_comparators = {&zero, nullptr};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  ASSERT_TRUE(detector.ok()) << detector.status().ToString();
  Result<DetectionResult> result = detector->Run(BuildR34());
  ASSERT_TRUE(result.ok());
  for (const PairDecisionRecord& rec : result->decisions) {
    EXPECT_DOUBLE_EQ(rec.similarity, 0.0) << rec.id1 << "," << rec.id2;
  }
}

TEST(DetectorTest, CustomComparatorArityMismatchRejected) {
  DetectorConfig config = PaperConfig();
  static ExactComparator exact;
  config.custom_comparators = {&exact};
  EXPECT_FALSE(DuplicateDetector::Make(config, PaperSchema()).ok());
}

TEST(DetectorTest, FellegiSunterCombination) {
  DetectorConfig config = PaperConfig();
  config.combination = CombinationKind::kFellegiSunter;
  config.fs_attributes = {{0.9, 0.1, 0.8}, {0.85, 0.15, 0.6}};
  config.derivation = DerivationKind::kExpectedSimilarity;
  // Matching-weight scale thresholds.
  config.final_thresholds = {0.5, 5.0};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result = detector->Run(BuildR34());
  ASSERT_TRUE(result.ok());
  // (t31, t41) should still surface as the strongest pair.
  double best_sim = 0.0;
  std::string best_pair;
  for (const PairDecisionRecord& rec : result->decisions) {
    if (rec.similarity > best_sim) {
      best_sim = rec.similarity;
      best_pair = rec.id1 + "-" + rec.id2;
    }
  }
  EXPECT_EQ(best_pair, "t31-t41");
}

TEST(DetectorTest, FellegiSunterInterpolatedOption) {
  DetectorConfig config = PaperConfig();
  config.combination = CombinationKind::kFellegiSunter;
  config.fs_attributes = {{0.9, 0.1, 0.8}, {0.85, 0.15, 0.6}};
  config.fs_interpolated = true;
  config.final_thresholds = {0.5, 5.0};
  Result<DuplicateDetector> interpolated =
      DuplicateDetector::Make(config, PaperSchema());
  ASSERT_TRUE(interpolated.ok());
  config.fs_interpolated = false;
  Result<DuplicateDetector> binarized =
      DuplicateDetector::Make(config, PaperSchema());
  ASSERT_TRUE(binarized.ok());
  // The two weight styles must differ on a pair with continuous partial
  // agreement (t32 vs t42: name similarities strictly between the
  // agreement thresholds).
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  EXPECT_NE(interpolated->PairSimilarity(t32, t42),
            binarized->PairSimilarity(t32, t42));
}

TEST(DetectorTest, EvaluateAgainstGold) {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PaperConfig(), PaperSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result = detector->Run(BuildR34());
  ASSERT_TRUE(result.ok());
  GoldStandard gold;
  gold.AddMatch("t31", "t41");
  EffectivenessMetrics m = Evaluate(*result, gold);
  EXPECT_GT(m.recall, 0.99);  // t31-t41 is found
  EXPECT_GT(m.precision, 0.0);
  ReductionMetrics r = EvaluateReduction(*result, gold);
  EXPECT_DOUBLE_EQ(r.reduction_ratio, 0.0);  // full pairs
  EXPECT_DOUBLE_EQ(r.pairs_completeness, 1.0);
}

TEST(DetectorTest, EvaluateCountsPrunedGoldAsFalseNegatives) {
  DetectorConfig config = PaperConfig();
  config.reduction = ReductionMethod::kBlockingCertainKeys;
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result = detector->Run(BuildR34());
  ASSERT_TRUE(result.ok());
  GoldStandard gold;
  gold.AddMatch("t31", "t41");
  gold.AddMatch("t32", "t42");  // pruned by certain-key blocking
  EffectivenessMetrics m = Evaluate(*result, gold);
  EXPECT_NEAR(m.recall, 0.5, 1e-12);
  ReductionMetrics r = EvaluateReduction(*result, gold);
  EXPECT_NEAR(r.pairs_completeness, 0.5, 1e-12);
}

TEST(DetectorTest, PruningPreservesDecisionsAboveThreshold) {
  PersonGenOptions gen;
  gen.num_entities = 50;
  gen.duplicate_rate = 0.6;
  GeneratedData data = GeneratePersons(gen);
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.25, 0.25};
  config.final_thresholds = {0.6, 0.8};
  Result<DuplicateDetector> plain =
      DuplicateDetector::Make(config, PersonSchema());
  config.prune = true;
  config.prune_threshold = 0.6;
  Result<DuplicateDetector> pruned =
      DuplicateDetector::Make(config, PersonSchema());
  Result<DetectionResult> plain_result = plain->Run(data.relation);
  Result<DetectionResult> pruned_result = pruned->Run(data.relation);
  ASSERT_TRUE(plain_result.ok());
  ASSERT_TRUE(pruned_result.ok());
  EXPECT_LE(pruned_result->candidate_count, plain_result->candidate_count);
  // Every match and possible match of the plain run survives pruning
  // (the bound is sound for the default hamming comparators).
  std::vector<IdPair> plain_matches = plain_result->Matches();
  std::vector<IdPair> pruned_matches = pruned_result->Matches();
  EXPECT_EQ(plain_matches, pruned_matches);
  EXPECT_EQ(plain_result->PossibleMatches(),
            pruned_result->PossibleMatches());
}

TEST(DetectorTest, EndToEndOnSyntheticPersons) {
  PersonGenOptions gen;
  gen.num_entities = 40;
  gen.duplicate_rate = 0.8;
  gen.errors.char_error_rate = 0.02;
  GeneratedData data = GeneratePersons(gen);
  DetectorConfig config;
  config.key = {{"name", 3}, {"city", 2}};
  config.weights = {0.5, 0.3, 0.2};
  config.final_thresholds = {0.6, 0.8};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result = detector->Run(data.relation);
  ASSERT_TRUE(result.ok());
  EffectivenessMetrics m = Evaluate(*result, data.gold);
  // Clean-ish data: the pipeline must beat trivial baselines clearly.
  EXPECT_GT(m.recall, 0.5);
  EXPECT_GT(m.precision, 0.5);
}

TEST(DetectorTest, TelescopeCrossMatchEndToEnd) {
  // The paper's motivating scenario: link two telescope catalogs.
  AstroGenOptions gen;
  gen.num_objects = 120;
  gen.detection_prob = 0.9;
  GeneratedSources sources = GenerateTelescopeSources(gen);
  DetectorConfig config;
  config.key = {{"ra", 4}, {"dec", 3}};
  config.reduction = ReductionMethod::kSnmSortingAlternatives;
  config.window = 8;
  config.comparators = {"numeric", "numeric", "numeric_rel"};
  config.weights = {0.4, 0.4, 0.2};
  config.final_thresholds = {0.85, 0.95};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, TelescopeSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result =
      detector->RunOnSources(sources.source1, sources.source2);
  ASSERT_TRUE(result.ok());
  EffectivenessMetrics m = Evaluate(*result, sources.gold);
  EXPECT_GT(m.recall, 0.9);
  EXPECT_GT(m.precision, 0.95);
}

TEST(DetectorTest, ReductionTradesCompletenessForSpeed) {
  PersonGenOptions gen;
  gen.num_entities = 60;
  gen.duplicate_rate = 0.6;
  GeneratedData data = GeneratePersons(gen);
  DetectorConfig full_config;
  full_config.key = {{"name", 3}, {"job", 2}};
  full_config.weights = {0.5, 0.3, 0.2};
  Result<DuplicateDetector> full =
      DuplicateDetector::Make(full_config, PersonSchema());
  ASSERT_TRUE(full.ok());
  DetectorConfig snm_config = full_config;
  snm_config.reduction = ReductionMethod::kSnmUncertainRanking;
  snm_config.window = 5;
  Result<DuplicateDetector> snm =
      DuplicateDetector::Make(snm_config, PersonSchema());
  ASSERT_TRUE(snm.ok());
  Result<DetectionResult> full_result = full->Run(data.relation);
  Result<DetectionResult> snm_result = snm->Run(data.relation);
  ASSERT_TRUE(full_result.ok());
  ASSERT_TRUE(snm_result.ok());
  EXPECT_LT(snm_result->candidate_count, full_result->candidate_count);
  ReductionMetrics r = EvaluateReduction(*snm_result, data.gold);
  EXPECT_GT(r.reduction_ratio, 0.5);
}

}  // namespace
}  // namespace pdd
