// Deep edge-case coverage across modules: probability boundaries,
// degenerate relations, impossible events, saturation behavior and
// option extremes that the per-module suites do not reach.

#include <gtest/gtest.h>

#include <cmath>

#include "core/paper_examples.h"
#include "decision/combination.h"
#include "decision/em_estimator.h"
#include "derive/decision_based.h"
#include "derive/similarity_based.h"
#include "keys/key_builder.h"
#include "match/attribute_matcher.h"
#include "pdb/possible_worlds.h"
#include "pdb/world_selection.h"
#include "ranking/expected_rank.h"
#include "ranking/positional_rank.h"
#include "reduction/snm_core.h"
#include "sim/edit_distance.h"

namespace pdd {
namespace {

const Comparator& Hamming() {
  static NormalizedHammingComparator cmp;
  return cmp;
}

// -------------------------------------------------------- value boundary

TEST(EdgeValueTest, ProbabilityAtExactlyOneAccepted) {
  EXPECT_TRUE(Value::Make({{"a", 1.0, false}}).ok());
  EXPECT_TRUE(Value::Make({{"a", 0.5, false}, {"b", 0.5, false}}).ok());
}

TEST(EdgeValueTest, EpsilonOverflowTolerated) {
  // Floating-point dust above 1 must not be rejected.
  EXPECT_TRUE(Value::Make({{"a", 0.3, false},
                           {"b", 0.7 + 1e-12, false}})
                  .ok());
}

TEST(EdgeValueTest, TinyProbabilitiesKeptExactly) {
  Value v = Value::Unchecked({{"a", 1e-9, false}});
  EXPECT_NEAR(v.existence_probability(), 1e-9, 1e-15);
  EXPECT_NEAR(v.null_probability(), 1.0 - 1e-9, 1e-12);
}

TEST(EdgeValueTest, PatternExpansionAgainstEmptyVocabulary) {
  Value v = Value::Pattern("mu", 0.5);
  Value expanded = v.Expanded({});
  ASSERT_EQ(expanded.size(), 1u);
  EXPECT_FALSE(expanded.alternatives()[0].is_pattern);
  EXPECT_EQ(expanded.alternatives()[0].text, "mu");
}

TEST(EdgeValueTest, EmptyPrefixPatternMatchesWholeVocabulary) {
  Value v = Value::Pattern("", 1.0);
  Value expanded = v.Expanded({"a", "b", "c", "d"});
  EXPECT_EQ(expanded.size(), 4u);
  EXPECT_NEAR(expanded.alternatives()[0].prob, 0.25, 1e-12);
}

// --------------------------------------------------- matching boundaries

TEST(EdgeMatchTest, ZeroMassValuesScoreOnNullChannelOnly) {
  // Values that are almost surely ⊥ still interact through sim(⊥,⊥)=1.
  Value nearly_null = Value::Unchecked({{"x", 1e-9, false}});
  double sim = ExpectedSimilarity(nearly_null, Value::Null(), Hamming());
  EXPECT_NEAR(sim, 1.0 - 1e-9, 1e-12);
}

TEST(EdgeMatchTest, IdenticalDistributionsDoNotScoreOne) {
  // A common misconception: sim(a, a) < 1 for genuinely uncertain a
  // (two independent draws can differ). Eq. 5 must reflect that.
  Value a = Value::Dist({{"x", 0.5}, {"yy", 0.5}});
  double sim = ExpectedSimilarity(a, a, Hamming());
  EXPECT_LT(sim, 1.0);
  EXPECT_GT(sim, 0.4);
}

// ------------------------------------------------------ world boundaries

TEST(EdgeWorldsTest, AllMaybeRelationHasEmptyWorld) {
  XRelation rel("M", Schema::Strings({"a"}));
  rel.AppendUnchecked(XTuple("t1", {{{Value::Certain("x")}, 0.5}}));
  rel.AppendUnchecked(XTuple("t2", {{{Value::Certain("y")}, 0.5}}));
  Result<std::vector<World>> worlds = EnumerateWorlds(rel);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 4u);
  bool has_empty = false;
  for (const World& w : *worlds) {
    if (!w.AllPresent() && w.choice[0] == kAbsent &&
        w.choice[1] == kAbsent) {
      has_empty = true;
      EXPECT_NEAR(w.probability, 0.25, 1e-12);
    }
  }
  EXPECT_TRUE(has_empty);
}

TEST(EdgeWorldsTest, TopKZeroAndOverCount) {
  XRelation r34 = BuildR34();
  EXPECT_TRUE(TopKWorlds(r34, 0).empty());
  EXPECT_EQ(TopKWorlds(r34, 1000).size(), 96u);
}

TEST(EdgeWorldsTest, SelectWorldsPoolSmallerThanCount) {
  WorldSelectionOptions options;
  options.strategy = WorldSelectionStrategy::kDiverse;
  options.count = 50;
  options.candidate_pool = 4;
  XRelation r34 = BuildR34();
  std::vector<World> selected = SelectWorlds(r34, options);
  // Pool is max(candidate_pool, count) = 50, capped by 24 all-present
  // worlds.
  EXPECT_LE(selected.size(), 24u);
  EXPECT_GE(selected.size(), 4u);
}

TEST(EdgeWorldsTest, ConditionedEnumerationOfImpossibleEvent) {
  // An x-tuple with existence ~0 cannot appear in an all-present world
  // setup... but existence is always > 0 by construction; instead test a
  // pair where event B has tiny mass.
  XRelation rel("T", Schema::Strings({"a"}));
  rel.AppendUnchecked(XTuple("t1", {{{Value::Certain("x")}, 1e-6}}));
  rel.AppendUnchecked(XTuple("t2", {{{Value::Certain("y")}, 1e-6}}));
  EnumerateOptions options;
  options.all_present_only = true;
  Result<std::vector<World>> worlds = EnumerateWorlds(rel, options);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 1u);
  EXPECT_NEAR((*worlds)[0].probability, 1e-12, 1e-15);
}

// ------------------------------------------------------- key boundaries

TEST(EdgeKeysTest, PrefixLongerThanValues) {
  Schema schema = PaperSchema();
  KeySpec spec({{0, 100}, {1, 100}});
  KeyBuilder builder(spec, &schema);
  XRelation r34 = BuildR34();
  EXPECT_EQ(builder.CertainKey(r34.xtuple(0)), "Johnpilot");
}

TEST(EdgeKeysTest, DistributionOfAllNullTuple) {
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  XTuple t("t", {{{Value::Null(), Value::Null()}, 1.0}});
  KeyDistribution dist = builder.DistributionFor(t);
  ASSERT_EQ(dist.entries.size(), 1u);
  EXPECT_EQ(dist.entries[0].first, "");
  EXPECT_NEAR(dist.entries[0].second, 1.0, 1e-12);
}

// --------------------------------------------------- ranking boundaries

TEST(EdgeRankingTest, SingleAndEmptyInputs) {
  EXPECT_TRUE(RankByExpectedRank({}).empty());
  EXPECT_TRUE(RankByPositionalScore({}).empty());
  KeyDistribution d;
  d.entries = {{"k", 1.0}};
  EXPECT_EQ(RankByExpectedRank({d}), (std::vector<size_t>{0}));
  EXPECT_EQ(RankByPositionalScore({d}), (std::vector<size_t>{0}));
}

TEST(EdgeRankingTest, IdenticalDistributionsAreStablyOrdered) {
  KeyDistribution d;
  d.entries = {{"k", 0.6}, {"m", 0.4}};
  std::vector<KeyDistribution> keys = {d, d, d};
  EXPECT_EQ(RankByExpectedRank(keys), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(RankByPositionalScore(keys), (std::vector<size_t>{0, 1, 2}));
}

// -------------------------------------------------------- SNM boundaries

TEST(EdgeSnmTest, WindowLargerThanEntryCount) {
  std::vector<KeyedEntry> entries = {{"a", 0}, {"b", 1}, {"c", 2}};
  std::vector<CandidatePair> pairs = WindowPairs(entries, 100, nullptr);
  SortAndDedupPairs(&pairs);
  EXPECT_EQ(pairs.size(), 3u);  // all pairs
}

TEST(EdgeSnmTest, EmptyEntryList) {
  std::vector<KeyedEntry> entries;
  EXPECT_TRUE(WindowPairs(entries, 3, nullptr).empty());
  SortEntries(&entries);
  DropAdjacentSameTuple(&entries);
  EXPECT_TRUE(entries.empty());
}

// -------------------------------------------------- derivation boundary

TEST(EdgeDeriveTest, SingleAlternativePairEqualsPhi) {
  // For 1x1 x-tuples every derivation must equal φ(c⃗) directly.
  NormalizedHammingComparator hamming;
  TupleMatcher matcher = *TupleMatcher::Make(PaperSchema(),
                                             {&hamming, &hamming});
  WeightedSumCombination phi({0.8, 0.2});
  XTuple a("a", {{{Value::Certain("Tim"), Value::Certain("mechanic")}, 1.0}});
  XTuple b("b", {{{Value::Certain("Tom"), Value::Certain("mechanic")}, 1.0}});
  AlternativePairScores scores = BuildAlternativePairScores(a, b, matcher,
                                                            phi);
  double direct = phi.Combine(matcher.CompareAlternatives(
      a.alternative(0), b.alternative(0)));
  EXPECT_NEAR(ExpectedSimilarityDerivation().Derive(scores), direct, 1e-12);
  EXPECT_NEAR(MaxSimilarityDerivation().Derive(scores), direct, 1e-12);
  EXPECT_NEAR(MinSimilarityDerivation().Derive(scores), direct, 1e-12);
  EXPECT_NEAR(ModeSimilarityDerivation().Derive(scores), direct, 1e-12);
}

TEST(EdgeDeriveTest, ThresholdBandCollapseMakesEtaBinary) {
  NormalizedHammingComparator hamming;
  TupleMatcher matcher = *TupleMatcher::Make(PaperSchema(),
                                             {&hamming, &hamming});
  WeightedSumCombination phi({0.8, 0.2});
  AlternativePairScores scores = BuildAlternativePairScores(
      BuildR3().xtuple(1), BuildR4().xtuple(1), matcher, phi);
  // With Tλ == Tμ = 0.5 no pair lands in P (no score is exactly 0.5).
  MatchingMass mass = ComputeMatchingMass(scores, Thresholds{0.5, 0.5});
  EXPECT_NEAR(mass.p_possible, 0.0, 1e-12);
  EXPECT_NEAR(mass.p_match + mass.p_unmatch, 1.0, 1e-12);
}

// --------------------------------------------------------- EM boundaries

TEST(EdgeEmTest, AllIdenticalVectorsDegradeGracefully) {
  std::vector<ComparisonVector> vectors(50, ComparisonVector({1.0, 1.0}));
  Result<EmEstimate> est = EstimateWithEm(vectors);
  ASSERT_TRUE(est.ok());
  // Probabilities stay clamped inside (0, 1).
  for (const FsAttribute& a : est->attributes) {
    EXPECT_GT(a.m, 0.0);
    EXPECT_LT(a.m, 1.0);
    EXPECT_GT(a.u, 0.0);
    EXPECT_LT(a.u, 1.0);
  }
}

TEST(EdgeEmTest, SingleVectorRuns) {
  Result<EmEstimate> est = EstimateWithEm({ComparisonVector({0.9})});
  ASSERT_TRUE(est.ok());
  EXPECT_GE(est->iterations, 1u);
}

// -------------------------------------------------- combination boundary

TEST(EdgeCombinationTest, WeightsLongerThanVectorIgnoredTail) {
  WeightedSumCombination phi({0.5, 0.3, 0.2});
  EXPECT_NEAR(phi.Combine(ComparisonVector({1.0})), 0.5, 1e-12);
}

TEST(EdgeCombinationTest, VectorLongerThanWeightsIgnoredTail) {
  WeightedSumCombination phi({1.0});
  EXPECT_NEAR(phi.Combine(ComparisonVector({0.5, 0.9, 0.9})), 0.5, 1e-12);
}

}  // namespace
}  // namespace pdd
