// Unit tests for the rule-based end-to-end configuration, the pair
// explanation API and the report writer.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/explain.h"
#include "core/paper_examples.h"
#include "core/report_writer.h"

namespace pdd {
namespace {

DetectorConfig PaperConfig() {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  config.final_thresholds = {0.4, 0.7};
  return config;
}

// ------------------------------------------------------- rule combination

TEST(RuleCombinationTest, EndToEndWithPaperRule) {
  DetectorConfig config = PaperConfig();
  config.combination = CombinationKind::kRules;
  config.rules_text =
      "IF name > 0.8 AND job > 0.5 THEN DUPLICATES WITH CERTAINTY 0.8\n";
  // Certainty factors are normalized; a single threshold suits the
  // knowledge-based technique (P unused, per Section III-D).
  config.final_thresholds = {0.5, 0.5};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  ASSERT_TRUE(detector.ok()) << detector.status().ToString();
  // (t11, t22) fires the rule: comparison vector (0.9, 0.589) -> 0.8.
  XRelation r12("R12", PaperSchema());
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  XRelation x1 = XRelation::FromRelation(r1);
  XRelation x2 = XRelation::FromRelation(r2);
  Result<DetectionResult> result = detector->RunOnSources(x1, x2);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const PairDecisionRecord& rec : result->decisions) {
    if ((rec.id1 == "t11" && rec.id2 == "t22") ||
        (rec.id1 == "t22" && rec.id2 == "t11")) {
      found = true;
      EXPECT_NEAR(rec.similarity, 0.8, 1e-12);
      EXPECT_EQ(rec.match_class, MatchClass::kMatch);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RuleCombinationTest, ConfigValidation) {
  DetectorConfig config = PaperConfig();
  config.combination = CombinationKind::kRules;
  EXPECT_FALSE(config.Validate().ok());  // missing rules_text
  config.rules_text = "IF bogus > 0.5 THEN DUPLICATES";
  EXPECT_TRUE(config.Validate().ok());   // syntax checked at Make
  EXPECT_FALSE(DuplicateDetector::Make(config, PaperSchema()).ok());
}

TEST(RuleCombinationTest, AdapterExposesEngine) {
  RuleEngine engine({PaperRule()});
  RuleCombination phi(std::move(engine));
  EXPECT_EQ(phi.name(), "rules");
  EXPECT_TRUE(phi.normalized());
  EXPECT_DOUBLE_EQ(phi.Combine(ComparisonVector({0.9, 0.6})), 0.8);
  EXPECT_DOUBLE_EQ(phi.Combine(ComparisonVector({0.1, 0.6})), 0.0);
  EXPECT_EQ(phi.engine().rules().size(), 1u);
}

// ------------------------------------------------------------ explanation

TEST(ExplainTest, PaperPairBreakdown) {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PaperConfig(), PaperSchema());
  ASSERT_TRUE(detector.ok());
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  PairExplanation explanation = ExplainPair(*detector, t32, t42);
  ASSERT_EQ(explanation.alternatives.size(), 3u);
  // φ values of the three alternative pairs (Fig. 7 example).
  EXPECT_NEAR(explanation.alternatives[0].phi, 11.0 / 15.0, 1e-12);
  EXPECT_NEAR(explanation.alternatives[1].phi, 7.0 / 15.0, 1e-12);
  EXPECT_NEAR(explanation.alternatives[2].phi, 4.0 / 15.0, 1e-12);
  // η classes m, p, u.
  EXPECT_EQ(explanation.alternatives[0].eta, MatchClass::kMatch);
  EXPECT_EQ(explanation.alternatives[1].eta, MatchClass::kPossible);
  EXPECT_EQ(explanation.alternatives[2].eta, MatchClass::kUnmatch);
  // Masses and derived similarity match the paper.
  EXPECT_NEAR(explanation.mass.p_match, 3.0 / 9.0, 1e-12);
  EXPECT_NEAR(explanation.mass.p_unmatch, 4.0 / 9.0, 1e-12);
  EXPECT_NEAR(explanation.similarity, 7.0 / 15.0, 1e-12);
  EXPECT_EQ(explanation.match_class, MatchClass::kPossible);
}

TEST(ExplainTest, WeightsAreConditioned) {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PaperConfig(), PaperSchema());
  ASSERT_TRUE(detector.ok());
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  PairExplanation explanation = ExplainPair(*detector, t32, t42);
  double total = 0.0;
  for (const AlternativePairExplanation& alt : explanation.alternatives) {
    total += alt.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ExplainTest, ToStringMentionsAttributesAndClasses) {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PaperConfig(), PaperSchema());
  ASSERT_TRUE(detector.ok());
  PairExplanation explanation =
      ExplainPair(*detector, BuildR3().xtuple(1), BuildR4().xtuple(1));
  std::string s = explanation.ToString(PaperSchema());
  EXPECT_NE(s.find("pair (t32, t42)"), std::string::npos);
  EXPECT_NE(s.find("name="), std::string::npos);
  EXPECT_NE(s.find("job="), std::string::npos);
  EXPECT_NE(s.find("P(m)=0.3333"), std::string::npos);
  EXPECT_NE(s.find("possible"), std::string::npos);
}

// ----------------------------------------------------------------- report

DetectionResult RunPaperDetection() {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PaperConfig(), PaperSchema());
  return *detector->Run(BuildR34());
}

TEST(ReportTest, CsvHasHeaderAndRows) {
  DetectionResult result = RunPaperDetection();
  std::string csv = DecisionsToCsv(result);
  EXPECT_EQ(csv.find("id1,id2,similarity,decision\n"), 0u);
  // 10 data rows + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 11);
  EXPECT_NE(csv.find("t31,t41"), std::string::npos);
}

TEST(ReportTest, CsvGoldColumn) {
  DetectionResult result = RunPaperDetection();
  GoldStandard gold;
  gold.AddMatch("t31", "t41");
  std::string csv = DecisionsToCsv(result, &gold);
  EXPECT_NE(csv.find("id1,id2,similarity,decision,gold"), std::string::npos);
  EXPECT_NE(csv.find(",match"), std::string::npos);
  EXPECT_NE(csv.find(",non-match"), std::string::npos);
}

TEST(ReportTest, CsvEscapesStructuralCharacters) {
  DetectionResult result;
  result.total_pairs = 1;
  result.candidate_count = 1;
  result.decisions.push_back(
      {"id,with,commas", "id\"quoted\"", 0, 1, 0.5, MatchClass::kMatch});
  std::string csv = DecisionsToCsv(result);
  EXPECT_NE(csv.find("\"id,with,commas\""), std::string::npos);
  EXPECT_NE(csv.find("\"id\"\"quoted\"\"\""), std::string::npos);
}

TEST(ReportTest, MarkdownReportSections) {
  DetectionResult result = RunPaperDetection();
  GoldStandard gold;
  gold.AddMatch("t31", "t41");
  std::string report = DetectionReport(result, &gold);
  EXPECT_NE(report.find("# Duplicate detection report"), std::string::npos);
  EXPECT_NE(report.find("## Verification"), std::string::npos);
  EXPECT_NE(report.find("## Clerical review queue"), std::string::npos);
  EXPECT_NE(report.find("matches (M): 1"), std::string::npos);
}

TEST(ReportTest, ReviewQueueTruncates) {
  DetectionResult result;
  result.total_pairs = 100;
  result.candidate_count = 20;
  for (int i = 0; i < 20; ++i) {
    result.decisions.push_back({"a" + std::to_string(i),
                                "b" + std::to_string(i),
                                static_cast<size_t>(i), 50, 0.5 + i * 0.001,
                                MatchClass::kPossible});
  }
  std::string report = DetectionReport(result, nullptr, 5);
  EXPECT_NE(report.find("(15 more)"), std::string::npos);
  // Highest similarity first.
  size_t first = report.find("a19 ~ b19");
  size_t later = report.find("a15 ~ b15");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(later, std::string::npos);
  EXPECT_LT(first, later);
}

TEST(ReportTest, ReportWithoutGoldSkipsVerification) {
  DetectionResult result = RunPaperDetection();
  std::string report = DetectionReport(result);
  EXPECT_EQ(report.find("## Verification"), std::string::npos);
}

}  // namespace
}  // namespace pdd
