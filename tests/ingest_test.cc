// Tests for the standing ingest subsystem: the bounded MPSC
// IngestQueue, the push-based IngestStream candidate path, and the
// StandingSession lifecycle (live drain → deterministic finish), plus
// the crash-restart warm-start via decision-cache snapshots.
//
// Like pipeline_test, this binary honors PDD_BATCH_SIZE / PDD_WORKERS /
// PDD_SHARDS so the CMake-registered extra passes (and the TSan CI
// sweep) drive the standing drain through every executor shape.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cache/decision_cache.h"
#include "core/detector.h"
#include "core/report_writer.h"
#include "datagen/person_generator.h"
#include "ingest/ingest_queue.h"
#include "ingest/ingest_stream.h"
#include "ingest/standing_session.h"
#include "pdb/xrelation.h"
#include "pipeline/detection_plan.h"
#include "util/checked_math.h"

namespace pdd {
namespace {

DetectorConfig PersonConfig() {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  config.final_thresholds = {0.4, 0.7};
  if (const char* batch = std::getenv("PDD_BATCH_SIZE")) {
    long parsed = std::strtol(batch, nullptr, 10);
    if (parsed > 0) config.batch_size = static_cast<size_t>(parsed);
  }
  if (const char* shards = std::getenv("PDD_SHARDS")) {
    long parsed = std::strtol(shards, nullptr, 10);
    if (parsed > 0) config.shard_count = static_cast<size_t>(parsed);
  }
  if (const char* workers = std::getenv("PDD_WORKERS")) {
    long parsed = std::strtol(workers, nullptr, 10);
    if (parsed > 0) config.workers = static_cast<size_t>(parsed);
  }
  return config;
}

std::shared_ptr<const DetectionPlan> PersonPlan() {
  Result<std::shared_ptr<const DetectionPlan>> plan =
      DetectionPlan::Compile(PersonConfig(), PersonSchema());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

GeneratedData SeededPersons(size_t entities = 40) {
  PersonGenOptions options;
  options.num_entities = entities;
  options.duplicate_rate = 0.8;
  options.seed = 20100301;  // fixed: results must be reproducible
  return GeneratePersons(options);
}

XTuple MakePerson(const std::string& id, const std::string& name) {
  return XTuple(id, {AltTuple{{Value::Certain(name), Value::Certain("engineer"),
                               Value::Certain("berlin")},
                              1.0}});
}

StandingSession::Options SessionOptions(
    std::shared_ptr<DecisionCache> cache = nullptr) {
  DetectorConfig config = PersonConfig();
  StandingSession::Options options;
  options.batch_size = config.batch_size;
  options.workers = config.workers;
  options.cache = std::move(cache);
  return options;
}

ShardOptions FinishShards() {
  return ShardOptions{PersonConfig().shard_count, ShardStrategy::kAuto};
}

void ExpectIdenticalResults(const DetectionResult& a,
                            const DetectionResult& b) {
  EXPECT_EQ(a.candidate_count, b.candidate_count);
  EXPECT_EQ(a.total_pairs, b.total_pairs);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    const PairDecisionRecord& ra = a.decisions[i];
    const PairDecisionRecord& rb = b.decisions[i];
    EXPECT_EQ(ra.id1, rb.id1) << "record " << i;
    EXPECT_EQ(ra.id2, rb.id2) << "record " << i;
    EXPECT_EQ(ra.similarity, rb.similarity) << "record " << i;
    EXPECT_EQ(ra.match_class, rb.match_class) << "record " << i;
  }
  // The stdout surface, not just the in-memory structs.
  EXPECT_EQ(DetectionReport(a, nullptr), DetectionReport(b, nullptr));
}

// --- IngestQueue ----------------------------------------------------

TEST(IngestQueueTest, TryPushShedsLoadAtCapacity) {
  IngestQueue queue(2);
  EXPECT_TRUE(queue.TryPush(MakePerson("a", "alice"), 1));
  EXPECT_TRUE(queue.TryPush(MakePerson("b", "bob"), 2));
  EXPECT_FALSE(queue.TryPush(MakePerson("c", "carol"), 3));
  IngestQueueStats stats = queue.Stats();
  EXPECT_EQ(stats.arrivals, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_EQ(stats.high_water, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.arrivals, stats.admitted + stats.dropped);
}

TEST(IngestQueueTest, PopBatchIsFifoAndKeepsStamps) {
  IngestQueue queue(8);
  EXPECT_TRUE(queue.Push(MakePerson("a", "alice"), 11));
  EXPECT_TRUE(queue.Push(MakePerson("b", "bob"), 22));
  EXPECT_TRUE(queue.Push(MakePerson("c", "carol"), 33));
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.PopBatch(2, &out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].tuple.id(), "a");
  EXPECT_EQ(out[0].stamp, 11u);
  EXPECT_EQ(out[1].tuple.id(), "b");
  EXPECT_EQ(out[1].stamp, 22u);
  EXPECT_EQ(queue.PopBatch(2, &out), 1u);
  EXPECT_EQ(out[0].tuple.id(), "c");
  EXPECT_EQ(queue.PopBatch(2, &out), 0u);
}

TEST(IngestQueueTest, PushBlocksUntilConsumerFrees) {
  IngestQueue queue(1);
  EXPECT_TRUE(queue.Push(MakePerson("a", "alice")));
  std::atomic<bool> second_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(MakePerson("b", "bob")));  // blocks until pop
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_done.load());
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.PopBatch(1, &out), 1u);
  producer.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_EQ(queue.Stats().dropped, 0u);
}

TEST(IngestQueueTest, CloseWakesEverybodyAndDrainsBacklog) {
  IngestQueue queue(4);
  EXPECT_TRUE(queue.Push(MakePerson("a", "alice")));
  queue.Close();
  // Admission after close is a counted drop, blocking or not.
  EXPECT_FALSE(queue.Push(MakePerson("b", "bob")));
  EXPECT_FALSE(queue.TryPush(MakePerson("c", "carol")));
  // The backlog survives Close: closed means "no more", not "gone".
  EXPECT_TRUE(queue.AwaitNonEmpty());
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.PopBatch(8, &out), 1u);
  EXPECT_FALSE(queue.AwaitNonEmpty());
  EXPECT_EQ(queue.Stats().dropped, 2u);
}

TEST(IngestQueueTest, AwaitNonEmptyBlocksUntilProducerDelivers) {
  IngestQueue queue(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(queue.Push(MakePerson("a", "alice")));
  });
  EXPECT_TRUE(queue.AwaitNonEmpty());  // idle-but-open: must block, not fail
  producer.join();
}

// --- IngestStream ---------------------------------------------------

TEST(IngestStreamTest, EmitsFullCrossingSetInCursorOrder) {
  Result<std::unique_ptr<IngestStream>> stream =
      IngestStream::Make(PersonPlan(), nullptr, {});
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  for (int i = 0; i < 4; ++i) {
    std::string id(1, static_cast<char>('a' + i));
    ASSERT_TRUE((*stream)->queue().Push(MakePerson(id, "p" + id)));
  }
  std::vector<CandidatePair> pairs;
  std::vector<CandidatePair> all;
  while ((*stream)->NextBatch(2, &pairs) > 0) {
    all.insert(all.end(), pairs.begin(), pairs.end());
  }
  // 4 tuples -> the full crossing set, second-major in admission order.
  std::vector<CandidatePair> expected = {{0, 1}, {0, 2}, {1, 2},
                                         {0, 3}, {1, 3}, {2, 3}};
  ASSERT_EQ(all.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(all[i].first, expected[i].first) << "pair " << i;
    EXPECT_EQ(all[i].second, expected[i].second) << "pair " << i;
  }
  EXPECT_EQ((*stream)->total_pairs(), TriangularPairCount(4));
  EXPECT_EQ((*stream)->relation().size(), 4u);
}

TEST(IngestStreamTest, SeededStreamEmitsOnlyCrossingPairs) {
  GeneratedData data = SeededPersons(8);
  const size_t base = data.relation.size();
  Result<std::unique_ptr<IngestStream>> stream =
      IngestStream::Make(PersonPlan(), &data.relation, {});
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ((*stream)->base(), base);
  ASSERT_TRUE((*stream)->queue().Push(MakePerson("new-1", "nina")));
  ASSERT_TRUE((*stream)->queue().Push(MakePerson("new-2", "nick")));
  std::vector<CandidatePair> pairs;
  std::vector<CandidatePair> all;
  while ((*stream)->NextBatch(64, &pairs) > 0) {
    all.insert(all.end(), pairs.begin(), pairs.end());
  }
  // Each arrival crosses the whole standing prefix; intra-seed pairs
  // are never re-examined (the incremental scenario, push-based).
  EXPECT_EQ(all.size(), base + (base + 1));
  for (const CandidatePair& pair : all) {
    EXPECT_GE(pair.second, base);
    EXPECT_LT(pair.first, pair.second);
  }
  EXPECT_EQ((*stream)->total_pairs(),
            SaturatingAdd(SaturatingMul(base, 2), TriangularPairCount(2)));
}

TEST(IngestStreamTest, AdmissionDedupsValidatesAndBounds) {
  IngestStream::Options options;
  options.max_admitted = 2;
  Result<std::unique_ptr<IngestStream>> stream =
      IngestStream::Make(PersonPlan(), nullptr, options);
  ASSERT_TRUE(stream.ok());
  IngestQueue& queue = (*stream)->queue();
  ASSERT_TRUE(queue.Push(MakePerson("a", "alice")));
  ASSERT_TRUE(queue.Push(MakePerson("a", "alice-again")));  // duplicate id
  // No alternatives: fails relation validation at admission.
  ASSERT_TRUE(queue.Push(XTuple("bad", {})));
  ASSERT_TRUE(queue.Push(MakePerson("b", "bob")));
  ASSERT_TRUE(queue.Push(MakePerson("c", "carol")));  // beyond max_admitted
  (*stream)->Pump();
  IngestStream::AdmissionStats stats = (*stream)->admission_stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.duplicate_ids, 1u);
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.rejected_capacity, 1u);
  EXPECT_EQ((*stream)->relation().size(), 2u);
  // The raw snapshot carries exactly the admitted tuples.
  XRelation raw = (*stream)->SnapshotRaw();
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(raw.xtuple(0).id(), "a");
  EXPECT_EQ(raw.xtuple(1).id(), "b");
}

// --- StandingSession ------------------------------------------------

/// Pushes `relation`'s tuples in `order` from a producer thread while
/// the session drains on the calling thread, then closes and returns
/// the live result.
Result<DetectionResult> DrainWithProducer(StandingSession* session,
                                          const XRelation& relation,
                                          const std::vector<size_t>& order) {
  std::thread producer([&] {
    for (size_t idx : order) {
      session->queue().Push(relation.xtuple(idx));
    }
    session->queue().Close();
  });
  Result<DetectionResult> live = session->Drain();
  producer.join();
  return live;
}

std::vector<size_t> Iota(size_t n) {
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

TEST(StandingSessionTest, FinishIsByteIdenticalForAnyArrivalOrder) {
  GeneratedData data = SeededPersons();
  const size_t n = data.relation.size();
  // The reference: a one-shot batch run over the same tuples.
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  std::shared_ptr<const DetectionPlan> plan = detector->shared_plan();
  Result<std::unique_ptr<StandingSession>> reference_session =
      StandingSession::Make(plan, nullptr, SessionOptions());
  ASSERT_TRUE(reference_session.ok());
  // Canonical order reference via the session itself, cross-checked
  // against the detector below.
  std::vector<size_t> forward = Iota(n);
  ASSERT_TRUE(
      DrainWithProducer(reference_session->get(), data.relation, forward)
          .ok());
  Result<DetectionResult> reference =
      (*reference_session)->Finish(FinishShards());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  Result<DetectionResult> batch =
      detector->Run((*reference_session)->CanonicalRelation());
  ASSERT_TRUE(batch.ok());
  ExpectIdenticalResults(*reference, *batch);

  std::vector<size_t> reversed(forward.rbegin(), forward.rend());
  std::vector<size_t> interleaved;
  for (size_t i = 0; i < n; i += 2) interleaved.push_back(i);
  for (size_t i = 1; i < n; i += 2) interleaved.push_back(i);
  for (const std::vector<size_t>& order : {reversed, interleaved}) {
    Result<std::unique_ptr<StandingSession>> session =
        StandingSession::Make(plan, nullptr, SessionOptions());
    ASSERT_TRUE(session.ok());
    Result<DetectionResult> live =
        DrainWithProducer(session->get(), data.relation, order);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    // The live drain decided the full crossing set of the arrivals.
    EXPECT_EQ(live->decisions.size(), TriangularPairCount(n));
    Result<DetectionResult> finish = (*session)->Finish(FinishShards());
    ASSERT_TRUE(finish.ok()) << finish.status().ToString();
    ExpectIdenticalResults(*finish, *reference);
  }
}

TEST(StandingSessionTest, DecisionSinkSeesEveryLiveDecisionOnce) {
  GeneratedData data = SeededPersons(15);
  const size_t n = data.relation.size();
  std::atomic<size_t> sink_calls{0};
  StandingSession::Options options = SessionOptions();
  options.decision_sink = [&sink_calls](const PairDecisionRecord&) {
    sink_calls.fetch_add(1);
  };
  Result<std::unique_ptr<StandingSession>> session =
      StandingSession::Make(PersonPlan(), nullptr, options);
  ASSERT_TRUE(session.ok());
  Result<DetectionResult> live =
      DrainWithProducer(session->get(), data.relation, Iota(n));
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(sink_calls.load(), live->decisions.size());
  EXPECT_EQ(live->decisions.size(), TriangularPairCount(n));
}

TEST(StandingSessionTest, FinishReRunIsAllCacheHits) {
  GeneratedData data = SeededPersons(20);
  auto cache = std::make_shared<ShardedDecisionCache>();
  Result<std::unique_ptr<StandingSession>> session =
      StandingSession::Make(PersonPlan(), nullptr, SessionOptions(cache));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(DrainWithProducer(session->get(), data.relation,
                                Iota(data.relation.size()))
                  .ok());
  Result<DetectionResult> finish = (*session)->Finish(FinishShards());
  ASSERT_TRUE(finish.ok());
  // Every finish pair was already decided live: the deterministic
  // report is a pure cache read.
  ASSERT_TRUE(finish->cache_stats.has_value());
  EXPECT_EQ(finish->cache_stats->hits, finish->cache_stats->lookups);
  EXPECT_EQ(finish->cache_stats->inserts, 0u);
  EXPECT_GT(finish->cache_stats->lookups, 0u);
}

TEST(StandingSessionTest, RunIncrementalMatchesDirectIncrementalStream) {
  GeneratedData data = SeededPersons(30);
  const size_t split = data.relation.size() / 2;
  XRelation existing("existing", data.relation.schema());
  XRelation additions("additions", data.relation.schema());
  for (size_t i = 0; i < data.relation.size(); ++i) {
    (i < split ? existing : additions).AppendUnchecked(data.relation.xtuple(i));
  }
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  // The pre-standing implementation, built directly.
  Result<std::unique_ptr<CandidateStream>> direct =
      MakeIncrementalStream(detector->plan(), existing, additions);
  ASSERT_TRUE(direct.ok());
  Result<DetectionResult> direct_result = detector->RunStream(**direct);
  ASSERT_TRUE(direct_result.ok());
  // The standing-path adapter must reproduce it byte for byte.
  Result<DetectionResult> adapted =
      detector->RunIncremental(existing, additions);
  ASSERT_TRUE(adapted.ok()) << adapted.status().ToString();
  ExpectIdenticalResults(*adapted, *direct_result);
}

TEST(StandingSessionTest, RunIncrementalRejectsDuplicateIds) {
  GeneratedData data = SeededPersons(10);
  XRelation additions("additions", data.relation.schema());
  additions.AppendUnchecked(data.relation.xtuple(0));  // already existing
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result =
      detector->RunIncremental(data.relation, additions);
  EXPECT_FALSE(result.ok());
}

// --- crash-restart warm start ---------------------------------------

class SnapshotFile {
 public:
  explicit SnapshotFile(const char* name) : path_(name) {
    std::remove(path_.c_str());
  }
  ~SnapshotFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(StandingSessionTest, CrashRestartWarmStartsFromSnapshot) {
  SnapshotFile file("ingest_test_warmstart.pddcache");
  GeneratedData data = SeededPersons(25);
  const size_t n = data.relation.size();
  const size_t crash_after = n / 2;
  std::shared_ptr<const DetectionPlan> plan = PersonPlan();

  // First life: serve the first half of the feed, snapshot, "crash"
  // (drop the session and the in-memory cache on the floor).
  {
    auto cache = std::make_shared<ShardedDecisionCache>();
    Result<std::unique_ptr<StandingSession>> session =
        StandingSession::Make(plan, nullptr, SessionOptions(cache));
    ASSERT_TRUE(session.ok());
    std::vector<size_t> first_half = Iota(crash_after);
    ASSERT_TRUE(
        DrainWithProducer(session->get(), data.relation, first_half).ok());
    ASSERT_TRUE(cache->AppendSnapshot(file.path()).ok());
  }

  // Second life: fresh process state, warm cache from disk, replay the
  // WHOLE feed (the standing service replays its input after restart).
  auto cache = std::make_shared<ShardedDecisionCache>();
  ASSERT_TRUE(cache->LoadSnapshot(file.path()).ok());
  Result<std::unique_ptr<StandingSession>> session =
      StandingSession::Make(plan, nullptr, SessionOptions(cache));
  ASSERT_TRUE(session.ok());
  Result<DetectionResult> live =
      DrainWithProducer(session->get(), data.relation, Iota(n));
  ASSERT_TRUE(live.ok());
  // Every replayed pair the first life decided comes straight from the
  // snapshot: at least the first half's crossing set hits.
  ASSERT_TRUE(live->cache_stats.has_value());
  EXPECT_GE(live->cache_stats->hits, TriangularPairCount(crash_after));
  // And the final report is byte-identical to a never-crashed batch run.
  Result<DetectionResult> finish = (*session)->Finish(FinishShards());
  ASSERT_TRUE(finish.ok());
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> batch =
      detector->Run((*session)->CanonicalRelation());
  ASSERT_TRUE(batch.ok());
  ExpectIdenticalResults(*finish, *batch);
}

}  // namespace
}  // namespace pdd
