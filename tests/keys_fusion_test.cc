// Unit tests for conflict resolution (fusion) and key creation,
// including the Fig. 13 key distributions.

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "fusion/conflict_resolution.h"
#include "keys/key_builder.h"
#include "keys/key_spec.h"

namespace pdd {
namespace {

// ---------------------------------------------------- conflict resolution

TEST(ConflictResolutionTest, ResolveValueMostProbable) {
  Value v = Value::Dist({{"Tim", 0.6}, {"Tom", 0.4}});
  EXPECT_EQ(ResolveValue(v, ConflictStrategy::kMostProbable), "Tim");
  EXPECT_EQ(ResolveValue(Value::Null(), ConflictStrategy::kMostProbable), "");
}

TEST(ConflictResolutionTest, ResolveValueDominantNull) {
  Value v = Value::Dist({{"x", 0.2}});  // ⊥ mass 0.8
  EXPECT_EQ(ResolveValue(v, ConflictStrategy::kMostProbable), "");
  // Text-based strategies still pick the explicit alternative.
  EXPECT_EQ(ResolveValue(v, ConflictStrategy::kFirst), "x");
}

TEST(ConflictResolutionTest, ResolveValueTextStrategies) {
  Value v = Value::Dist({{"bb", 0.3}, {"a", 0.3}, {"ccc", 0.4}});
  EXPECT_EQ(ResolveValue(v, ConflictStrategy::kFirst), "bb");
  EXPECT_EQ(ResolveValue(v, ConflictStrategy::kLongest), "ccc");
  EXPECT_EQ(ResolveValue(v, ConflictStrategy::kShortest), "a");
  EXPECT_EQ(ResolveValue(v, ConflictStrategy::kLexicographicMin), "a");
}

TEST(ConflictResolutionTest, ResolveAlternativeMostProbable) {
  XTuple t32 = BuildR3().xtuple(1);
  // Alternatives: 0.3, 0.2, 0.4 -> index 2 (Jim, baker).
  EXPECT_EQ(ResolveAlternative(t32, ConflictStrategy::kMostProbable), 2u);
  EXPECT_EQ(ResolveAlternative(t32, ConflictStrategy::kFirst), 0u);
}

TEST(ConflictResolutionTest, ResolveAlternativeSingleIsZero) {
  XTuple t42 = BuildR4().xtuple(1);
  for (ConflictStrategy s :
       {ConflictStrategy::kMostProbable, ConflictStrategy::kFirst,
        ConflictStrategy::kLongest, ConflictStrategy::kShortest,
        ConflictStrategy::kLexicographicMin}) {
    EXPECT_EQ(ResolveAlternative(t42, s), 0u);
  }
}

TEST(ConflictResolutionTest, ResolveAlternativeTextStrategies) {
  XTuple t43 = BuildR4().xtuple(2);
  // (John, ⊥) concat "John" (4 chars) vs (Sean, pilot) "Seanpilot" (9).
  EXPECT_EQ(ResolveAlternative(t43, ConflictStrategy::kLongest), 1u);
  EXPECT_EQ(ResolveAlternative(t43, ConflictStrategy::kShortest), 0u);
  EXPECT_EQ(ResolveAlternative(t43, ConflictStrategy::kLexicographicMin), 0u);
}

TEST(ConflictResolutionTest, ParseAndName) {
  EXPECT_EQ(*ParseConflictStrategy("most_probable"),
            ConflictStrategy::kMostProbable);
  EXPECT_EQ(*ParseConflictStrategy("lex_min"),
            ConflictStrategy::kLexicographicMin);
  EXPECT_FALSE(ParseConflictStrategy("bogus").ok());
  EXPECT_STREQ(ConflictStrategyName(ConflictStrategy::kLongest), "longest");
}

// ---------------------------------------------------------------- KeySpec

TEST(KeySpecTest, MakeValidatesAttributeIndices) {
  Schema schema = PaperSchema();
  EXPECT_FALSE(KeySpec::Make({}, schema).ok());
  EXPECT_FALSE(KeySpec::Make({{5, 3}}, schema).ok());
  EXPECT_TRUE(KeySpec::Make({{0, 3}, {1, 2}}, schema).ok());
}

TEST(KeySpecTest, FromNamesResolvesAttributes) {
  Schema schema = PaperSchema();
  Result<KeySpec> spec = KeySpec::FromNames({{"name", 3}, {"job", 2}},
                                            schema);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->components()[0].attribute, 0u);
  EXPECT_EQ(spec->components()[1].prefix_length, 2u);
  EXPECT_FALSE(KeySpec::FromNames({{"city", 1}}, schema).ok());
}

TEST(KeySpecTest, KeyFromTextsConcatenatesPrefixes) {
  KeySpec spec = PaperSortingKey();
  EXPECT_EQ(spec.KeyFromTexts({"John", "pilot"}), "Johpi");
  EXPECT_EQ(spec.KeyFromTexts({"John", ""}), "Joh");  // ⊥ contributes nothing
  EXPECT_EQ(spec.KeyFromTexts({"Jo", "pilot"}), "Jopi");  // short value
}

TEST(KeySpecTest, ZeroPrefixTakesWholeValue) {
  KeySpec spec({{0, 0}});
  EXPECT_EQ(spec.KeyFromTexts({"whole-value"}), "whole-value");
}

// -------------------------------------------------------------- KeyBuilder

TEST(KeyBuilderTest, KeyForAlternative) {
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  XRelation r4 = BuildR4();
  EXPECT_EQ(builder.KeyForAlternative(r4.xtuple(0).alternative(0)), "Johpi");
  EXPECT_EQ(builder.KeyForAlternative(r4.xtuple(2).alternative(0)), "Joh");
  EXPECT_EQ(builder.KeyForAlternative(r4.xtuple(2).alternative(1)), "Seapi");
}

TEST(KeyBuilderTest, PatternContributesLiteralPrefix) {
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  // t31 alternative 2: (Johan, mu*) -> "Joh" + "mu" = "Johmu" (Fig. 9/13).
  XRelation r3 = BuildR3();
  EXPECT_EQ(builder.KeyForAlternative(r3.xtuple(0).alternative(1)), "Johmu");
}

TEST(KeyBuilderTest, CertainKeyMostProbable) {
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  XRelation r34 = BuildR34();
  // Fig. 10: t31 Johpi, t32 Jimba, t41 Johpi, t42 Tomme, t43 Seapi.
  EXPECT_EQ(builder.CertainKey(r34.xtuple(0)), "Johpi");
  EXPECT_EQ(builder.CertainKey(r34.xtuple(1)), "Jimba");
  EXPECT_EQ(builder.CertainKey(r34.xtuple(2)), "Johpi");
  EXPECT_EQ(builder.CertainKey(r34.xtuple(3)), "Tomme");
  EXPECT_EQ(builder.CertainKey(r34.xtuple(4)), "Seapi");
}

TEST(KeyBuilderTest, AlternativeKeysPerAlternative) {
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  XRelation r34 = BuildR34();
  // Fig. 11 left: t31 {Johpi, Johmu}, t32 {Timme, Jimme, Jimba},
  // t41 {Johpi} (duplicate collapsed), t42 {Tomme}, t43 {Joh, Seapi}.
  EXPECT_EQ(builder.AlternativeKeys(r34.xtuple(0)),
            (std::vector<std::string>{"Johpi", "Johmu"}));
  EXPECT_EQ(builder.AlternativeKeys(r34.xtuple(1)),
            (std::vector<std::string>{"Timme", "Jimme", "Jimba"}));
  EXPECT_EQ(builder.AlternativeKeys(r34.xtuple(2)),
            (std::vector<std::string>{"Johpi"}));
  EXPECT_EQ(builder.AlternativeKeys(r34.xtuple(4)),
            (std::vector<std::string>{"Joh", "Seapi"}));
}

TEST(KeyBuilderTest, KeysForWorldSkipsAbsent) {
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  XRelation r34 = BuildR34();
  World world{{0, kAbsent, 0, 0, 1}, 0.1};
  std::vector<std::pair<size_t, std::string>> keys =
      builder.KeysForWorld(world, r34);
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0], (std::pair<size_t, std::string>{0, "Johpi"}));
  EXPECT_EQ(keys[3], (std::pair<size_t, std::string>{4, "Seapi"}));
}

TEST(KeyBuilderTest, Fig13Distributions) {
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  XRelation r34 = BuildR34();
  // t31: Johpi 0.7, Johmu 0.3.
  KeyDistribution d31 = builder.DistributionFor(r34.xtuple(0));
  ASSERT_EQ(d31.entries.size(), 2u);
  EXPECT_EQ(d31.entries[0].first, "Johpi");
  EXPECT_NEAR(d31.entries[0].second, 0.7, 1e-12);
  EXPECT_EQ(d31.entries[1].first, "Johmu");
  EXPECT_NEAR(d31.entries[1].second, 0.3, 1e-12);
  // t32: Timme 0.3, Jimme 0.2, Jimba 0.4 (raw masses as in Fig. 13).
  KeyDistribution d32 = builder.DistributionFor(r34.xtuple(1));
  ASSERT_EQ(d32.entries.size(), 3u);
  EXPECT_NEAR(d32.TotalMass(), 0.9, 1e-12);
  // t41 merges both alternatives to the single certain key Johpi 1.0
  // ("certain key value despite having two alternative tuples").
  KeyDistribution d41 = builder.DistributionFor(r34.xtuple(2));
  ASSERT_EQ(d41.entries.size(), 1u);
  EXPECT_EQ(d41.entries[0].first, "Johpi");
  EXPECT_NEAR(d41.entries[0].second, 1.0, 1e-12);
  // t43: Joh 0.2, Seapi 0.6.
  KeyDistribution d43 = builder.DistributionFor(r34.xtuple(4));
  ASSERT_EQ(d43.entries.size(), 2u);
  EXPECT_EQ(d43.entries[0].first, "Joh");
  EXPECT_NEAR(d43.entries[0].second, 0.2, 1e-12);
  EXPECT_EQ(d43.entries[1].first, "Seapi");
  EXPECT_NEAR(d43.entries[1].second, 0.6, 1e-12);
}

TEST(KeyBuilderTest, ConditionedDistributionNormalizes) {
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  XRelation r34 = BuildR34();
  KeyDistribution d32 = builder.DistributionFor(r34.xtuple(1),
                                                /*conditioned=*/true);
  EXPECT_NEAR(d32.TotalMass(), 1.0, 1e-12);
  EXPECT_NEAR(d32.entries[0].second, 0.3 / 0.9, 1e-12);
}

TEST(KeyBuilderTest, DistributionExpandsValueLevelUncertainty) {
  // A tuple of the dependency-free model: name {Tim:0.7, Kim:0.3},
  // job {mechanic:0.5, baker:0.5} -> four key outcomes.
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  XTuple t("t", {{{Value::Dist({{"Tim", 0.7}, {"Kim", 0.3}}),
                   Value::Dist({{"mechanic", 0.5}, {"baker", 0.5}})},
                  1.0}});
  KeyDistribution d = builder.DistributionFor(t);
  ASSERT_EQ(d.entries.size(), 4u);
  EXPECT_EQ(d.entries[0].first, "Timme");
  EXPECT_NEAR(d.entries[0].second, 0.35, 1e-12);
  EXPECT_EQ(d.entries[3].first, "Kimba");
  EXPECT_NEAR(d.entries[3].second, 0.15, 1e-12);
  EXPECT_NEAR(d.TotalMass(), 1.0, 1e-12);
}

TEST(KeyBuilderTest, DistributionHandlesPartialNullValue) {
  // Value with ⊥ mass: key outcome without the component.
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  XTuple t("t", {{{Value::Certain("John"),
                   Value::Dist({{"pilot", 0.6}})},  // ⊥ mass 0.4
                  1.0}});
  KeyDistribution d = builder.DistributionFor(t);
  ASSERT_EQ(d.entries.size(), 2u);
  EXPECT_EQ(d.entries[0].first, "Johpi");
  EXPECT_NEAR(d.entries[0].second, 0.6, 1e-12);
  EXPECT_EQ(d.entries[1].first, "Joh");
  EXPECT_NEAR(d.entries[1].second, 0.4, 1e-12);
}

TEST(KeyDistributionTest, MostProbableKey) {
  KeyDistribution d;
  d.entries = {{"a", 0.3}, {"b", 0.5}, {"c", 0.2}};
  EXPECT_EQ(d.MostProbableKey(), "b");
  EXPECT_NEAR(d.TotalMass(), 1.0, 1e-12);
}

}  // namespace
}  // namespace pdd
