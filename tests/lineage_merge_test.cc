// Unit tests for the Section VI machinery: union-find, lineage,
// probabilistic merge, entity clustering and the uncertain
// deduplication result.

#include <gtest/gtest.h>

#include <cmath>

#include "core/detector.h"
#include "core/entity_clusters.h"
#include "core/paper_examples.h"
#include "core/uncertain_result.h"
#include "fusion/probabilistic_merge.h"
#include "pdb/lineage.h"
#include "util/random.h"
#include "util/union_find.h"

namespace pdd {
namespace {

// -------------------------------------------------------------- UnionFind

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(4);
  EXPECT_EQ(uf.set_count(), 4u);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_EQ(uf.SetSize(2), 1u);
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // already connected
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.SetSize(1), 3u);
}

TEST(UnionFindTest, GroupsMaterializeAllElements) {
  UnionFind uf(6);
  uf.Union(0, 3);
  uf.Union(4, 5);
  std::vector<std::vector<size_t>> groups = uf.Groups();
  EXPECT_EQ(groups.size(), 4u);
  size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 3}));
}

TEST(UnionFindTest, TransitiveChains) {
  UnionFind uf(100);
  for (size_t i = 0; i + 1 < 100; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_TRUE(uf.Connected(0, 99));
  EXPECT_EQ(uf.SetSize(50), 100u);
}

// ---------------------------------------------------------------- Lineage

TEST(LineageTest, TrueLineage) {
  Lineage t = Lineage::True();
  EXPECT_TRUE(t.is_true());
  EXPECT_TRUE(t.Evaluate({}));
  EXPECT_EQ(t.ToString(), "true");
  EXPECT_TRUE(t.ReferencedTuples().empty());
}

TEST(LineageTest, AtomEvaluation) {
  Lineage atom = Lineage::Atom("t32", 1);
  EXPECT_TRUE(atom.Evaluate({{"t32", 1}}));
  EXPECT_FALSE(atom.Evaluate({{"t32", 0}}));
  EXPECT_FALSE(atom.Evaluate({}));  // absent tuple
  EXPECT_EQ(atom.ToString(), "t32/2");
}

TEST(LineageTest, BooleanConnectives) {
  Lineage a = Lineage::Atom("x", 0);
  Lineage b = Lineage::Atom("y", 0);
  Lineage both = Lineage::And(a, b);
  Lineage either = Lineage::Or(a, b);
  Lineage neg = Lineage::Not(a);
  EXPECT_TRUE(both.Evaluate({{"x", 0}, {"y", 0}}));
  EXPECT_FALSE(both.Evaluate({{"x", 0}}));
  EXPECT_TRUE(either.Evaluate({{"y", 0}}));
  EXPECT_FALSE(either.Evaluate({}));
  EXPECT_TRUE(neg.Evaluate({}));
  EXPECT_FALSE(neg.Evaluate({{"x", 0}}));
}

TEST(LineageTest, AndWithTrueSimplifies) {
  Lineage a = Lineage::Atom("x", 0);
  EXPECT_EQ(Lineage::And(Lineage::True(), a).ToString(), "x/1");
  EXPECT_EQ(Lineage::And(a, Lineage::True()).ToString(), "x/1");
}

TEST(LineageTest, ReferencedTuplesDeduplicated) {
  Lineage expr = Lineage::Or(
      Lineage::And(Lineage::Atom("a", 0), Lineage::Atom("b", 1)),
      Lineage::Not(Lineage::Atom("a", 1)));
  EXPECT_EQ(expr.ReferencedTuples(), (std::vector<std::string>{"a", "b"}));
}

// ------------------------------------------------------------- FuseValues

TEST(FuseValuesTest, EqualValuesStayFixed) {
  Value v = Value::Dist({{"Tim", 0.7}, {"Tom", 0.3}});
  Value fused = FuseValues(v, v, MergeOptions{});
  EXPECT_NEAR(fused.existence_probability(), 1.0, 1e-12);
  ASSERT_EQ(fused.size(), 2u);
  // Mixture of identical distributions is the distribution itself.
  for (const Alternative& alt : fused.alternatives()) {
    if (alt.text == "Tim") {
      EXPECT_NEAR(alt.prob, 0.7, 1e-12);
    }
    if (alt.text == "Tom") {
      EXPECT_NEAR(alt.prob, 0.3, 1e-12);
    }
  }
}

TEST(FuseValuesTest, MixtureWeights) {
  Value a = Value::Certain("John");
  Value b = Value::Certain("Jon");
  MergeOptions options;
  options.weight_a = 0.8;
  Value fused = FuseValues(a, b, options);
  ASSERT_EQ(fused.size(), 2u);
  for (const Alternative& alt : fused.alternatives()) {
    if (alt.text == "John") {
      EXPECT_NEAR(alt.prob, 0.8, 1e-12);
    }
    if (alt.text == "Jon") {
      EXPECT_NEAR(alt.prob, 0.2, 1e-12);
    }
  }
}

TEST(FuseValuesTest, NullMassMixes) {
  Value a = Value::Dist({{"x", 0.6}});  // ⊥ 0.4
  Value b = Value::Null();
  Value fused = FuseValues(a, b, MergeOptions{});
  EXPECT_NEAR(fused.null_probability(), 0.5 * 0.4 + 0.5 * 1.0, 1e-12);
}

TEST(FuseValuesTest, PatternsKeptDistinctFromLiterals) {
  Value a = Value::Pattern("mu");
  Value b = Value::Certain("mu");
  Value fused = FuseValues(a, b, MergeOptions{});
  EXPECT_EQ(fused.size(), 2u);
  EXPECT_TRUE(fused.has_pattern());
}

// ------------------------------------------------------------ FuseXTuples

TEST(FuseXTuplesTest, MergesIdenticalAlternatives) {
  XTuple t41 = BuildR4().xtuple(0);
  XTuple fused = FuseXTuples(t41, t41, "f", MergeOptions{});
  // Both sources agree: same two alternatives, same conditioned probs.
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_NEAR(fused.existence_probability(), 1.0, 1e-12);
  EXPECT_NEAR(fused.alternative(0).prob, 0.8, 1e-12);
  EXPECT_NEAR(fused.alternative(1).prob, 0.2, 1e-12);
  EXPECT_TRUE(fused.Validate().ok());
}

TEST(FuseXTuplesTest, UnionOfDistinctAlternatives) {
  XTuple t32 = BuildR3().xtuple(1);  // 3 alternatives, existence 0.9
  XTuple t42 = BuildR4().xtuple(1);  // 1 alternative, existence 0.8
  XTuple fused = FuseXTuples(t32, t42, "t32+t42", MergeOptions{});
  EXPECT_EQ(fused.id(), "t32+t42");
  ASSERT_EQ(fused.size(), 4u);
  EXPECT_NEAR(fused.existence_probability(), 0.5 * 0.9 + 0.5 * 0.8, 1e-12);
  EXPECT_TRUE(fused.Validate().ok());
  // The (Tom, mechanic) alternative carries half the mixed existence.
  EXPECT_NEAR(fused.alternative(3).prob, 0.5 * 0.85, 1e-12);
}

TEST(FuseXTuplesTest, MembershipMixesButConditioningPreserved) {
  XTuple a("a", {{{Value::Certain("x")}, 0.5}});
  XTuple b("b", {{{Value::Certain("x")}, 1.0}});
  XTuple fused = FuseXTuples(a, b, "ab", MergeOptions{});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_NEAR(fused.existence_probability(), 0.75, 1e-12);
}

TEST(FuseXTuplesTest, RandomPairsStayValid) {
  // Property sweep: fusing any two random x-tuples yields a valid
  // x-tuple whose existence is the configured mixture.
  Rng rng(31);
  for (int round = 0; round < 100; ++round) {
    auto random_xtuple = [&](const std::string& id) {
      size_t alts = 1 + rng.Index(3);
      std::vector<AltTuple> list;
      std::vector<double> raw;
      for (size_t a = 0; a < alts; ++a) raw.push_back(rng.Uniform(0.1, 1.0));
      double total = 0.0;
      for (double r : raw) total += r;
      double existence = rng.Uniform(0.3, 1.0);
      for (size_t a = 0; a < alts; ++a) {
        std::string text(1, static_cast<char>('a' + rng.Index(4)));
        list.push_back({{Value::Certain(text)}, raw[a] / total * existence});
      }
      return XTuple(id, std::move(list));
    };
    XTuple t1 = random_xtuple("t1");
    XTuple t2 = random_xtuple("t2");
    MergeOptions options;
    options.weight_a = rng.Uniform(0.1, 0.9);
    XTuple fused = FuseXTuples(t1, t2, "f", options);
    ASSERT_TRUE(fused.Validate().ok()) << fused.ToString();
    double expected = options.weight_a * t1.existence_probability() +
                      (1.0 - options.weight_a) * t2.existence_probability();
    EXPECT_NEAR(fused.existence_probability(), expected, 1e-9);
  }
}

// --------------------------------------------------------- EntityClusters

DetectionResult RunPaperDetection() {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  config.final_thresholds = {0.4, 0.7};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  return *detector->Run(BuildR34());
}

TEST(EntityClustersTest, MatchesFormClusters) {
  DetectionResult result = RunPaperDetection();
  std::vector<std::vector<size_t>> clusters = ClusterEntities(5, result);
  // (t31, t41) is the only match -> 4 clusters over 5 tuples.
  EXPECT_EQ(clusters.size(), 4u);
  bool together = false;
  for (const auto& c : clusters) {
    if (c.size() == 2 && c[0] == 0 && c[1] == 2) together = true;
  }
  EXPECT_TRUE(together);
}

TEST(EntityClustersTest, IncludePossibleGrowsClusters) {
  DetectionResult result = RunPaperDetection();
  ClusterOptions options;
  options.include_possible = true;
  std::vector<std::vector<size_t>> strict = ClusterEntities(5, result);
  std::vector<std::vector<size_t>> lenient =
      ClusterEntities(5, result, options);
  EXPECT_LE(lenient.size(), strict.size());
}

TEST(EntityClustersTest, EvaluateClusteringAgainstGold) {
  DetectionResult result = RunPaperDetection();
  std::vector<std::vector<size_t>> clusters = ClusterEntities(5, result);
  GoldStandard gold;
  gold.AddMatch("t31", "t41");
  XRelation r34 = BuildR34();
  EffectivenessMetrics m = EvaluateClustering(clusters, r34, gold);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(EntityClustersTest, TransitiveClosurePenalizesWrongBridges) {
  // Clustering that wrongly bridges two entities counts all induced
  // pairs as false positives.
  XRelation rel("R", Schema::Strings({"a"}));
  for (int i = 0; i < 4; ++i) {
    rel.AppendUnchecked(XTuple("t" + std::to_string(i),
                               {{{Value::Certain("x")}, 1.0}}));
  }
  GoldStandard gold;
  gold.AddMatch("t0", "t1");
  std::vector<std::vector<size_t>> clusters = {{0, 1, 2}, {3}};
  EffectivenessMetrics m = EvaluateClustering(clusters, rel, gold);
  EXPECT_NEAR(m.precision, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

// -------------------------------------------------------- UncertainResult

TEST(UncertainResultTest, PossibleMatchYieldsThreeOutcomes) {
  DetectionResult result = RunPaperDetection();
  XRelation r34 = BuildR34();
  UncertainDedupResult dedup = BuildUncertainResult(r34, result);
  // t31+t41 merge certainly (1 tuple); the best possible pair (t32,t42)
  // yields 3 outcome tuples; t43 passes through.
  size_t merged = 0, outcome_branches = 0, passthrough = 0;
  for (const ResultTuple& t : dedup.tuples) {
    if (t.base_ids.size() == 2 && t.confidence == 1.0) ++merged;
    if (t.confidence < 1.0) ++outcome_branches;
    if (t.base_ids.size() == 1 && t.confidence == 1.0) ++passthrough;
  }
  EXPECT_EQ(merged, 1u);
  EXPECT_EQ(outcome_branches, 3u);
  EXPECT_EQ(passthrough, 1u);
}

TEST(UncertainResultTest, OutcomeConfidencesAreComplementary) {
  DetectionResult result = RunPaperDetection();
  XRelation r34 = BuildR34();
  UncertainDedupResult dedup = BuildUncertainResult(r34, result);
  for (const ResultTuple& t : dedup.tuples) {
    if (t.base_ids.size() == 2 && t.confidence < 1.0) {
      // Find the two complementary branches referencing one base id.
      for (const ResultTuple& branch : dedup.tuples) {
        if (branch.base_ids.size() == 1 &&
            (branch.base_ids[0] == t.base_ids[0] ||
             branch.base_ids[0] == t.base_ids[1]) &&
            branch.confidence < 1.0) {
          EXPECT_NEAR(branch.confidence, 1.0 - t.confidence, 1e-12);
        }
      }
    }
  }
}

TEST(UncertainResultTest, LineagesOfOneEventAreMutuallyExclusive) {
  DetectionResult result = RunPaperDetection();
  XRelation r34 = BuildR34();
  UncertainDedupResult dedup = BuildUncertainResult(r34, result);
  const ResultTuple* merged_branch = nullptr;
  const ResultTuple* original_branch = nullptr;
  for (const ResultTuple& t : dedup.tuples) {
    if (t.confidence < 1.0) {
      if (t.base_ids.size() == 2) merged_branch = &t;
      if (t.base_ids.size() == 1 && original_branch == nullptr) {
        original_branch = &t;
      }
    }
  }
  ASSERT_NE(merged_branch, nullptr);
  ASSERT_NE(original_branch, nullptr);
  std::vector<std::string> events = merged_branch->lineage.ReferencedTuples();
  ASSERT_EQ(events.size(), 1u);
  // In the world where the match event fires, the merge exists and the
  // original does not — and vice versa.
  std::vector<std::pair<std::string, size_t>> fired = {{events[0], 0}};
  std::vector<std::pair<std::string, size_t>> not_fired = {};
  EXPECT_TRUE(merged_branch->lineage.Evaluate(fired));
  EXPECT_FALSE(original_branch->lineage.Evaluate(fired));
  EXPECT_FALSE(merged_branch->lineage.Evaluate(not_fired));
  EXPECT_TRUE(original_branch->lineage.Evaluate(not_fired));
}

TEST(UncertainResultTest, ExpectedEntityCount) {
  DetectionResult result = RunPaperDetection();
  XRelation r34 = BuildR34();
  UncertainDedupResult dedup = BuildUncertainResult(r34, result);
  // 5 base tuples; one certain merge (-1 entity); one possible merge
  // (expected 2 - c entities for the pair).
  double expected = dedup.ExpectedEntityCount();
  EXPECT_GT(expected, 3.0);
  EXPECT_LT(expected, 5.0);
}

TEST(UncertainResultTest, NoMatchesMeansPassthrough) {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  config.final_thresholds = {0.99, 0.999};  // nothing matches
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  XRelation r34 = BuildR34();
  DetectionResult result = *detector->Run(r34);
  UncertainDedupResult dedup = BuildUncertainResult(r34, result);
  EXPECT_EQ(dedup.tuples.size(), 5u);
  EXPECT_NEAR(dedup.ExpectedEntityCount(), 5.0, 1e-12);
}

TEST(UncertainResultTest, ToStringMentionsConfidenceAndLineage) {
  DetectionResult result = RunPaperDetection();
  XRelation r34 = BuildR34();
  UncertainDedupResult dedup = BuildUncertainResult(r34, result);
  std::string s = dedup.ToString();
  EXPECT_NE(s.find("confidence"), std::string::npos);
  EXPECT_NE(s.find("lineage"), std::string::npos);
  EXPECT_NE(s.find("t31+t41"), std::string::npos);
}

}  // namespace
}  // namespace pdd
