// Tests for the pddlint static-analysis pass (src/analysis/).
//
// Two halves: fixture snippets that must trip each rule (the linter
// is itself a gate, so a rule that silently stops firing is a CI
// hole), and the clean-tree assertion — the real repository, minus
// the audited allowlist, must produce zero findings, and every
// allowlist entry must still be necessary.

#include "analysis/lint.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/spec_closure.h"
#include "gtest/gtest.h"

namespace pdd {
namespace {

std::vector<LintFinding> Lint(std::string_view path,
                              std::string_view content) {
  return LintSource(path, content, LintOptions());
}

/// Count of findings for `rule` in the list.
size_t CountRule(const std::vector<LintFinding>& findings,
                 std::string_view rule) {
  size_t count = 0;
  for (const LintFinding& finding : findings) {
    if (finding.rule == rule) ++count;
  }
  return count;
}

std::string Describe(const std::vector<LintFinding>& findings) {
  std::string out;
  for (const LintFinding& finding : findings) {
    out += finding.ToString() + "\n";
  }
  return out;
}

// ------------------------------------------------------------------
// unordered-iteration

TEST(UnorderedIterationRule, FlagsRangeForOverUnorderedMap) {
  std::vector<LintFinding> findings = Lint("src/pipeline/x.cc", R"cc(
    void Render() {
      std::unordered_map<std::string, int> counts;
      for (const auto& [key, value] : counts) {
        Emit(key, value);
      }
    }
  )cc");
  ASSERT_EQ(CountRule(findings, "unordered-iteration"), 1u)
      << Describe(findings);
  EXPECT_EQ(findings[0].line, 4u);
  EXPECT_EQ(findings[0].file, "src/pipeline/x.cc");
}

TEST(UnorderedIterationRule, FlagsExplicitIteratorLoop) {
  std::vector<LintFinding> findings = Lint("src/core/x.cc", R"cc(
    std::unordered_set<std::string> ids;
    void Walk() {
      for (auto it = ids.begin(); it != ids.end(); ++it) Emit(*it);
    }
  )cc");
  EXPECT_EQ(CountRule(findings, "unordered-iteration"), 1u)
      << Describe(findings);
}

TEST(UnorderedIterationRule, FlagsMemberDeclarationsAndReferences) {
  std::vector<LintFinding> findings = Lint("src/cache/x.h", R"cc(
    struct Index {
      std::unordered_map<uint64_t, size_t> slots_;
    };
    void Dump(const std::unordered_map<uint64_t, size_t>& slots_) {
      for (const auto& entry : slots_) Emit(entry);
    }
  )cc");
  EXPECT_EQ(CountRule(findings, "unordered-iteration"), 1u)
      << Describe(findings);
}

TEST(UnorderedIterationRule, IgnoresOrderedContainersAndLookups) {
  std::vector<LintFinding> findings = Lint("src/pipeline/x.cc", R"cc(
    std::map<std::string, int> ordered;
    std::unordered_map<std::string, int> index;
    void Use() {
      for (const auto& [key, value] : ordered) Emit(key, value);
      auto it = index.find("name");   // lookups are fine
      index.emplace("a", 1);
    }
  )cc");
  EXPECT_EQ(CountRule(findings, "unordered-iteration"), 0u)
      << Describe(findings);
}

TEST(UnorderedIterationRule, ScopedToLibraryAndTools) {
  std::string snippet = R"cc(
    std::unordered_set<int> seen;
    void Use() {
      for (int v : seen) Emit(v);
    }
  )cc";
  EXPECT_EQ(CountRule(Lint("tests/x_test.cc", snippet),
                      "unordered-iteration"),
            0u);
  EXPECT_EQ(CountRule(Lint("tools/x.cc", snippet), "unordered-iteration"),
            1u);
}

TEST(UnorderedIterationRule, InlineMarkerSuppresses) {
  std::vector<LintFinding> findings = Lint("src/pipeline/x.cc", R"cc(
    std::unordered_map<int, int> histogram;
    void Fold() {
      // Sorted immediately below.  pddlint: allow(unordered-iteration)
      for (const auto& [k, v] : histogram) sink.push_back({k, v});
      std::sort(sink.begin(), sink.end());
    }
  )cc");
  EXPECT_EQ(CountRule(findings, "unordered-iteration"), 0u)
      << Describe(findings);
}

TEST(UnorderedIterationRule, AllowlistSuppressesWholeFile) {
  LintOptions options;
  ASSERT_TRUE(ParseLintAllowlist(
                  "unordered-iteration src/pipeline/x.cc  # audited\n",
                  &options)
                  .ok());
  std::vector<LintFinding> findings = LintSource("src/pipeline/x.cc", R"cc(
    std::unordered_map<int, int> m;
    void F() {
      for (const auto& [k, v] : m) Emit(k);
    }
  )cc",
                                                 options);
  EXPECT_EQ(CountRule(findings, "unordered-iteration"), 0u)
      << Describe(findings);
}

// ------------------------------------------------------------------
// nondeterminism

TEST(NondeterminismRule, FlagsEntropySourcesInTheCore) {
  std::vector<LintFinding> findings = Lint("src/pipeline/x.cc", R"cc(
    size_t Pick(size_t n) {
      std::srand(time(nullptr));
      return static_cast<size_t>(rand()) % n;
    }
  )cc");
  EXPECT_EQ(CountRule(findings, "nondeterminism"), 3u)
      << Describe(findings);
}

TEST(NondeterminismRule, FlagsPointerValueOrdering) {
  std::vector<LintFinding> findings = Lint("src/columnar/x.cc", R"cc(
    bool Before(const Tuple* a, const Tuple* b) {
      return reinterpret_cast<uintptr_t>(a) < reinterpret_cast<uintptr_t>(b);
    }
  )cc");
  EXPECT_EQ(CountRule(findings, "nondeterminism"), 2u)
      << Describe(findings);
}

TEST(NondeterminismRule, FlagsRandomDeviceAndGetenv) {
  std::vector<LintFinding> findings = Lint("src/decision/x.cc", R"cc(
    double Jitter() {
      std::random_device entropy;
      const char* override = getenv("PDD_JITTER");
      return 0.0;
    }
  )cc");
  EXPECT_EQ(CountRule(findings, "nondeterminism"), 2u)
      << Describe(findings);
}

TEST(NondeterminismRule, ScopedToTheDeterministicCore) {
  std::string snippet = R"cc(
    uint64_t Seed() { return static_cast<uint64_t>(time(nullptr)); }
  )cc";
  // Datagen seeds from the caller, but wall-clock use there cannot
  // desync a report byte; the rule covers the decide path only.
  EXPECT_EQ(CountRule(Lint("src/datagen/x.cc", snippet), "nondeterminism"),
            0u);
  EXPECT_EQ(CountRule(Lint("src/cache/x.cc", snippet), "nondeterminism"),
            1u);
  // The serving layer is in the core: an index image must be a pure
  // function of (record ids, report content).
  EXPECT_EQ(CountRule(Lint("src/index/x.cc", snippet), "nondeterminism"),
            1u);
  // So is the standing ingest path: the push-based drain promises a
  // report byte-identical to the batch run for any arrival order, so
  // queue/admission/session code must stay clock- and entropy-free
  // (arrival stamps are opaque caller-provided values).
  EXPECT_EQ(CountRule(Lint("src/ingest/x.cc", snippet), "nondeterminism"),
            1u);
}

TEST(NondeterminismRule, WordBoundariesAvoidFalsePositives) {
  std::vector<LintFinding> findings = Lint("src/pipeline/x.cc", R"cc(
    double wall_time(const StageTimings& t) { return t.total; }
    void Strand(int strand) { strand_(strand); }
    // steady_clock::now() is the sanctioned timing source.
    auto start = std::chrono::steady_clock::now();
  )cc");
  EXPECT_EQ(CountRule(findings, "nondeterminism"), 0u)
      << Describe(findings);
}

// ------------------------------------------------------------------
// banned-function

TEST(BannedFunctionRule, FlagsUnsafeCalls) {
  std::vector<LintFinding> findings = Lint("src/util/x.cc", R"cc(
    void Copy(char* dst, const char* src) {
      strcpy(dst, src);
      int n = atoi(src);
      double d = atof(src);
    }
  )cc");
  EXPECT_EQ(CountRule(findings, "banned-function"), 3u)
      << Describe(findings);
}

TEST(BannedFunctionRule, AppliesToTestsAndBenches) {
  std::string snippet = R"cc(
    int Parse(const char* s) { return atoi(s); }
  )cc";
  EXPECT_EQ(CountRule(Lint("tests/x_test.cc", snippet), "banned-function"),
            1u);
  EXPECT_EQ(CountRule(Lint("bench/x.cpp", snippet), "banned-function"), 1u);
}

TEST(BannedFunctionRule, RequiresExactNameAndCall) {
  std::vector<LintFinding> findings = Lint("src/util/x.cc", R"cc(
    int my_atoi(const char* s);      // different identifier
    int atoi_like(const char* s);    // different identifier
    void Log() { Emit("call atoi(x) manually"); }  // string literal
    struct S { int atoi; };          // member, never called
  )cc");
  EXPECT_EQ(CountRule(findings, "banned-function"), 0u)
      << Describe(findings);
}

// ------------------------------------------------------------------
// float-equality

TEST(FloatEqualityRule, FlagsLiteralComparisonsInDecisionCode) {
  std::vector<LintFinding> findings = Lint("src/decision/x.cc", R"cc(
    bool IsMatch(double p) { return p == 0.7; }
    bool IsEdge(double p) { return 1.0 != p; }
    bool IsTiny(double p) { return p == 1e-9; }
  )cc");
  EXPECT_EQ(CountRule(findings, "float-equality"), 3u)
      << Describe(findings);
}

TEST(FloatEqualityRule, AllowsOrderedAndIntegerComparisons) {
  std::vector<LintFinding> findings = Lint("src/decision/x.cc", R"cc(
    bool AtLeast(double p) { return p >= 0.7; }
    bool Below(double p) { return p < 0.4; }
    bool None(size_t n) { return n == 0; }
    bool Same(int a, int b) { return a == b; }
  )cc");
  EXPECT_EQ(CountRule(findings, "float-equality"), 0u)
      << Describe(findings);
}

TEST(FloatEqualityRule, ScopedToDecisionCode) {
  std::string snippet = R"cc(
    bool Exact(double s) { return s == 1.0; }
  )cc";
  EXPECT_EQ(CountRule(Lint("src/sim/x.cc", snippet), "float-equality"), 0u);
  EXPECT_EQ(CountRule(Lint("src/decision/x.cc", snippet), "float-equality"),
            1u);
}

// ------------------------------------------------------------------
// engine mechanics

TEST(LintEngine, IgnoresCommentsAndStrings) {
  std::vector<LintFinding> findings = Lint("src/pipeline/x.cc", R"cc(
    // rand() in a comment, and atoi(s) too.
    /* for (auto& kv : unordered_things) {} */
    const char* doc = "call rand() and compare p == 0.7";
  )cc");
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

TEST(LintEngine, FindingFormatIsCompilerStyle) {
  LintFinding finding{"src/pipeline/x.cc", 12, "nondeterminism", "boom"};
  EXPECT_EQ(finding.ToString(), "src/pipeline/x.cc:12: [nondeterminism] boom");
}

TEST(LintEngine, AllowlistRejectsUnknownRulesAndTrailingTokens) {
  LintOptions options;
  EXPECT_FALSE(ParseLintAllowlist("not-a-rule src/x.cc\n", &options).ok());
  EXPECT_FALSE(
      ParseLintAllowlist("banned-function src/x.cc stray\n", &options).ok());
  EXPECT_TRUE(ParseLintAllowlist("# only comments\n\n", &options).ok());
  EXPECT_TRUE(options.allowlist.empty());
}

TEST(LintEngine, RuleCatalogIsStable) {
  std::vector<std::string> names;
  for (const LintRuleInfo& rule : LintRules()) names.push_back(rule.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"unordered-iteration", "nondeterminism",
                                      "banned-function", "float-equality",
                                      "spec-closure"}));
}

// ------------------------------------------------------------------
// The real tree.

std::string SourceRootOrSkip() {
  std::string root = DefaultSourceRoot();
  if (root.empty() || !std::filesystem::exists(root)) return "";
  return root;
}

TEST(CleanTree, RepositoryIsLintClean) {
  std::string root = SourceRootOrSkip();
  if (root.empty()) GTEST_SKIP() << "source root unavailable";
  LintOptions options;
  Status allowlist = LoadLintAllowlist(root + "/tools/pddlint_allowlist.txt",
                                       &options);
  ASSERT_TRUE(allowlist.ok()) << allowlist.ToString();
  Result<std::vector<LintFinding>> findings = LintTree(root, options);
  ASSERT_TRUE(findings.ok()) << findings.status().ToString();
  EXPECT_TRUE(findings->empty())
      << "the tree must stay lint-green (fix the site or add an audited "
         "allowlist entry):\n"
      << Describe(*findings);
}

TEST(CleanTree, EveryAllowlistEntryIsStillNecessary) {
  std::string root = SourceRootOrSkip();
  if (root.empty()) GTEST_SKIP() << "source root unavailable";
  LintOptions options;
  ASSERT_TRUE(LoadLintAllowlist(root + "/tools/pddlint_allowlist.txt",
                                &options)
                  .ok());
  for (const auto& [rule, files] : options.allowlist) {
    for (const std::string& file : files) {
      std::ifstream in(root + "/" + file);
      ASSERT_TRUE(in.good()) << "allowlist names missing file " << file;
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::vector<LintFinding> findings =
          LintSource(file, buffer.str(), LintOptions());
      EXPECT_GT(CountRule(findings, rule), 0u)
          << "allowlist entry `" << rule << " " << file
          << "` no longer suppresses anything — remove it";
    }
  }
}

TEST(CleanTree, SpecClosureHolds) {
  std::string root = SourceRootOrSkip();
  if (root.empty()) GTEST_SKIP() << "source root unavailable";
  Result<SpecClosureReport> closure = CheckSpecClosure(root);
  ASSERT_TRUE(closure.ok()) << closure.status().ToString();
  EXPECT_TRUE(closure->findings.empty()) << Describe(closure->findings);
  EXPECT_GT(closure->read_keys.size(), 20u);
  EXPECT_GT(closure->printed_keys.size(), 20u);
  // The documented fingerprint-irrelevant keys are exactly the read
  // keys that never reach the fingerprint.
  for (const std::string& key : FingerprintIrrelevantSpecKeys()) {
    EXPECT_EQ(closure->read_keys.count(key), 1u) << key;
    EXPECT_EQ(closure->printed_keys.count(key), 0u) << key;
  }
}

}  // namespace
}  // namespace pdd
