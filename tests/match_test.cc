// Unit tests for attribute value matching (Eq. 4 / Eq. 5) and the tuple
// matcher, including the paper's Section IV-A worked example.

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "match/attribute_matcher.h"
#include "match/comparison_matrix.h"
#include "match/tuple_matcher.h"
#include "sim/edit_distance.h"
#include "sim/registry.h"

namespace pdd {
namespace {

const Comparator& Hamming() {
  static NormalizedHammingComparator cmp;
  return cmp;
}

// --------------------------------------------------------- ⊥ semantics

TEST(OutcomeSimilarityTest, NullSemantics) {
  EXPECT_DOUBLE_EQ(OutcomeSimilarity(std::nullopt, std::nullopt, Hamming()),
                   1.0);
  EXPECT_DOUBLE_EQ(OutcomeSimilarity("a", std::nullopt, Hamming()), 0.0);
  EXPECT_DOUBLE_EQ(OutcomeSimilarity(std::nullopt, "a", Hamming()), 0.0);
  EXPECT_DOUBLE_EQ(OutcomeSimilarity("a", "a", Hamming()), 1.0);
}

TEST(ExpectedSimilarityTest, BothCertainNull) {
  EXPECT_DOUBLE_EQ(ExpectedSimilarity(Value::Null(), Value::Null(), Hamming()),
                   1.0);
}

TEST(ExpectedSimilarityTest, CertainVersusNull) {
  EXPECT_DOUBLE_EQ(
      ExpectedSimilarity(Value::Certain("a"), Value::Null(), Hamming()), 0.0);
}

TEST(ExpectedSimilarityTest, PartialNullMassContributes) {
  // {a: 0.6, ⊥: 0.4} vs {a: 0.5, ⊥: 0.5}:
  // 0.6*0.5*1 (a,a) + 0.4*0.5*1 (⊥,⊥) = 0.5.
  Value v1 = Value::Dist({{"a", 0.6}});
  Value v2 = Value::Dist({{"a", 0.5}});
  EXPECT_NEAR(ExpectedSimilarity(v1, v2, Hamming()), 0.5, 1e-12);
}

// ------------------------------------------------- paper worked example

TEST(ExpectedSimilarityTest, PaperNameSimilarity) {
  // sim(t11.name, t22.name) = 0.7*1 + 0.3*(2/3) = 0.9.
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  double sim = ExpectedSimilarity(r1.tuple(0).value(0), r2.tuple(1).value(0),
                                  Hamming());
  EXPECT_NEAR(sim, 0.9, 1e-12);
}

TEST(ExpectedSimilarityTest, PaperJobSimilarity) {
  // sim(t11.job, t22.job) = 0.2 + 0.7*(5/9) ≈ 0.5889 (the paper rounds
  // to 0.59).
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  double sim = ExpectedSimilarity(r1.tuple(0).value(1), r2.tuple(1).value(1),
                                  Hamming());
  EXPECT_NEAR(sim, 0.2 + 0.7 * 5.0 / 9.0, 1e-12);
  EXPECT_NEAR(sim, 0.59, 0.005);
}

TEST(EqualityProbabilityTest, IsExpectedSimilarityUnderExact) {
  Value v1 = Value::Dist({{"John", 0.5}, {"Johan", 0.5}});
  Value v2 = Value::Dist({{"John", 0.7}, {"Jon", 0.3}});
  // P(equal) = 0.5 * 0.7 = 0.35.
  EXPECT_NEAR(EqualityProbability(v1, v2), 0.35, 1e-12);
}

TEST(EqualityProbabilityTest, ErrorFreeSpecialCase) {
  // Eq. 4 equals Eq. 5 with the exact comparator.
  ExactComparator exact;
  Value v1 = Value::Dist({{"a", 0.4}, {"b", 0.4}});
  Value v2 = Value::Dist({{"b", 0.5}, {"c", 0.3}});
  EXPECT_NEAR(EqualityProbability(v1, v2),
              ExpectedSimilarity(v1, v2, exact), 1e-12);
}

TEST(ExpectedSimilarityTest, SymmetricInArguments) {
  Value v1 = Value::Dist({{"machinist", 0.7}, {"mechanic", 0.2}});
  Value v2 = Value::Certain("mechanic");
  EXPECT_NEAR(ExpectedSimilarity(v1, v2, Hamming()),
              ExpectedSimilarity(v2, v1, Hamming()), 1e-12);
}

// ------------------------------------------------------ ComparisonVector

TEST(ComparisonVectorTest, ValidateBounds) {
  EXPECT_TRUE(ComparisonVector({0.0, 0.5, 1.0}).Validate().ok());
  EXPECT_FALSE(ComparisonVector({-0.1}).Validate().ok());
  EXPECT_FALSE(ComparisonVector({1.1}).Validate().ok());
}

TEST(ComparisonVectorTest, AccessAndToString) {
  ComparisonVector c({0.9, 0.59});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 0.9);
  EXPECT_EQ(c.ToString(), "[0.9, 0.59]");
}

// ------------------------------------------------------ ComparisonMatrix

TEST(ComparisonMatrixTest, ShapeAndAccess) {
  ComparisonMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.at(1, 2) = ComparisonVector({0.5});
  EXPECT_DOUBLE_EQ(m.at(1, 2)[0], 0.5);
  EXPECT_EQ(m.at(0, 0).size(), 0u);
}

// ---------------------------------------------------------- TupleMatcher

TupleMatcher MakePaperMatcher() {
  Schema schema = PaperSchema();
  std::vector<const Comparator*> cmps(2, &Hamming());
  return *TupleMatcher::Make(schema, cmps);
}

TEST(TupleMatcherTest, MakeValidatesArity) {
  Schema schema = PaperSchema();
  EXPECT_FALSE(TupleMatcher::Make(schema, {&Hamming()}).ok());
  EXPECT_FALSE(TupleMatcher::Make(schema, {&Hamming(), nullptr}).ok());
  EXPECT_TRUE(TupleMatcher::Make(schema, {&Hamming(), &Hamming()}).ok());
}

TEST(TupleMatcherTest, PaperComparisonVector) {
  TupleMatcher matcher = MakePaperMatcher();
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  ComparisonVector c = matcher.Compare(r1.tuple(0), r2.tuple(1));
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 0.9, 1e-12);
  EXPECT_NEAR(c[1], 0.2 + 0.7 * 5.0 / 9.0, 1e-12);
}

TEST(TupleMatcherTest, XTupleMatrixShape) {
  TupleMatcher matcher = MakePaperMatcher();
  XRelation r3 = BuildR3();
  XRelation r4 = BuildR4();
  ComparisonMatrix m = matcher.CompareXTuples(r3.xtuple(1), r4.xtuple(1));
  EXPECT_EQ(m.rows(), 3u);  // t32 alternatives
  EXPECT_EQ(m.cols(), 1u);  // t42 alternatives
  // (Tim, mechanic) vs (Tom, mechanic): name 2/3, job 1.
  EXPECT_NEAR(m.at(0, 0)[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.at(0, 0)[1], 1.0, 1e-12);
}

TEST(TupleMatcherTest, PatternValuesExpandAgainstVocabulary) {
  TupleMatcher matcher = MakePaperMatcher();
  // t31's second alternative job 'mu*' expands over the paper vocabulary
  // (musician is the only mu-word), so (Johan, mu*) vs (Johan, musician)
  // scores job similarity 1.
  AltTuple pattern_alt{{Value::Certain("Johan"), Value::Pattern("mu")}, 1.0};
  AltTuple concrete_alt{{Value::Certain("Johan"), Value::Certain("musician")},
                        1.0};
  ComparisonVector c = matcher.CompareAlternatives(pattern_alt, concrete_alt);
  EXPECT_NEAR(c[0], 1.0, 1e-12);
  EXPECT_NEAR(c[1], 1.0, 1e-12);
}

TEST(TupleMatcherTest, MatchAttributeUsesPerAttributeComparator) {
  Schema schema = PaperSchema();
  ExactComparator exact;
  std::vector<const Comparator*> cmps = {&exact, &Hamming()};
  TupleMatcher matcher = *TupleMatcher::Make(schema, cmps);
  // Attribute 0 (exact): Tim vs Tom -> 0; attribute 1 (hamming) -> 1/3.
  EXPECT_DOUBLE_EQ(
      matcher.MatchAttribute(0, Value::Certain("Tim"), Value::Certain("Tom")),
      0.0);
  EXPECT_NEAR(
      matcher.MatchAttribute(1, Value::Certain("Tim"), Value::Certain("Tom")),
      2.0 / 3.0, 1e-12);
}

TEST(TupleMatcherTest, CompareUncertainBothSides) {
  TupleMatcher matcher = MakePaperMatcher();
  // t12 vs t21: names {John:.5, Johan:.5} vs {John:.7, Jon:.3}.
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  ComparisonVector c = matcher.Compare(r1.tuple(1), r2.tuple(0));
  // Hand computation of the name component:
  // John/John=1(.35), John/Jon: hamming("John","Jon")= J=J,o=o,h≠n,n -> 2/4=0.5 (.15*0.5)
  // Johan/John: J,o,h,a≠n,n -> 3/5 (.35*0.6), Johan/Jon: J,o,h≠n,a,n -> 2/5 (.15*0.4)
  double expected_name = 0.5 * 0.7 * 1.0 + 0.5 * 0.3 * 0.5 +
                         0.5 * 0.7 * 0.6 + 0.5 * 0.3 * 0.4;
  EXPECT_NEAR(c[0], expected_name, 1e-12);
}

}  // namespace
}  // namespace pdd
