// Unit tests for the Monte-Carlo similarity estimator and incremental
// detection.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "datagen/person_generator.h"
#include "derive/monte_carlo.h"
#include "derive/similarity_based.h"
#include "sim/edit_distance.h"

namespace pdd {
namespace {

const Comparator& Hamming() {
  static NormalizedHammingComparator cmp;
  return cmp;
}

// ------------------------------------------------------------ Monte Carlo

TEST(MonteCarloTest, ConvergesToEq6OnPaperPair) {
  TupleMatcher matcher = *TupleMatcher::Make(PaperSchema(),
                                             {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.8, 0.2});
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  Rng rng(7);
  McOptions options;
  options.samples = 40000;
  McEstimate est = EstimateSimilarityMc(t32, t42, matcher, phi, &rng,
                                        options);
  // Eq. 6 exact value is 7/15; 40k samples pin it within a few SEs.
  EXPECT_NEAR(est.similarity, 7.0 / 15.0, 0.01);
  EXPECT_EQ(est.samples, 40000u);
  EXPECT_GT(est.standard_error, 0.0);
  EXPECT_LT(est.standard_error, 0.005);
}

TEST(MonteCarloTest, CertainPairHasZeroVariance) {
  TupleMatcher matcher = *TupleMatcher::Make(PaperSchema(),
                                             {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.8, 0.2});
  XTuple a("a", {{{Value::Certain("Tim"), Value::Certain("mechanic")}, 1.0}});
  XTuple b("b", {{{Value::Certain("Tom"), Value::Certain("mechanic")}, 1.0}});
  Rng rng(7);
  McOptions options;
  options.samples = 100;
  McEstimate est = EstimateSimilarityMc(a, b, matcher, phi, &rng, options);
  double exact = phi.Combine(matcher.CompareAlternatives(a.alternative(0),
                                                         b.alternative(0)));
  EXPECT_NEAR(est.similarity, exact, 1e-12);
  EXPECT_NEAR(est.standard_error, 0.0, 1e-12);
}

TEST(MonteCarloTest, EarlyStopOnTargetStandardError) {
  TupleMatcher matcher = *TupleMatcher::Make(PaperSchema(),
                                             {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.8, 0.2});
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  Rng rng(7);
  McOptions options;
  options.samples = 100000;
  options.target_standard_error = 0.01;
  McEstimate est = EstimateSimilarityMc(t32, t42, matcher, phi, &rng,
                                        options);
  EXPECT_LT(est.samples, 100000u);
  EXPECT_LE(est.standard_error, 0.011);
}

TEST(MonteCarloTest, EstimateIsUnbiasedAcrossSeeds) {
  TupleMatcher matcher = *TupleMatcher::Make(PaperSchema(),
                                             {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.8, 0.2});
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  McOptions options;
  options.samples = 2000;
  double total = 0.0;
  const int runs = 20;
  for (int seed = 0; seed < runs; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 1);
    total +=
        EstimateSimilarityMc(t32, t42, matcher, phi, &rng, options)
            .similarity;
  }
  EXPECT_NEAR(total / runs, 7.0 / 15.0, 0.005);
}

TEST(MonteCarloTest, DegenerateInputs) {
  TupleMatcher matcher = *TupleMatcher::Make(PaperSchema(),
                                             {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.8, 0.2});
  Rng rng(7);
  McOptions none;
  none.samples = 0;
  McEstimate est = EstimateSimilarityMc(BuildR3().xtuple(0),
                                        BuildR4().xtuple(0), matcher, phi,
                                        &rng, none);
  EXPECT_EQ(est.samples, 0u);
  EXPECT_DOUBLE_EQ(est.similarity, 0.0);
}

// ------------------------------------------------------------ incremental

DetectorConfig PersonConfig() {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.25, 0.25};
  config.final_thresholds = {0.6, 0.8};
  return config;
}

TEST(IncrementalTest, OnlyPairsTouchingAdditionsExamined) {
  PersonGenOptions gen;
  gen.num_entities = 40;
  gen.duplicate_rate = 0.5;
  GeneratedData data = GeneratePersons(gen);
  // Split: first 80 % existing, rest additions.
  size_t split = data.relation.size() * 4 / 5;
  XRelation existing("existing", data.relation.schema());
  XRelation additions("additions", data.relation.schema());
  for (size_t i = 0; i < data.relation.size(); ++i) {
    (i < split ? existing : additions)
        .AppendUnchecked(data.relation.xtuple(i));
  }
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> incremental =
      detector->RunIncremental(existing, additions);
  ASSERT_TRUE(incremental.ok());
  for (const PairDecisionRecord& rec : incremental->decisions) {
    EXPECT_GE(rec.index2, split);  // every pair touches an addition
  }
  size_t n_new = additions.size();
  EXPECT_EQ(incremental->total_pairs,
            split * n_new + n_new * (n_new - 1) / 2);
}

TEST(IncrementalTest, AgreesWithFullRunOnSharedPairs) {
  PersonGenOptions gen;
  gen.num_entities = 30;
  gen.duplicate_rate = 0.6;
  GeneratedData data = GeneratePersons(gen);
  size_t split = data.relation.size() - 5;
  XRelation existing("existing", data.relation.schema());
  XRelation additions("additions", data.relation.schema());
  for (size_t i = 0; i < data.relation.size(); ++i) {
    (i < split ? existing : additions)
        .AppendUnchecked(data.relation.xtuple(i));
  }
  DetectorConfig config = PersonConfig();
  config.reduction = ReductionMethod::kFull;  // deterministic coverage
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  Result<DetectionResult> full = detector->Run(data.relation);
  Result<DetectionResult> incremental =
      detector->RunIncremental(existing, additions);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(incremental.ok());
  // Every incremental decision must match the full run's decision.
  for (const PairDecisionRecord& inc : incremental->decisions) {
    bool found = false;
    for (const PairDecisionRecord& rec : full->decisions) {
      if (rec.id1 == inc.id1 && rec.id2 == inc.id2) {
        found = true;
        EXPECT_NEAR(rec.similarity, inc.similarity, 1e-12);
        EXPECT_EQ(rec.match_class, inc.match_class);
      }
    }
    EXPECT_TRUE(found) << inc.id1 << "," << inc.id2;
  }
}

TEST(IncrementalTest, EmptyAdditionsYieldNothing) {
  XRelation existing = BuildR34();
  XRelation additions("empty", existing.schema());
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  Result<DetectionResult> result =
      detector->RunIncremental(existing, additions);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidate_count, 0u);
  EXPECT_EQ(result->total_pairs, 0u);
}

TEST(IncrementalTest, RejectsDuplicateIds) {
  XRelation existing = BuildR34();
  XRelation additions("dup", existing.schema());
  additions.AppendUnchecked(existing.xtuple(0));  // same id
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  EXPECT_FALSE(detector->RunIncremental(existing, additions).ok());
}

}  // namespace
}  // namespace pdd
