// Tests for the run-telemetry subsystem (src/obs/): log-histogram
// bucket math and merge associativity, registry determinism across
// worker/shard/batch/cache run shapes, JSON and Prometheus export
// goldens, sidecar round-trips through the parser, span nesting, the
// stat-struct views, and the "(disabled)" stage-timing rendering.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/decision_cache.h"
#include "core/detector.h"
#include "core/report_writer.h"
#include "datagen/person_generator.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/log_histogram.h"
#include "obs/metrics_registry.h"
#include "obs/run_telemetry.h"
#include "pipeline/detection_result.h"

namespace pdd {
namespace {

// --- log histogram ------------------------------------------------------

TEST(LogHistogramTest, BucketIndexIsBitWidth) {
  EXPECT_EQ(LogHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LogHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LogHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LogHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LogHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(LogHistogram::BucketIndex(7), 3u);
  EXPECT_EQ(LogHistogram::BucketIndex(8), 4u);
  EXPECT_EQ(LogHistogram::BucketIndex(1023), 10u);
  EXPECT_EQ(LogHistogram::BucketIndex(1024), 11u);
  EXPECT_EQ(LogHistogram::BucketIndex(UINT64_MAX), 64u);
}

TEST(LogHistogramTest, BucketUpperBoundsInvertBucketIndex) {
  EXPECT_EQ(LogHistogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(LogHistogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(LogHistogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(LogHistogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(LogHistogram::BucketUpperBound(64), UINT64_MAX);
  // Every bucket's upper bound maps back to that bucket: the property
  // the JSON round-trip (upper bound -> bucket index) relies on.
  for (size_t i = 0; i < LogHistogram::kBucketCount; ++i) {
    EXPECT_EQ(LogHistogram::BucketIndex(LogHistogram::BucketUpperBound(i)), i);
  }
}

TEST(LogHistogramTest, ExactCountSumMinMax) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  h.Record(0);
  h.Record(5);
  h.RecordN(100, 3);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 305u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.MeanFloor(), 61u);
}

TEST(LogHistogramTest, QuantilesAreBucketUpperBounds) {
  LogHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  // rank ceil(0.5 * 100) = 50 -> value 50 -> bucket [32, 63].
  EXPECT_EQ(h.Quantile(0.5), 63u);
  // rank 95 -> value 95 -> bucket [64, 127].
  EXPECT_EQ(h.Quantile(0.95), 127u);
  EXPECT_EQ(h.Quantile(1.0), 127u);
  // rank clamps to 1 at q=0 -> value 1 -> bucket [1, 1].
  EXPECT_EQ(h.Quantile(0.0), 1u);
}

TEST(LogHistogramTest, MergeEqualsSequentialRecording) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram all;
  for (uint64_t v : {0ull, 3ull, 17ull, 100000ull}) {
    a.Record(v);
    all.Record(v);
  }
  for (uint64_t v : {1ull, 17ull, 254ull}) {
    b.Record(v);
    all.Record(v);
  }
  LogHistogram merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged, all);
  // Merge order must not matter.
  LogHistogram reversed = b;
  reversed.Merge(a);
  EXPECT_EQ(reversed, all);
}

TEST(LogHistogramTest, FromStateRoundTrips) {
  LogHistogram h;
  for (uint64_t v : {0ull, 2ull, 9ull, 1000000ull}) h.Record(v);
  LogHistogram rebuilt =
      LogHistogram::FromState(h.buckets(), h.sum(), h.min(), h.max());
  EXPECT_EQ(rebuilt, h);
}

// --- registry -----------------------------------------------------------

TEST(MetricsRegistryTest, NamespaceClassification) {
  EXPECT_TRUE(IsIdentityMetricName("pairs.candidates"));
  EXPECT_TRUE(IsIdentityMetricName("decisions.similarity_micros"));
  EXPECT_FALSE(IsIdentityMetricName("exec.stream.batches"));
  EXPECT_FALSE(IsIdentityMetricName("time.stage.match_seconds"));
}

TEST(MetricsRegistryTest, MergeAddsCountsOverwritesAnnotations) {
  MetricsRegistry a;
  a.AddCounter("pairs.candidates", 10);
  a.SetGauge("time.x", 1.0);
  a.SetInfo("exec.match_kernel", "scalar");
  a.Observe("lat", 4);
  MetricsRegistry b;
  b.AddCounter("pairs.candidates", 5);
  b.AddCounter("decisions.total", 2);
  b.SetGauge("time.x", 2.0);
  b.SetInfo("exec.match_kernel", "columnar");
  b.Observe("lat", 9);
  a.Merge(b);
  EXPECT_EQ(a.counter("pairs.candidates"), 15u);
  EXPECT_EQ(a.counter("decisions.total"), 2u);
  EXPECT_EQ(a.gauge("time.x"), 2.0);
  EXPECT_EQ(a.info("exec.match_kernel"), "columnar");
  ASSERT_NE(a.histogram("lat"), nullptr);
  EXPECT_EQ(a.histogram("lat")->count(), 2u);
  EXPECT_EQ(a.histogram("lat")->sum(), 13u);
  // Absent reads have defaults, never side effects.
  EXPECT_EQ(a.counter("nope"), 0u);
  EXPECT_EQ(a.histogram("nope"), nullptr);
}

// --- JSON export goldens ------------------------------------------------

RunTelemetry GoldenTelemetry() {
  RunTelemetry t;
  t.metrics.AddCounter("pairs.candidates", 3);
  t.metrics.SetGauge("time.stage.match_seconds", 0.5);
  t.metrics.SetInfo("plan.fingerprint", "0xdeadbeef");
  LogHistogram* h = t.metrics.MutableHistogram("decisions.similarity_micros");
  h->Record(0);
  h->Record(5);
  h->Record(1000000);
  TelemetrySpan* drain = t.root.AddChild("drain");
  drain->counts["batches"] = 2;
  return t;
}

constexpr char kGoldenJson[] = R"({
  "schema": "pdd.telemetry.v1",
  "counters": {
    "pairs.candidates": 3
  },
  "gauges": {
    "time.stage.match_seconds": 0.5
  },
  "histograms": {
    "decisions.similarity_micros": {
      "count": 3,
      "max": 1000000,
      "min": 0,
      "p50": 7,
      "p95": 1048575,
      "p99": 1048575,
      "sum": 1000005,
      "buckets": [[0, 1], [7, 1], [1048575, 1]]
    }
  },
  "info": {
    "plan.fingerprint": "0xdeadbeef"
  },
  "spans": [
    {
      "name": "run",
      "seconds": 0,
      "counts": {},
      "children": [
        {
          "name": "drain",
          "seconds": 0,
          "counts": {
            "batches": 2
          },
          "children": []
        }
      ]
    }
  ]
}
)";

constexpr char kGoldenIdentityJson[] = R"({
  "schema": "pdd.telemetry.v1",
  "counters": {
    "pairs.candidates": 3
  },
  "gauges": {},
  "histograms": {
    "decisions.similarity_micros": {
      "count": 3,
      "max": 1000000,
      "min": 0,
      "p50": 7,
      "p95": 1048575,
      "p99": 1048575,
      "sum": 1000005,
      "buckets": [[0, 1], [7, 1], [1048575, 1]]
    }
  },
  "info": {
    "plan.fingerprint": "0xdeadbeef"
  }
}
)";

TEST(TelemetryExportTest, JsonGolden) {
  EXPECT_EQ(TelemetryToJson(GoldenTelemetry()), kGoldenJson);
}

TEST(TelemetryExportTest, IdentityJsonDropsNondeterministicNamespaces) {
  EXPECT_EQ(IdentityMetricsJson(GoldenTelemetry()), kGoldenIdentityJson);
}

TEST(TelemetryExportTest, PrometheusExposition) {
  std::string prom = TelemetryToPrometheus(GoldenTelemetry());
  EXPECT_NE(prom.find("# TYPE pdd_pairs_candidates counter\n"
                      "pdd_pairs_candidates 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE pdd_time_stage_match_seconds gauge\n"
                      "pdd_time_stage_match_seconds 0.5\n"),
            std::string::npos);
  // Histogram buckets are cumulative and close with +Inf == _count.
  EXPECT_NE(prom.find("pdd_decisions_similarity_micros_bucket"
                      "{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("pdd_decisions_similarity_micros_bucket"
                      "{le=\"1048575\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("pdd_decisions_similarity_micros_bucket"
                      "{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("pdd_decisions_similarity_micros_count 3\n"),
            std::string::npos);
  EXPECT_NE(
      prom.find("pdd_info{name=\"plan.fingerprint\",value=\"0xdeadbeef\"} 1\n"),
      std::string::npos);
}

TEST(TelemetryExportTest, JsonRoundTripIsByteStable) {
  std::string exported = TelemetryToJson(GoldenTelemetry());
  Result<RunTelemetry> parsed = ParseRunTelemetryJson(exported);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->metrics, GoldenTelemetry().metrics);
  EXPECT_EQ(parsed->root, GoldenTelemetry().root);
  EXPECT_EQ(TelemetryToJson(*parsed), exported);
}

TEST(TelemetryExportTest, ParserRejectsWrongSchema) {
  EXPECT_FALSE(ParseRunTelemetryJson("{\"schema\": \"pdd.telemetry.v0\"}")
                   .ok());
  EXPECT_FALSE(ParseRunTelemetryJson("{}").ok());
  EXPECT_FALSE(ParseRunTelemetryJson("not json").ok());
}

TEST(JsonTest, LargeIntegersSurviveVerbatim) {
  // uint64 counters beyond 2^53 must not round through double.
  Result<JsonValue> doc = ParseJson("{\"v\": 18446744073709551615}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("v")->ToUint64(), UINT64_MAX);
}

// --- spans --------------------------------------------------------------

TEST(TelemetrySpanTest, PathLookup) {
  RunTelemetry t;
  TelemetrySpan* drain = t.root.AddChild("drain");
  drain->AddChild("shard.0")->counts["batches"] = 4;
  drain->AddChild("shard.1");
  ASSERT_NE(t.root.Find("drain/shard.0"), nullptr);
  EXPECT_EQ(t.root.Find("drain/shard.0")->counts.at("batches"), 4u);
  EXPECT_EQ(t.root.Find("drain/shard.2"), nullptr);
  EXPECT_EQ(t.root.Find("nope"), nullptr);
}

// --- executor integration -----------------------------------------------

GeneratedData UncertainPersons(size_t entities = 40) {
  PersonGenOptions gen;
  gen.num_entities = entities;
  gen.duplicate_rate = 0.6;
  gen.uncertainty.value_uncertainty_prob = 0.4;
  gen.uncertainty.xtuple_alternative_prob = 0.3;
  gen.seed = 80808;
  return GeneratePersons(gen);
}

DetectorConfig PersonConfig() {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  return config;
}

struct RunShape {
  const char* label;
  size_t workers = 0;
  size_t batch_size = 256;
  size_t shards = 1;
  bool cached = false;
};

TEST(RunTelemetryTest, IdentityMetricsBitIdenticalAcrossRunShapes) {
  GeneratedData data = UncertainPersons();
  const RunShape shapes[] = {
      {"serial"},
      {"pooled", /*workers=*/4},
      {"tiny-batch", /*workers=*/0, /*batch_size=*/2},
      {"sharded", /*workers=*/4, /*batch_size=*/256, /*shards=*/3},
      {"cached", /*workers=*/0, /*batch_size=*/256, /*shards=*/1,
       /*cached=*/true},
  };
  std::string baseline;
  for (const RunShape& shape : shapes) {
    DetectorConfig config = PersonConfig();
    config.workers = shape.workers;
    config.batch_size = shape.batch_size;
    auto detector = DuplicateDetector::Make(config, PersonSchema());
    ASSERT_TRUE(detector.ok()) << shape.label;
    if (shape.shards > 1) {
      detector->set_shard_options({shape.shards, ShardStrategy::kAuto});
    }
    if (shape.cached) {
      detector->set_cache(std::make_shared<ShardedDecisionCache>());
    }
    auto result = detector->Run(data.relation);
    ASSERT_TRUE(result.ok()) << shape.label;
    ASSERT_NE(result->telemetry, nullptr) << shape.label;
    std::string identity = IdentityMetricsJson(*result->telemetry);
    if (baseline.empty()) {
      baseline = identity;
      EXPECT_NE(baseline.find("\"pairs.candidates\""), std::string::npos);
      EXPECT_NE(baseline.find("\"decisions.similarity_micros\""),
                std::string::npos);
    } else {
      EXPECT_EQ(identity, baseline) << shape.label;
    }
  }
}

TEST(RunTelemetryTest, StatStructsAreViewsOverTheRegistry) {
  GeneratedData data = UncertainPersons(25);
  DetectorConfig config = PersonConfig();
  auto detector = DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(detector.ok());
  detector->set_cache(std::make_shared<ShardedDecisionCache>());
  detector->set_shard_options({2, ShardStrategy::kAuto});
  detector->set_collect_stage_timings(true);
  auto result = detector->Run(data.relation);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->telemetry, nullptr);
  const RunTelemetry& t = *result->telemetry;

  // The struct fields the executor returns ARE the view projections.
  StageTimings timings = StageTimingsView(t);
  EXPECT_EQ(result->stage_timings.match_seconds, timings.match_seconds);
  EXPECT_EQ(result->stage_timings.TotalSeconds(), timings.TotalSeconds());
  ASSERT_TRUE(result->cache_stats.has_value());
  std::optional<CacheRunStats> cache = CacheRunStatsView(t);
  ASSERT_TRUE(cache.has_value());
  EXPECT_EQ(result->cache_stats->lookups, cache->lookups);
  EXPECT_EQ(result->cache_stats->inserts, cache->inserts);
  StreamRunStats stream = StreamRunStatsView(t);
  EXPECT_EQ(result->stream_stats.batches, stream.batches);
  ASSERT_EQ(stream.per_shard.size(), 2u);
  EXPECT_EQ(result->stream_stats.per_shard[1].batches,
            stream.per_shard[1].batches);

  // And the registry agrees with the result's own counts.
  EXPECT_EQ(t.metrics.counter(kMetricCandidatePairs),
            result->candidate_count);
  EXPECT_EQ(t.metrics.counter(kMetricDecisions), result->decisions.size());
  const LogHistogram* sim =
      t.metrics.histogram(kMetricSimilarityMicros);
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->count(), result->decisions.size());
  // Span tree: generate before drain, worker + shard children present.
  ASSERT_GE(t.root.children.size(), 2u);
  EXPECT_EQ(t.root.children[0].name, "generate");
  EXPECT_EQ(t.root.children[1].name, "drain");
  EXPECT_NE(t.root.Find("drain/shard.1"), nullptr);
  EXPECT_NE(t.root.Find("drain/worker.0"), nullptr);
}

TEST(RunTelemetryTest, HandAssembledResultsBridgeThroughTelemetryFromResult) {
  DetectionResult result;
  result.candidate_count = 2;
  result.total_pairs = 10;
  result.decisions.push_back({"a", "b", 0, 1, 0.9, MatchClass::kMatch});
  result.decisions.push_back({"c", "d", 2, 3, 0.2, MatchClass::kUnmatch});
  RunTelemetry t = TelemetryFromResult(result);
  EXPECT_EQ(t.metrics.counter(kMetricCandidatePairs), 2u);
  EXPECT_EQ(t.metrics.counter(kMetricMatches), 1u);
  EXPECT_EQ(t.metrics.counter(kMetricUnmatches), 1u);
  EXPECT_EQ(t.metrics.info(kInfoTimings), "disabled");
  // No cache attached -> no cache view.
  EXPECT_FALSE(CacheRunStatsView(t).has_value());
}

// --- stats report rendering ---------------------------------------------

TEST(ExecutionStatsReportTest, DisabledTimingsRenderDisabledNotZeroRows) {
  GeneratedData data = UncertainPersons(20);
  DetectorConfig config = PersonConfig();
  auto detector = DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(detector.ok());
  auto untimed = detector->Run(data.relation);
  ASSERT_TRUE(untimed.ok());
  std::string report = ExecutionStatsReport(*untimed);
  // The regression this guards: an untimed run must say so instead of
  // rendering a table of misleading 0-second stage rows.
  EXPECT_NE(report.find("## Stage timings\n\n(disabled)\n"),
            std::string::npos);
  EXPECT_EQ(report.find("| total |"), std::string::npos);

  detector->set_collect_stage_timings(true);
  auto timed = detector->Run(data.relation);
  ASSERT_TRUE(timed.ok());
  EXPECT_EQ(ExecutionStatsReport(*timed).find("(disabled)"),
            std::string::npos);
}

TEST(ExecutionStatsReportTest, StreamDiagnosticsRenderFromRegistry) {
  RunTelemetry t;
  t.metrics.SetCounter(kMetricCandidatePairs, 732);
  t.metrics.SetCounter(kMetricStreamBatches, 3);
  t.metrics.SetCounter(kMetricStreamHighWater, 260);
  t.metrics.SetInfo("exec.reduction", "snm_certain_keys");
  t.metrics.SetInfo("exec.streaming", "native");
  TelemetrySpan* drain = t.root.AddChild("drain");
  TelemetrySpan* shard = drain->AddChild("shard.0");
  shard->counts["batches"] = 3;
  shard->counts["live_high_water"] = 260;
  EXPECT_EQ(RenderStreamDiagnostics(t),
            "candidate stream: reduction snm_certain_keys "
            "(native streaming), 732 candidates in 3 batches, "
            "live high-water 260 candidates\n"
            "  shard 0: 3 batches, live high-water 260 candidates\n");
}

}  // namespace
}  // namespace pdd
