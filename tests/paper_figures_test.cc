// Integration tests asserting every worked number and ordering of the
// paper's 14 figures (the paper's de-facto evaluation). Each test cites
// the figure or section it reproduces.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "decision/rule_parser.h"
#include "derive/decision_based.h"
#include "derive/similarity_based.h"
#include "match/attribute_matcher.h"
#include "pdb/conditioning.h"
#include "pdb/possible_worlds.h"
#include "reduction/blocking_alternatives.h"
#include "reduction/snm_certain_keys.h"
#include "reduction/snm_multipass_worlds.h"
#include "reduction/snm_sorting_alternatives.h"
#include "reduction/snm_uncertain_ranking.h"
#include "sim/edit_distance.h"

namespace pdd {
namespace {

const Comparator& Hamming() {
  static NormalizedHammingComparator cmp;
  return cmp;
}

// Fig. 1: the identification rule parses and behaves as described.
TEST(PaperFigures, Fig1IdentificationRule) {
  Schema schema = PaperSchema();
  Result<IdentificationRule> parsed = ParseRule(
      "IF name > 0.8 AND job > 0.5 THEN DUPLICATES WITH CERTAINTY 0.8",
      schema);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->conditions.size(), PaperRule().conditions.size());
  EXPECT_DOUBLE_EQ(parsed->certainty, 0.8);
  // The paper's worked comparison vector (0.9, 0.59) fires the rule.
  EXPECT_TRUE(parsed->Fires(ComparisonVector({0.9, 0.59})));
}

// Fig. 2: classification of the matching weight R against Tλ and Tμ.
TEST(PaperFigures, Fig2ThresholdBands) {
  Thresholds t{0.4, 0.7};
  EXPECT_EQ(Classify(0.39, t), MatchClass::kUnmatch);
  EXPECT_EQ(Classify(0.55, t), MatchClass::kPossible);
  EXPECT_EQ(Classify(0.71, t), MatchClass::kMatch);
}

// Fig. 3 / Section IV-A: the two-step decision model on (t11, t22).
TEST(PaperFigures, Fig3TwoStepDecisionModel) {
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  TupleMatcher matcher =
      *TupleMatcher::Make(PaperSchema(), {&Hamming(), &Hamming()});
  ComparisonVector c = matcher.Compare(r1.tuple(0), r2.tuple(1));
  WeightedSumCombination phi({0.8, 0.2});
  double sim = phi.Combine(c);
  EXPECT_NEAR(sim, 0.8 * 0.9 + 0.2 * (0.2 + 0.7 * 5.0 / 9.0), 1e-12);
  EXPECT_NEAR(sim, 0.838, 0.001);  // paper's rounded value
  EXPECT_EQ(Classify(sim, Thresholds{0.4, 0.7}), MatchClass::kMatch);
}

// Fig. 4 / Section IV-A: attribute value matching worked example.
TEST(PaperFigures, Fig4AttributeValueMatching) {
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  const Tuple& t11 = r1.tuple(0);
  const Tuple& t22 = r2.tuple(1);
  EXPECT_NEAR(ExpectedSimilarity(t11.value(0), t22.value(0), Hamming()), 0.9,
              1e-12);
  EXPECT_NEAR(ExpectedSimilarity(t11.value(1), t22.value(1), Hamming()),
              0.2 + 0.7 * 5.0 / 9.0, 1e-12);
}

// Fig. 5: the x-relations' structure (maybe markers, pattern value).
TEST(PaperFigures, Fig5XRelationStructure) {
  XRelation r3 = BuildR3();
  XRelation r4 = BuildR4();
  EXPECT_FALSE(r3.xtuple(0).is_maybe());  // t31
  EXPECT_TRUE(r3.xtuple(1).is_maybe());   // t32 ?
  EXPECT_FALSE(r4.xtuple(0).is_maybe());  // t41
  EXPECT_TRUE(r4.xtuple(1).is_maybe());   // t42 ?
  EXPECT_TRUE(r4.xtuple(2).is_maybe());   // t43 ?
  EXPECT_NEAR(r3.xtuple(1).existence_probability(), 0.9, 1e-12);
  EXPECT_NEAR(r4.xtuple(2).existence_probability(), 0.8, 1e-12);
}

// Fig. 7: possible worlds of {t32, t42}, P(B), conditional probabilities.
TEST(PaperFigures, Fig7PossibleWorlds) {
  XRelation pair("pair", PaperSchema());
  pair.AppendUnchecked(BuildR3().xtuple(1));
  pair.AppendUnchecked(BuildR4().xtuple(1));
  EXPECT_EQ(CountWorlds(pair), 8u);
  Result<std::vector<World>> worlds = EnumerateWorlds(pair);
  ASSERT_TRUE(worlds.ok());
  ConditionedWorlds conditioned = ConditionOnAllPresent(*worlds);
  EXPECT_NEAR(conditioned.event_probability, 0.72, 1e-12);
  ASSERT_EQ(conditioned.worlds.size(), 3u);
}

// Section IV-B similarity-based derivation: sim(t32, t42) = 7/15.
TEST(PaperFigures, Eq6ExpectedSimilarity) {
  TupleMatcher matcher =
      *TupleMatcher::Make(PaperSchema(), {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.8, 0.2});
  ExpectedSimilarityDerivation theta;
  XTupleDecisionModel model(&matcher, &phi, &theta, Thresholds{0.4, 0.7});
  EXPECT_NEAR(model.Similarity(BuildR3().xtuple(1), BuildR4().xtuple(1)),
              7.0 / 15.0, 1e-12);
}

// Section IV-B decision-based derivation: P(m)=3/9, P(u)=4/9, sim=0.75.
TEST(PaperFigures, Eq7To9MatchingWeight) {
  TupleMatcher matcher =
      *TupleMatcher::Make(PaperSchema(), {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.8, 0.2});
  AlternativePairScores scores = BuildAlternativePairScores(
      BuildR3().xtuple(1), BuildR4().xtuple(1), matcher, phi);
  MatchingMass mass = ComputeMatchingMass(scores, Thresholds{0.4, 0.7});
  EXPECT_NEAR(mass.p_match, 3.0 / 9.0, 1e-12);
  EXPECT_NEAR(mass.p_unmatch, 4.0 / 9.0, 1e-12);
  MatchingWeightDerivation theta(Thresholds{0.4, 0.7});
  EXPECT_NEAR(theta.Derive(scores), 0.75, 1e-12);
}

// Fig. 8/9: multi-pass sorted orders in worlds I1 and I2 of R34.
TEST(PaperFigures, Fig9MultipassSortOrders) {
  XRelation r34 = BuildR34();
  SnmMultipassOptions options;
  options.window = 2;
  SnmMultipassWorlds snm(PaperSortingKey(), options);
  std::vector<KeyedEntry> i1 =
      snm.SortedEntriesForWorld(World{{0, 0, 0, 0, 1}, 0.0}, r34);
  std::vector<std::string> i1_keys, i1_ids;
  for (const KeyedEntry& e : i1) {
    i1_keys.push_back(e.key);
    i1_ids.push_back(r34.xtuple(e.tuple).id());
  }
  // Note: the paper's Fig. 9 prints "Seapil" for t43, inconsistent with
  // its own key definition (3+2 chars); the correct key is "Seapi".
  EXPECT_EQ(i1_keys, (std::vector<std::string>{"Johpi", "Johpi", "Seapi",
                                               "Timme", "Tomme"}));
  EXPECT_EQ(i1_ids,
            (std::vector<std::string>{"t31", "t41", "t43", "t32", "t42"}));
  std::vector<KeyedEntry> i2 =
      snm.SortedEntriesForWorld(World{{1, 1, 0, 0, 0}, 0.0}, r34);
  std::vector<std::string> i2_ids;
  for (const KeyedEntry& e : i2) i2_ids.push_back(r34.xtuple(e.tuple).id());
  EXPECT_EQ(i2_ids,
            (std::vector<std::string>{"t32", "t43", "t31", "t41", "t42"}));
}

// Fig. 10: certain keys via the most probable alternative.
TEST(PaperFigures, Fig10CertainKeySorting) {
  SnmCertainKeys snm(PaperSortingKey(), SnmCertainKeyOptions{});
  std::vector<KeyedEntry> entries = snm.SortedEntries(BuildR34());
  std::vector<std::string> keys;
  for (const KeyedEntry& e : entries) keys.push_back(e.key);
  EXPECT_EQ(keys, (std::vector<std::string>{"Jimba", "Johpi", "Johpi",
                                            "Seapi", "Tomme"}));
}

// Fig. 11 + Fig. 12: sorting alternatives, omission rule, five matchings.
TEST(PaperFigures, Fig11Fig12SortingAlternatives) {
  SnmAlternativesOptions options;
  options.window = 2;
  SnmSortingAlternatives snm(PaperSortingKey(), options);
  XRelation r34 = BuildR34();
  EXPECT_EQ(snm.SortedEntries(r34).size(), 9u);
  EXPECT_EQ(snm.SurvivingEntries(r34).size(), 7u);
  Result<std::vector<CandidatePair>> pairs = snm.Generate(r34);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 5u);  // "five matchings are applied"
}

// Fig. 13: ranking by uncertain keys orders R34 as t32,t31,t41,t43,t42.
TEST(PaperFigures, Fig13UncertainKeyRanking) {
  SnmUncertainRanking snm(PaperSortingKey(), SnmRankingOptions{});
  std::vector<size_t> order = snm.RankedOrder(BuildR34());
  XRelation r34 = BuildR34();
  std::vector<std::string> ids;
  for (size_t i : order) ids.push_back(r34.xtuple(i).id());
  EXPECT_EQ(ids,
            (std::vector<std::string>{"t32", "t31", "t41", "t43", "t42"}));
}

// Fig. 14: blocking with alternative keys yields six blocks and exactly
// three matchings.
TEST(PaperFigures, Fig14AlternativeKeyBlocking) {
  BlockingAlternatives blocking(PaperBlockingKey());
  XRelation r34 = BuildR34();
  EXPECT_EQ(blocking.Blocks(r34).size(), 6u);
  Result<std::vector<CandidatePair>> pairs = blocking.Generate(r34);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 3u);
}

// Section IV's guiding principle: equal persons with different
// membership probabilities still match (the adults/jobless example).
TEST(PaperFigures, MembershipExampleFromSection4) {
  // A 34-year-old person: certainly in "adults" (p=1.0), in "employed"
  // only with p=0.1. Same attribute values -> similarity 1 regardless.
  Schema schema = Schema::Strings({"name", "age"});
  NormalizedHammingComparator hamming;
  TupleMatcher matcher =
      *TupleMatcher::Make(schema, {&hamming, &hamming});
  WeightedSumCombination phi({0.5, 0.5});
  ExpectedSimilarityDerivation theta;
  XTupleDecisionModel model(&matcher, &phi, &theta, Thresholds{0.4, 0.7});
  XTuple adult("a", {{{Value::Certain("Ann"), Value::Certain("34")}, 1.0}});
  XTuple employed("e",
                  {{{Value::Certain("Ann"), Value::Certain("34")}, 0.1}});
  XPairDecision decision = model.Decide(adult, employed);
  EXPECT_NEAR(decision.similarity, 1.0, 1e-12);
  EXPECT_EQ(decision.match_class, MatchClass::kMatch);
}

}  // namespace
}  // namespace pdd
