// Tests for the staged pipeline layer: DetectionPlan compilation,
// CandidateStream scenarios and the serial/parallel StageExecutor.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "datagen/person_generator.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/detection_plan.h"
#include "pipeline/detection_result.h"
#include "pipeline/stage_executor.h"

namespace pdd {
namespace {

DetectorConfig PersonConfig() {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  config.final_thresholds = {0.4, 0.7};
  // CMake registers a second ctest pass of this binary with
  // PDD_BATCH_SIZE=2 so every Run() path crosses batch boundaries
  // constantly (streaming refill edges, incremental filter re-pulls),
  // a third with PDD_SHARDS=3 so every Run() drains through the
  // sharded stream's per-shard sources and deterministic merge, and a
  // fourth with PDD_WORKERS=4 so every Run() decides on a thread pool
  // (the TSan CI job leans on this one: the pooled drain is the main
  // data-race surface).
  if (const char* batch = std::getenv("PDD_BATCH_SIZE")) {
    long parsed = std::strtol(batch, nullptr, 10);
    if (parsed > 0) config.batch_size = static_cast<size_t>(parsed);
  }
  if (const char* shards = std::getenv("PDD_SHARDS")) {
    long parsed = std::strtol(shards, nullptr, 10);
    if (parsed > 0) config.shard_count = static_cast<size_t>(parsed);
  }
  if (const char* workers = std::getenv("PDD_WORKERS")) {
    long parsed = std::strtol(workers, nullptr, 10);
    if (parsed > 0) config.workers = static_cast<size_t>(parsed);
  }
  return config;
}

GeneratedData SeededPersons(size_t entities = 60) {
  PersonGenOptions options;
  options.num_entities = entities;
  options.duplicate_rate = 0.8;
  options.seed = 20100301;  // fixed: results must be reproducible
  return GeneratePersons(options);
}

void ExpectIdenticalResults(const DetectionResult& a,
                            const DetectionResult& b) {
  EXPECT_EQ(a.candidate_count, b.candidate_count);
  EXPECT_EQ(a.total_pairs, b.total_pairs);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    const PairDecisionRecord& ra = a.decisions[i];
    const PairDecisionRecord& rb = b.decisions[i];
    EXPECT_EQ(ra.id1, rb.id1) << "record " << i;
    EXPECT_EQ(ra.id2, rb.id2) << "record " << i;
    EXPECT_EQ(ra.index1, rb.index1) << "record " << i;
    EXPECT_EQ(ra.index2, rb.index2) << "record " << i;
    // Bit-identical, not approximately equal: the parallel executor must
    // evaluate exactly the same arithmetic per pair.
    EXPECT_EQ(ra.similarity, rb.similarity) << "record " << i;
    EXPECT_EQ(ra.match_class, rb.match_class) << "record " << i;
  }
}

TEST(DetectionPlanTest, CompileResolvesStagesAndComponents) {
  Result<std::shared_ptr<const DetectionPlan>> plan =
      DetectionPlan::Compile(PersonConfig(), PersonSchema());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->stages().size(), 4u);
  EXPECT_EQ((*plan)->stages()[0], PipelineStage::kMatch);
  EXPECT_EQ((*plan)->stages()[3], PipelineStage::kClassify);
  EXPECT_STREQ(PipelineStageName(PipelineStage::kCombine), "combine");
}

TEST(DetectionPlanTest, StagedDecisionMatchesModel) {
  Result<std::shared_ptr<const DetectionPlan>> plan =
      DetectionPlan::Compile(PersonConfig(), PersonSchema());
  ASSERT_TRUE(plan.ok());
  GeneratedData data = SeededPersons(10);
  for (size_t i = 1; i < data.relation.size(); ++i) {
    const XTuple& t1 = data.relation.xtuple(0);
    const XTuple& t2 = data.relation.xtuple(i);
    XPairDecision staged = (*plan)->DecidePair(t1, t2);
    EXPECT_EQ(staged.similarity, (*plan)->model().Similarity(t1, t2));
    EXPECT_EQ(staged.match_class,
              (*plan)->model().Decide(t1, t2).match_class);
  }
}

TEST(StageExecutorTest, ParallelIsIdenticalToSerial) {
  GeneratedData data = SeededPersons();
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok()) << detector.status().ToString();
  Result<DetectionResult> serial = detector->Run(data.relation);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial->decisions.size(), 0u);
  for (size_t workers : {1u, 2u, 4u}) {
    for (size_t batch_size : {1u, 7u, 256u}) {
      Result<std::unique_ptr<CandidateStream>> stream =
          MakeFullStream(detector->plan(), data.relation);
      ASSERT_TRUE(stream.ok());
      StageExecutorOptions options;
      options.workers = workers;
      options.batch_size = batch_size;
      StageExecutor executor(detector->shared_plan(), options);
      Result<DetectionResult> parallel = executor.Execute(**stream);
      ASSERT_TRUE(parallel.ok())
          << "workers=" << workers << " batch=" << batch_size;
      ExpectIdenticalResults(*serial, *parallel);
    }
  }
}

TEST(StageExecutorTest, WorkersConfiguredOnDetectorMatchSerial) {
  GeneratedData data = SeededPersons();
  DetectorConfig serial_config = PersonConfig();
  DetectorConfig parallel_config = PersonConfig();
  parallel_config.workers = 4;
  parallel_config.batch_size = 32;
  Result<DuplicateDetector> serial =
      DuplicateDetector::Make(serial_config, PersonSchema());
  Result<DuplicateDetector> parallel =
      DuplicateDetector::Make(parallel_config, PersonSchema());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  Result<DetectionResult> a = serial->Run(data.relation);
  Result<DetectionResult> b = parallel->Run(data.relation);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdenticalResults(*a, *b);
}

TEST(StageExecutorTest, RejectsZeroBatchSize) {
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  GeneratedData data = SeededPersons(5);
  Result<std::unique_ptr<CandidateStream>> stream =
      MakeFullStream(detector->plan(), data.relation);
  ASSERT_TRUE(stream.ok());
  StageExecutorOptions zero_batch;
  zero_batch.batch_size = 0;
  StageExecutor executor(detector->shared_plan(), zero_batch);
  EXPECT_FALSE(executor.Execute(**stream).ok());
}

TEST(CandidateStreamTest, BatchOrderIsIndependentOfBatchSize) {
  GeneratedData data = SeededPersons(20);
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<std::unique_ptr<CandidateStream>> stream =
      MakeFullStream(detector->plan(), data.relation);
  ASSERT_TRUE(stream.ok());
  std::vector<CandidatePair> all;
  std::vector<CandidatePair> batch;
  while ((*stream)->NextBatch(17, &batch) > 0) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  EXPECT_GT(all.size(), 0u);
  (*stream)->Reset();
  std::vector<CandidatePair> again;
  while ((*stream)->NextBatch(97, &batch) > 0) {
    again.insert(again.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(all, again);
}

// Regression: GeneratorCandidateStream::Reset() must re-open the
// underlying PairBatchSource — a drained pull-based stream would
// otherwise stay empty, breaking cache-warm re-runs and pddcli-style
// double drains.
TEST(CandidateStreamTest, ResetReopensThePullSource) {
  GeneratedData data = SeededPersons(25);
  DetectorConfig config = PersonConfig();
  config.reduction = ReductionMethod::kSnmCertainKeys;  // native streaming
  config.window = 4;
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<std::unique_ptr<CandidateStream>> stream =
      MakeFullStream(detector->plan(), data.relation);
  ASSERT_TRUE(stream.ok());
  StageExecutorOptions batch32;
  batch32.batch_size = 32;
  StageExecutor executor(detector->shared_plan(), batch32);
  Result<DetectionResult> first = executor.Execute(**stream);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->decisions.size(), 0u);
  // Drained: without Reset the stream serves nothing.
  std::vector<CandidatePair> batch;
  EXPECT_EQ((*stream)->NextBatch(8, &batch), 0u);
  (*stream)->Reset();
  Result<DetectionResult> second = executor.Execute(**stream);
  ASSERT_TRUE(second.ok());
  ExpectIdenticalResults(*first, *second);
}

TEST(CandidateStreamTest, IncrementalExaminesExactlyCrossingPairs) {
  GeneratedData existing = SeededPersons(30);
  // Additions with distinct ids (different seed and name prefix via a
  // fresh generation run; ids are remapped below to guarantee
  // uniqueness).
  PersonGenOptions options;
  options.num_entities = 10;
  options.seed = 77;
  GeneratedData additions_data = GeneratePersons(options);
  XRelation additions("additions", additions_data.relation.schema());
  size_t n = 0;
  for (const XTuple& t : additions_data.relation.xtuples()) {
    XTuple renamed("new" + std::to_string(n++), t.alternatives());
    ASSERT_TRUE(additions.Append(std::move(renamed)).ok());
  }
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  const size_t base_count = existing.relation.size();
  const size_t new_count = additions.size();

  Result<std::unique_ptr<CandidateStream>> stream =
      MakeIncrementalStream(detector->plan(), existing.relation, additions);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ((*stream)->total_pairs(),
            base_count * new_count + new_count * (new_count - 1) / 2);

  // Every streamed candidate crosses into the additions...
  std::vector<CandidatePair> streamed;
  std::vector<CandidatePair> batch;
  while ((*stream)->NextBatch(64, &batch) > 0) {
    streamed.insert(streamed.end(), batch.begin(), batch.end());
  }
  for (const CandidatePair& pair : streamed) {
    EXPECT_GE(pair.second, base_count)
        << "intra-existing pair (" << pair.first << "," << pair.second
        << ") leaked into the incremental stream";
  }
  // ...and the stream is exactly the crossing subset of the full-run
  // candidates over the union.
  Result<XRelation> merged =
      XRelation::Union(existing.relation, additions, "merged");
  ASSERT_TRUE(merged.ok());
  Result<std::unique_ptr<CandidateStream>> full =
      MakeFullStream(detector->plan(), *merged);
  ASSERT_TRUE(full.ok());
  std::vector<CandidatePair> expected;
  while ((*full)->NextBatch(64, &batch) > 0) {
    for (const CandidatePair& pair : batch) {
      if (pair.second >= base_count) expected.push_back(pair);
    }
  }
  EXPECT_EQ(streamed, expected);

  // RunIncremental routes through the same stream: decisions agree.
  Result<DetectionResult> result =
      detector->RunIncremental(existing.relation, additions);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->decisions.size(), streamed.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(result->decisions[i].index1, streamed[i].first);
    EXPECT_EQ(result->decisions[i].index2, streamed[i].second);
  }
}

TEST(DetectionResultTest, ClassFiltersShareOneHelper) {
  DetectionResult result;
  result.decisions = {
      {"a", "b", 0, 1, 0.9, MatchClass::kMatch},
      {"a", "c", 0, 2, 0.5, MatchClass::kPossible},
      {"b", "c", 1, 2, 0.1, MatchClass::kUnmatch},
      {"a", "d", 0, 3, 0.8, MatchClass::kMatch},
  };
  EXPECT_EQ(result.CountClass(MatchClass::kMatch), 2u);
  EXPECT_EQ(result.Matches(),
            (std::vector<IdPair>{MakeIdPair("a", "b"), MakeIdPair("a", "d")}));
  EXPECT_EQ(result.PossibleMatches(),
            (std::vector<IdPair>{MakeIdPair("a", "c")}));
  EXPECT_EQ(result.Unmatches(),
            (std::vector<IdPair>{MakeIdPair("b", "c")}));
  EXPECT_EQ(result.RecordsOfClass(MatchClass::kPossible).size(), 1u);
}

TEST(RunOnSourcesTest, RoutesThroughUnionStream) {
  PersonGenOptions options;
  options.num_entities = 25;
  options.seed = 4242;
  GeneratedSources sources = GeneratePersonSources(options);
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(PersonConfig(), PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> via_detector =
      detector->RunOnSources(sources.source1, sources.source2);
  ASSERT_TRUE(via_detector.ok());
  Result<std::unique_ptr<CandidateStream>> stream =
      MakeUnionStream(detector->plan(), sources.source1, sources.source2);
  ASSERT_TRUE(stream.ok());
  Result<DetectionResult> via_stream = detector->RunStream(**stream);
  ASSERT_TRUE(via_stream.ok());
  ExpectIdenticalResults(*via_detector, *via_stream);
}

}  // namespace
}  // namespace pdd
