// Tests of the declarative plan layer (src/plan/): ParamMap typing and
// unknown-key rejection, PlanSpec parse/print round-trips, fingerprint
// stability, the ComponentRegistry (full name coverage, nearest-match
// errors), DetectorConfig ↔ PlanSpec translation, spec-compiled plans
// matching config-compiled plans, and the Validate() pruning-soundness
// checks.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "plan/plan_builder.h"
#include "plan/plan_spec.h"
#include "plan/registry.h"
#include "plan/translate.h"
#include "sim/registry.h"
#include "util/string_util.h"

namespace pdd {
namespace {

// ----------------------------------------------------------- ParamMap

TEST(ParamMapTest, TypedGetters) {
  ParamMap params;
  params.Set("name", "canopy");
  params.SetDouble("loose", 0.7);
  params.SetSize("window", 5);
  params.SetBool("conditioned", true);
  EXPECT_EQ(params.GetString("name", "full"), "canopy");
  EXPECT_EQ(params.GetString("absent", "full"), "full");
  EXPECT_DOUBLE_EQ(*params.GetDouble("loose", 0.0), 0.7);
  EXPECT_DOUBLE_EQ(*params.GetDouble("absent", 0.25), 0.25);
  EXPECT_EQ(*params.GetSize("window", 3), 5u);
  EXPECT_TRUE(*params.GetBool("conditioned", false));
}

TEST(ParamMapTest, MalformedValuesAreInvalidArgument) {
  ParamMap params;
  params.Set("loose", "not-a-number");
  params.Set("window", "2.5");
  params.Set("flag", "maybe");
  EXPECT_FALSE(params.GetDouble("loose", 0.0).ok());
  EXPECT_FALSE(params.GetSize("window", 3).ok());
  EXPECT_FALSE(params.GetBool("flag", false).ok());
}

TEST(ParamMapTest, UnknownKeyRejection) {
  ParamMap params;
  params.Set("reduction.window", "5");
  params.Set("reduction.windwo", "5");
  params.ResetConsumption();
  (void)params.GetSize("reduction.window", 3);
  Status status = params.ExpectFullyConsumed("test spec");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("reduction.windwo"), std::string::npos);
  EXPECT_EQ(status.message().find("reduction.window,"), std::string::npos);
}

// ----------------------------------------------------------- PlanSpec

TEST(PlanSpecTest, ParsePrintRoundTripIsBitIdentical) {
  const char* text =
      "# a comment and a blank line\n"
      "\n"
      "key = name:3,job:2\n"
      "reduction = canopy\n"
      "reduction.loose = 0.80\n";
  Result<PlanSpec> spec = PlanSpec::Parse(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::string canonical = spec->ToText();
  Result<PlanSpec> reparsed = PlanSpec::Parse(canonical);
  ASSERT_TRUE(reparsed.ok());
  // Bit-identical round trip, values verbatim ("0.80" stays "0.80").
  EXPECT_EQ(reparsed->ToText(), canonical);
  EXPECT_NE(canonical.find("reduction.loose = 0.80"), std::string::npos);
}

TEST(PlanSpecTest, EscapingRoundTripsNewlines) {
  PlanSpec spec;
  spec.params().Set("combination.rules",
                    "IF name > 0.8 THEN DUPLICATES\nIF job > 0.9 THEN "
                    "DUPLICATES WITH CERTAINTY 0.5\n");
  spec.params().Set("path", "a\\b");
  Result<PlanSpec> reparsed = PlanSpec::Parse(spec.ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(*reparsed, spec);
}

TEST(PlanSpecTest, EdgeWhitespaceInValuesRoundTrips) {
  PlanSpec spec;
  spec.params().Set("a", " leading");
  spec.params().Set("b", "trailing  ");
  spec.params().Set("c", " ");
  spec.params().Set("d", "tab\tinside\tand edge\t");
  Result<PlanSpec> reparsed = PlanSpec::Parse(spec.ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(*reparsed, spec);
  EXPECT_EQ(reparsed->Fingerprint(), spec.Fingerprint());
}

TEST(PlanSpecTest, DuplicateKeyIsParseError) {
  Result<PlanSpec> spec = PlanSpec::Parse("a = 1\na = 2\n");
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kParseError);
}

TEST(PlanSpecTest, FingerprintInvariantToLineOrder) {
  std::string text =
      "key = name:3,job:2\n"
      "reduction = snm_certain_keys\n"
      "reduction.window = 4\n"
      "classify.t_mu = 0.7\n";
  std::vector<std::string> lines = Split(text, '\n');
  std::reverse(lines.begin(), lines.end());
  Result<PlanSpec> forward = PlanSpec::Parse(text);
  Result<PlanSpec> backward = PlanSpec::Parse(Join(lines, "\n"));
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(forward->Fingerprint(), backward->Fingerprint());
}

TEST(PlanSpecTest, FingerprintChangesWhenAnyParameterChanges) {
  PlanSpec base = PlanBuilder()
                      .AddKey("name", 3)
                      .AddKey("job", 2)
                      .Reduction("snm_certain_keys")
                      .Set("reduction.window", 4)
                      .Weights({0.8, 0.2})
                      .Thresholds(0.4, 0.7)
                      .Build();
  uint64_t fingerprint = base.Fingerprint();
  for (const auto& [key, value] : base.params().entries()) {
    PlanSpec mutated = base;
    mutated.params().Set(key, value + "x");
    EXPECT_NE(mutated.Fingerprint(), fingerprint)
        << "changing '" << key << "' did not change the fingerprint";
  }
  // Removing a key changes it too.
  PlanSpec removed = base;
  removed.params().Erase("reduction.window");
  EXPECT_NE(removed.Fingerprint(), fingerprint);
}

// ---------------------------------------------------- ComponentRegistry

TEST(RegistryTest, AllTwelveReductionsRegistered) {
  std::vector<std::string> names =
      ComponentRegistry::Global().ReductionNames();
  EXPECT_EQ(names.size(), 12u);
  for (int m = 0; m <= 11; ++m) {
    const char* name = ReductionMethodName(static_cast<ReductionMethod>(m));
    auto entry = ComponentRegistry::Global().FindReduction(name);
    ASSERT_TRUE(entry.ok()) << name;
    EXPECT_EQ((*entry)->method, static_cast<ReductionMethod>(m));
  }
}

TEST(RegistryTest, AllCombinationsAndDerivationsRegistered) {
  EXPECT_EQ(ComponentRegistry::Global().CombinationNames().size(), 3u);
  EXPECT_EQ(ComponentRegistry::Global().DerivationNames().size(), 6u);
  for (int k = 0; k <= 2; ++k) {
    const char* name = CombinationKindName(static_cast<CombinationKind>(k));
    EXPECT_TRUE(ComponentRegistry::Global().FindCombination(name).ok())
        << name;
  }
  for (int k = 0; k <= 5; ++k) {
    const char* name = DerivationKindName(static_cast<DerivationKind>(k));
    EXPECT_TRUE(ComponentRegistry::Global().FindDerivation(name).ok())
        << name;
  }
}

TEST(RegistryTest, UnknownNameSuggestsNearestMatch) {
  auto entry =
      ComponentRegistry::Global().FindReduction("snm_certan_keys");
  ASSERT_FALSE(entry.ok());
  const std::string& message = entry.status().message();
  EXPECT_NE(message.find("did you mean 'snm_certain_keys'"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("qgram_index"), std::string::npos) << message;
}

TEST(RegistryTest, ConflictAndRankingVocabularies) {
  EXPECT_TRUE(
      ComponentRegistry::Global().FindConflictStrategy("longest").ok());
  EXPECT_TRUE(
      ComponentRegistry::Global().FindRankingMethod("expected_rank").ok());
  EXPECT_FALSE(ComponentRegistry::Global().FindRankingMethod("positionl").ok());
}

// ------------------------------------- DetectorConfig ↔ PlanSpec

/// Normalization (FromSpec then ToSpec) must be idempotent: the second
/// pass reproduces the first's text bit-identically.
void ExpectNormalizedRoundTrip(const PlanSpec& spec) {
  Result<DetectorConfig> config = DetectorConfig::FromSpec(spec);
  ASSERT_TRUE(config.ok()) << config.status().ToString() << "\n"
                           << spec.ToText();
  std::string first = config->ToSpec().ToText();
  Result<PlanSpec> reparsed = PlanSpec::Parse(first);
  ASSERT_TRUE(reparsed.ok());
  Result<DetectorConfig> again = DetectorConfig::FromSpec(*reparsed);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << first;
  EXPECT_EQ(again->ToSpec().ToText(), first);
}

TEST(TranslateTest, RoundTripAcrossEveryReduction) {
  for (const std::string& name :
       ComponentRegistry::Global().ReductionNames()) {
    ExpectNormalizedRoundTrip(PlanBuilder().Reduction(name).Build());
  }
}

TEST(TranslateTest, RoundTripAcrossEveryCombination) {
  ExpectNormalizedRoundTrip(PlanBuilder()
                                .Combination("weighted_sum")
                                .Weights({0.8, 0.2})
                                .Build());
  ExpectNormalizedRoundTrip(PlanBuilder()
                                .Combination("fellegi_sunter")
                                .Set("combination.fs", "0.9:0.1:0.8,0.85:0.05:0.75")
                                .Set("combination.interpolated", true)
                                .Build());
  ExpectNormalizedRoundTrip(
      PlanBuilder()
          .Combination("rules")
          .Set("combination.rules",
               "IF name > 0.8 AND job > 0.5 THEN DUPLICATES WITH "
               "CERTAINTY 0.8\n")
          .Build());
}

TEST(TranslateTest, RoundTripAcrossEveryDerivation) {
  for (const std::string& name :
       ComponentRegistry::Global().DerivationNames()) {
    PlanBuilder builder;
    builder.Derivation(name);
    // Intermediate thresholds exist only for the decision-based
    // derivations; anywhere else they are (correctly) unknown keys.
    if (name == "matching_weight" || name == "expected_matching") {
      builder.IntermediateThresholds(0.35, 0.65);
    }
    ExpectNormalizedRoundTrip(builder.Build());
  }
}

TEST(TranslateTest, RoundTripWithAllTopLevelFeatures) {
  ExpectNormalizedRoundTrip(PlanBuilder()
                                .AddKey("name", 3)
                                .AddKey("job", 0)
                                .Reduction("canopy")
                                .Set("reduction.loose", 0.75)
                                .Set("reduction.distance", "jaro")
                                .Comparators({"levenshtein", "default"})
                                .Prepare("lower,trim,collapse")
                                .Prune(0.4)
                                .Thresholds(0.4, 0.7)
                                .Build());
}

TEST(TranslateTest, SpecAppliesOverBaseConfig) {
  DetectorConfig base;
  base.key = {{"surname", 4}};
  base.workers = 7;
  PlanSpec spec = PlanBuilder().Set("reduction.window", 9).Build();
  spec.params().Set("reduction", "snm_certain_keys");
  Result<DetectorConfig> merged = DetectorConfig::FromSpec(spec, base);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->reduction, ReductionMethod::kSnmCertainKeys);
  EXPECT_EQ(merged->window, 9u);
  // Untouched base fields survive.
  ASSERT_EQ(merged->key.size(), 1u);
  EXPECT_EQ(merged->key[0].first, "surname");
  EXPECT_EQ(merged->workers, 7u);
}

TEST(TranslateTest, UnknownParameterKeyIsRejected) {
  PlanSpec spec = PlanBuilder().Reduction("full").Build();
  spec.params().Set("reduction.window", "5");  // full has no window
  Result<DetectorConfig> config = DetectorConfig::FromSpec(spec);
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("reduction.window"),
            std::string::npos);
}

TEST(TranslateTest, ExecutorKnobsAcceptedButNotFingerprinted) {
  PlanSpec spec = PlanBuilder().Build();
  spec.params().Set("executor.workers", "4");
  spec.params().Set("executor.batch", "64");
  Result<DetectorConfig> config = DetectorConfig::FromSpec(spec);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->workers, 4u);
  EXPECT_EQ(config->batch_size, 64u);
  // ToSpec does not re-emit them: they do not change decisions.
  EXPECT_FALSE(config->ToSpec().params().Has("executor.workers"));
}

TEST(TranslateTest, UniformPreparationRoundTripsWithAttributeCount) {
  Standardizer standard;
  standard.LowerCase().TrimWhitespace();
  DetectorConfig config;
  config.preparation = DataPreparation::Uniform(standard, 2);
  PlanSpec spec = config.ToSpec();
  EXPECT_EQ(spec.params().GetString("prepare", ""), "lower,trim");
  Result<DetectorConfig> back = DetectorConfig::FromSpec(spec);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(back->preparation.has_value());
  EXPECT_EQ(back->preparation->per_attribute().size(), 2u);
  EXPECT_EQ(back->ToSpec().ToText(), spec.ToText());
}

TEST(TranslateTest, AdaptiveStrategySurvivesUnrelatedOverride) {
  DetectorConfig base;
  base.reduction = ReductionMethod::kSnmAdaptive;
  base.adaptive.strategy = ConflictStrategy::kFirst;
  PlanSpec spec;
  spec.params().Set("reduction.max_window", "20");
  Result<DetectorConfig> merged = DetectorConfig::FromSpec(spec, base);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->adaptive.max_window, 20u);
  EXPECT_EQ(merged->adaptive.strategy, ConflictStrategy::kFirst);
}

TEST(TranslateTest, CustomMarkersAreNotResolvable) {
  PlanSpec spec;
  spec.params().Set("comparators", "custom,hamming");
  EXPECT_FALSE(DetectorConfig::FromSpec(spec).ok());
  PlanSpec prep;
  prep.params().Set("prepare", "custom");
  EXPECT_FALSE(DetectorConfig::FromSpec(prep).ok());
}

TEST(TranslateTest, CustomDistanceComparatorPrintsAsCustom) {
  // A caller-installed comparator instance must not silently alias the
  // registry comparator of the same name on reload.
  ExactComparator tuned;  // name() == "exact", but not the registry one
  DetectorConfig config;
  config.reduction = ReductionMethod::kCanopy;
  config.canopy.comparator = &tuned;
  PlanSpec spec = config.ToSpec();
  EXPECT_EQ(spec.params().GetString("reduction.distance", ""), "custom");
  EXPECT_FALSE(DetectorConfig::FromSpec(spec).ok());
  // The genuine registry instance prints (and reloads) by name.
  config.canopy.comparator = *GetComparator("jaro");
  PlanSpec named = config.ToSpec();
  EXPECT_EQ(named.params().GetString("reduction.distance", ""), "jaro");
  Result<DetectorConfig> back = DetectorConfig::FromSpec(named);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->canopy.comparator, *GetComparator("jaro"));
}

// -------------------------------------------------- compiled equivalence

TEST(CompileTest, EveryReductionCompilesFromItsRegistryName) {
  for (const std::string& name :
       ComponentRegistry::Global().ReductionNames()) {
    PlanSpec spec = PlanBuilder()
                        .AddKey("name", 3)
                        .AddKey("job", 2)
                        .Reduction(name)
                        .Weights({0.8, 0.2})
                        .Build();
    Result<std::shared_ptr<const DetectionPlan>> plan =
        DetectionPlan::Compile(spec, PaperSchema());
    ASSERT_TRUE(plan.ok()) << name << ": " << plan.status().ToString();
    EXPECT_NE((*plan)->fingerprint(), 0u);
    // The generator resolves through the registry as well.
    EXPECT_NE((*plan)->MakePairGenerator(), nullptr);
  }
}

TEST(CompileTest, SpecAndConfigPathsDecideIdentically) {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  config.reduction = ReductionMethod::kSnmCertainKeys;
  config.window = 4;
  Result<DuplicateDetector> from_config =
      DuplicateDetector::Make(config, PaperSchema());
  ASSERT_TRUE(from_config.ok());
  // The same plan, declaratively.
  Result<DuplicateDetector> from_spec =
      DuplicateDetector::Make(config.ToSpec(), PaperSchema());
  ASSERT_TRUE(from_spec.ok()) << from_spec.status().ToString();
  EXPECT_EQ(from_config->plan().fingerprint(),
            from_spec->plan().fingerprint());
  XRelation r34 = BuildR34();
  Result<DetectionResult> a = from_config->Run(r34);
  Result<DetectionResult> b = from_spec->Run(r34);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->decisions.size(), b->decisions.size());
  for (size_t i = 0; i < a->decisions.size(); ++i) {
    EXPECT_EQ(a->decisions[i].id1, b->decisions[i].id1);
    EXPECT_DOUBLE_EQ(a->decisions[i].similarity, b->decisions[i].similarity);
    EXPECT_EQ(a->decisions[i].match_class, b->decisions[i].match_class);
  }
  EXPECT_EQ(a->plan_fingerprint, from_config->plan().fingerprint());
}

TEST(CompileTest, FingerprintIgnoresUnreadConfigFields) {
  DetectorConfig a;
  a.key = {{"name", 3}, {"job", 2}};
  a.weights = {0.8, 0.2};
  DetectorConfig b = a;
  // Fields no selected component reads must not affect identity.
  b.canopy.loose = 0.99;
  b.window = 17;
  b.workers = 8;
  EXPECT_EQ(a.ToSpec().Fingerprint(), b.ToSpec().Fingerprint());
  // A field the plan does read must.
  DetectorConfig c = a;
  c.final_thresholds.t_mu = 0.71;
  EXPECT_NE(a.ToSpec().Fingerprint(), c.ToSpec().Fingerprint());
}

// ------------------------------------------------------------ Validate

TEST(ValidateTest, PruneThresholdRange) {
  DetectorConfig config;
  config.prune_threshold = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.prune_threshold = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config.prune_threshold = 1.0;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ValidateTest, PruneRequiresMaxLengthNormalizedComparators) {
  DetectorConfig config;
  config.prune = true;
  config.comparators = {"jaro", "hamming"};
  Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("jaro"), std::string::npos);
  config.comparators = {"levenshtein", "hamming"};
  EXPECT_TRUE(config.Validate().ok());
  config.comparators = {"default", "damerau"};
  EXPECT_TRUE(config.Validate().ok());
  // exact / exact_nocase / prefix are length-bounded too.
  config.comparators = {"exact", "prefix"};
  EXPECT_TRUE(config.Validate().ok());
  // A custom comparator instance overriding the unsound name passes
  // (soundness is then the caller's responsibility).
  config.comparators = {"jaro", "hamming"};
  ExactComparator exact;
  config.custom_comparators = {&exact, nullptr};
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ValidateTest, PruneRejectsNumericDefaultAtCompileTime) {
  // Validate() cannot see the schema; Compile() can, and must reject
  // the numeric_rel default (not max-length-normalized) under prune.
  Schema schema({{"name", ValueType::kString, {}},
                 {"age", ValueType::kNumeric, {}}});
  DetectorConfig config;
  config.key = {{"name", 3}};
  config.weights = {0.5, 0.5};
  config.prune = true;
  Result<std::shared_ptr<const DetectionPlan>> plan =
      DetectionPlan::Compile(config, schema);
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("numeric_rel"), std::string::npos);
  // Without prune the same plan compiles.
  config.prune = false;
  EXPECT_TRUE(DetectionPlan::Compile(config, schema).ok());
}

}  // namespace
}  // namespace pdd
