// Unit tests for possible-world semantics: enumeration, counting, top-k,
// sampling, conditioning (Fig. 7) and diverse world selection.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/paper_examples.h"
#include "pdb/conditioning.h"
#include "pdb/possible_worlds.h"
#include "pdb/world_selection.h"

namespace pdd {
namespace {

// The Fig. 7 pair relation {t32, t42}.
XRelation BuildT32T42() {
  XRelation rel("pair", PaperSchema());
  XRelation r3 = BuildR3();
  XRelation r4 = BuildR4();
  rel.AppendUnchecked(r3.xtuple(1));  // t32
  rel.AppendUnchecked(r4.xtuple(1));  // t42
  return rel;
}

TEST(PossibleWorldsTest, CountWorldsFig7) {
  // t32 has 3 alternatives + absence, t42 has 1 + absence: 4 * 2 = 8.
  EXPECT_EQ(CountWorlds(BuildT32T42()), 8u);
}

TEST(PossibleWorldsTest, CountWorldsR34) {
  // t31: 2, t32: 3+1, t41: 2, t42: 1+1, t43: 2+1 -> 2*4*2*2*3 = 96.
  EXPECT_EQ(CountWorlds(BuildR34()), 96u);
}

TEST(PossibleWorldsTest, EnumerationMatchesFig7Probabilities) {
  Result<std::vector<World>> worlds = EnumerateWorlds(BuildT32T42());
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 8u);
  // Collect probabilities by (choice of t32, choice of t42).
  std::map<std::pair<int, int>, double> probs;
  for (const World& w : *worlds) {
    probs[{w.choice[0], w.choice[1]}] = w.probability;
  }
  EXPECT_NEAR((probs[{0, 0}]), 0.24, 1e-12);        // I1
  EXPECT_NEAR((probs[{1, 0}]), 0.16, 1e-12);        // I2
  EXPECT_NEAR((probs[{2, 0}]), 0.32, 1e-12);        // I3
  EXPECT_NEAR((probs[{kAbsent, 0}]), 0.08, 1e-12);  // I4
  EXPECT_NEAR((probs[{0, kAbsent}]), 0.06, 1e-12);  // I5
  EXPECT_NEAR((probs[{1, kAbsent}]), 0.04, 1e-12);  // I6
  EXPECT_NEAR((probs[{2, kAbsent}]), 0.08, 1e-12);  // I7
  EXPECT_NEAR((probs[{kAbsent, kAbsent}]), 0.02, 1e-12);  // I8
}

TEST(PossibleWorldsTest, EnumerationProbabilitiesSumToOne) {
  Result<std::vector<World>> worlds = EnumerateWorlds(BuildR34());
  ASSERT_TRUE(worlds.ok());
  double total = 0.0;
  for (const World& w : *worlds) total += w.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PossibleWorldsTest, AllPresentOnlySumsToEventProbability) {
  EnumerateOptions options;
  options.all_present_only = true;
  Result<std::vector<World>> worlds = EnumerateWorlds(BuildT32T42(), options);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 3u);
  double total = 0.0;
  for (const World& w : *worlds) {
    total += w.probability;
    EXPECT_TRUE(w.AllPresent());
  }
  EXPECT_NEAR(total, 0.72, 1e-12);  // P(B) of Fig. 7
}

TEST(PossibleWorldsTest, EnumerationRespectsCap) {
  EnumerateOptions options;
  options.max_worlds = 4;
  Result<std::vector<World>> worlds = EnumerateWorlds(BuildT32T42(), options);
  EXPECT_FALSE(worlds.ok());
  EXPECT_EQ(worlds.status().code(), StatusCode::kResourceExhausted);
}

TEST(PossibleWorldsTest, ConditioningRenormalizes) {
  Result<std::vector<World>> worlds = EnumerateWorlds(BuildT32T42());
  ASSERT_TRUE(worlds.ok());
  ConditionedWorlds conditioned = ConditionOnAllPresent(*worlds);
  EXPECT_NEAR(conditioned.event_probability, 0.72, 1e-12);
  ASSERT_EQ(conditioned.worlds.size(), 3u);
  double total = 0.0;
  for (const World& w : conditioned.worlds) total += w.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // P(I1|B) = 0.24/0.72 = 1/3.
  std::map<std::pair<int, int>, double> probs;
  for (const World& w : conditioned.worlds) {
    probs[{w.choice[0], w.choice[1]}] = w.probability;
  }
  EXPECT_NEAR((probs[{0, 0}]), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR((probs[{1, 0}]), 2.0 / 9.0, 1e-12);
  EXPECT_NEAR((probs[{2, 0}]), 4.0 / 9.0, 1e-12);
}

TEST(PossibleWorldsTest, ConditionXTupleNormalizes) {
  XTuple t32 = BuildR3().xtuple(1);
  XTuple conditioned = ConditionXTuple(t32);
  EXPECT_NEAR(conditioned.existence_probability(), 1.0, 1e-12);
  EXPECT_NEAR(conditioned.alternative(0).prob, 0.3 / 0.9, 1e-12);
  EXPECT_FALSE(conditioned.is_maybe());
}

TEST(PossibleWorldsTest, ConditionXRelationConditionsAll) {
  XRelation conditioned = ConditionXRelation(BuildR34());
  for (const XTuple& t : conditioned.xtuples()) {
    EXPECT_NEAR(t.existence_probability(), 1.0, 1e-12) << t.id();
  }
}

TEST(PossibleWorldsTest, PairExistenceProbability) {
  XRelation rel = BuildT32T42();
  EXPECT_NEAR(PairExistenceProbability(rel.xtuple(0), rel.xtuple(1)), 0.72,
              1e-12);
}

TEST(PossibleWorldsTest, TopKReturnsDescendingProbabilities) {
  std::vector<World> top = TopKWorlds(BuildR34(), 10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].probability, top[i].probability - 1e-12);
  }
}

TEST(PossibleWorldsTest, TopKMatchesEnumeration) {
  XRelation rel = BuildR34();
  Result<std::vector<World>> all = EnumerateWorlds(rel);
  ASSERT_TRUE(all.ok());
  std::vector<double> probs;
  for (const World& w : *all) probs.push_back(w.probability);
  std::sort(probs.rbegin(), probs.rend());
  std::vector<World> top = TopKWorlds(rel, 5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_NEAR(top[i].probability, probs[i], 1e-12) << i;
  }
}

TEST(PossibleWorldsTest, TopKExhaustsWorldCount) {
  std::vector<World> top = TopKWorlds(BuildT32T42(), 100);
  EXPECT_EQ(top.size(), 8u);
}

TEST(PossibleWorldsTest, TopKAllPresentOnly) {
  std::vector<World> top = TopKWorlds(BuildT32T42(), 100,
                                      /*all_present_only=*/true);
  ASSERT_EQ(top.size(), 3u);
  for (const World& w : top) EXPECT_TRUE(w.AllPresent());
  // Most probable all-present world picks t32's (Jim, baker).
  EXPECT_EQ(top[0].choice[0], 2);
  EXPECT_NEAR(top[0].probability, 0.32, 1e-12);
}

TEST(PossibleWorldsTest, MostProbableWorld) {
  World best = MostProbableWorld(BuildT32T42());
  EXPECT_NEAR(best.probability, 0.32, 1e-12);
  EXPECT_EQ(best.choice[0], 2);
  EXPECT_EQ(best.choice[1], 0);
}

TEST(PossibleWorldsTest, SamplingFollowsDistribution) {
  XRelation rel = BuildT32T42();
  Rng rng(99);
  std::map<std::pair<int, int>, int> counts;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    World w = SampleWorld(rel, &rng);
    counts[{w.choice[0], w.choice[1]}]++;
  }
  EXPECT_NEAR((counts[{0, 0}]) / static_cast<double>(trials), 0.24, 0.02);
  EXPECT_NEAR((counts[{2, 0}]) / static_cast<double>(trials), 0.32, 0.02);
  EXPECT_NEAR((counts[{kAbsent, kAbsent}]) / static_cast<double>(trials),
              0.02, 0.01);
}

TEST(PossibleWorldsTest, WorldTuplesSkipsAbsent) {
  World w{{0, kAbsent, 2}, 0.1};
  std::vector<std::pair<size_t, size_t>> tuples = WorldTuples(w);
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0], (std::pair<size_t, size_t>{0, 0}));
  EXPECT_EQ(tuples[1], (std::pair<size_t, size_t>{2, 2}));
}

TEST(PossibleWorldsTest, WorldToStringNamesTuples) {
  XRelation rel = BuildT32T42();
  World w{{0, 0}, 0.24};
  std::string s = WorldToString(w, rel);
  EXPECT_NE(s.find("t32/1"), std::string::npos);
  EXPECT_NE(s.find("t42/1"), std::string::npos);
  EXPECT_NE(s.find("0.24"), std::string::npos);
}

TEST(PossibleWorldsTest, EmptyRelationHasOneWorld) {
  XRelation empty("E", Schema::Strings({"a"}));
  EXPECT_EQ(CountWorlds(empty), 1u);
  Result<std::vector<World>> worlds = EnumerateWorlds(empty);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 1u);
  EXPECT_NEAR((*worlds)[0].probability, 1.0, 1e-12);
}

// ---------------------------------------------------------- WorldSelection

TEST(WorldSelectionTest, SimilarityCountsAgreeingChoices) {
  World a{{0, 1, 2}, 0.1};
  World b{{0, 1, 0}, 0.1};
  EXPECT_NEAR(WorldSimilarity(a, b), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(WorldSimilarity(a, a), 1.0, 1e-12);
}

TEST(WorldSelectionTest, TopProbableStrategy) {
  WorldSelectionOptions options;
  options.strategy = WorldSelectionStrategy::kTopProbable;
  options.count = 3;
  std::vector<World> selected = SelectWorlds(BuildR34(), options);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_GE(selected[0].probability, selected[1].probability);
  for (const World& w : selected) EXPECT_TRUE(w.AllPresent());
}

TEST(WorldSelectionTest, DiverseSelectionReducesRedundancy) {
  WorldSelectionOptions top;
  top.strategy = WorldSelectionStrategy::kTopProbable;
  top.count = 4;
  WorldSelectionOptions diverse = top;
  diverse.strategy = WorldSelectionStrategy::kDiverse;
  diverse.lambda = 0.9;
  XRelation rel = BuildR34();
  double top_sim = MeanPairwiseSimilarity(SelectWorlds(rel, top));
  double diverse_sim = MeanPairwiseSimilarity(SelectWorlds(rel, diverse));
  // The diversified set must not be more redundant than the top set.
  EXPECT_LE(diverse_sim, top_sim + 1e-12);
}

TEST(WorldSelectionTest, DiverseSelectionStartsWithMostProbable) {
  WorldSelectionOptions options;
  options.strategy = WorldSelectionStrategy::kDiverse;
  options.count = 2;
  XRelation rel = BuildR34();
  std::vector<World> selected = SelectWorlds(rel, options);
  World best = MostProbableWorld(rel, /*all_present_only=*/true);
  ASSERT_GE(selected.size(), 1u);
  EXPECT_EQ(selected[0].choice, best.choice);
}

TEST(WorldSelectionTest, CountZeroYieldsEmpty) {
  WorldSelectionOptions options;
  options.count = 0;
  EXPECT_TRUE(SelectWorlds(BuildR34(), options).empty());
}

TEST(WorldSelectionTest, MeanPairwiseSimilarityDegenerate) {
  EXPECT_DOUBLE_EQ(MeanPairwiseSimilarity({}), 1.0);
  EXPECT_DOUBLE_EQ(MeanPairwiseSimilarity({World{{0}, 1.0}}), 1.0);
}

}  // namespace
}  // namespace pdd
