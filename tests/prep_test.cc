// Unit tests for data preparation (Section III-A): text transforms,
// probabilistic value standardization (alternative merging), and
// relation-level preparation.

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "prep/standardizer.h"

namespace pdd {
namespace {

TEST(StandardizerTest, EmptyPipelineIsIdentity) {
  Standardizer s;
  EXPECT_EQ(s.Apply("  MiXeD  Case "), "  MiXeD  Case ");
  EXPECT_EQ(s.size(), 0u);
}

TEST(StandardizerTest, LowerUpperCase) {
  EXPECT_EQ(Standardizer().LowerCase().Apply("TimOTHY"), "timothy");
  EXPECT_EQ(Standardizer().UpperCase().Apply("tim"), "TIM");
}

TEST(StandardizerTest, TrimAndCollapse) {
  EXPECT_EQ(Standardizer().TrimWhitespace().Apply("  a b  "), "a b");
  EXPECT_EQ(Standardizer().CollapseWhitespace().Apply(" a   b\t c "),
            "a b c");
}

TEST(StandardizerTest, StripPunctuationAndDigits) {
  EXPECT_EQ(Standardizer().StripPunctuation().Apply("O'Brien, Jr."),
            "OBrien Jr");
  EXPECT_EQ(Standardizer().StripDigits().Apply("route66"), "route");
}

TEST(StandardizerTest, MapTokensReplacesWholeTokens) {
  Standardizer s;
  s.MapTokens({{"bob", "robert"}, {"st", "street"}});
  EXPECT_EQ(s.Apply("bob lives st side"), "robert lives street side");
  // Partial tokens are not replaced.
  EXPECT_EQ(s.Apply("bobby"), "bobby");
}

TEST(StandardizerTest, TransformsRunInOrder) {
  Standardizer s;
  s.LowerCase().MapTokens({{"bob", "robert"}});
  EXPECT_EQ(s.Apply("BOB"), "robert");
  Standardizer reversed;
  reversed.MapTokens({{"bob", "robert"}}).LowerCase();
  EXPECT_EQ(reversed.Apply("BOB"), "bob");  // table sees "BOB", misses
}

TEST(StandardizerTest, ValueAlternativesMergeAfterStandardization) {
  // "Tim " and "tim" collapse into one alternative: standardization
  // reduces uncertainty.
  Standardizer s;
  s.LowerCase().TrimWhitespace();
  Value v = Value::Dist({{"Tim ", 0.4}, {"tim", 0.3}, {"Tom", 0.3}});
  Value out = s.ApplyToValue(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.alternatives()[0].text, "tim");
  EXPECT_NEAR(out.alternatives()[0].prob, 0.7, 1e-12);
  EXPECT_EQ(out.alternatives()[1].text, "tom");
}

TEST(StandardizerTest, EmptyResultsBecomeNullMass) {
  Standardizer s;
  s.StripDigits();
  Value v = Value::Dist({{"123", 0.5}, {"abc", 0.5}});
  Value out = s.ApplyToValue(v);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.alternatives()[0].text, "abc");
  EXPECT_NEAR(out.null_probability(), 0.5, 1e-12);
}

TEST(StandardizerTest, NullValuePassesThrough) {
  Standardizer s;
  s.LowerCase();
  EXPECT_TRUE(s.ApplyToValue(Value::Null()).is_null());
}

TEST(StandardizerTest, PatternsKeepPatternFlag) {
  Standardizer s;
  s.UpperCase();
  Value v = Value::Pattern("mu", 0.6);
  Value out = s.ApplyToValue(v);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.alternatives()[0].is_pattern);
  EXPECT_EQ(out.alternatives()[0].text, "MU");
}

TEST(StandardizerTest, PatternAndLiteralDoNotMerge) {
  Standardizer s;
  s.LowerCase();
  Value v = Value::Unchecked({{"MU", 0.4, false}, {"mu", 0.3, true}});
  Value out = s.ApplyToValue(v);
  EXPECT_EQ(out.size(), 2u);
}

TEST(DataPreparationTest, UniformAppliesToEveryAttribute) {
  Standardizer lower;
  lower.LowerCase();
  DataPreparation prep = DataPreparation::Uniform(lower, 2);
  XRelation r3 = BuildR3();
  XRelation out = prep.Prepare(r3);
  ASSERT_EQ(out.size(), r3.size());
  EXPECT_EQ(out.xtuple(0).alternative(0).values[0],
            Value::Certain("john"));
  EXPECT_EQ(out.xtuple(0).alternative(0).values[1],
            Value::Certain("pilot"));
  EXPECT_EQ(out.xtuple(0).id(), "t31");
}

TEST(DataPreparationTest, PerAttributeConfiguration) {
  Standardizer upper;
  upper.UpperCase();
  Standardizer none;
  DataPreparation prep({upper, none});
  XRelation r3 = BuildR3();
  XRelation out = prep.Prepare(r3);
  EXPECT_EQ(out.xtuple(0).alternative(0).values[0],
            Value::Certain("JOHN"));
  EXPECT_EQ(out.xtuple(0).alternative(0).values[1],
            Value::Certain("pilot"));
}

TEST(DataPreparationTest, PreservesProbabilitiesAndValidity) {
  Standardizer lower;
  lower.LowerCase().CollapseWhitespace();
  DataPreparation prep = DataPreparation::Uniform(lower, 2);
  XRelation r34 = BuildR34();
  XRelation out = prep.Prepare(r34);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out.xtuple(i).Validate().ok());
    EXPECT_NEAR(out.xtuple(i).existence_probability(),
                r34.xtuple(i).existence_probability(), 1e-12);
  }
}

TEST(DataPreparationTest, ExtraAttributesPassThrough) {
  Standardizer lower;
  lower.LowerCase();
  DataPreparation prep({lower});  // only attribute 0 configured
  XRelation r3 = BuildR3();
  XRelation out = prep.Prepare(r3);
  EXPECT_EQ(out.xtuple(0).alternative(0).values[1],
            Value::Certain("pilot"));  // untouched
}

}  // namespace
}  // namespace pdd
