// Property-based tests: randomized sweeps (parameterized over seeds)
// asserting the library's core invariants, most importantly the
// equivalence of Eq. 5/6 with brute-force expectation over enumerated
// possible worlds (the paper's own justification of its formulas).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/paper_examples.h"
#include "datagen/person_generator.h"
#include "decision/combination.h"
#include "derive/decision_based.h"
#include "derive/similarity_based.h"
#include "match/attribute_matcher.h"
#include "pdb/conditioning.h"
#include "pdb/possible_worlds.h"
#include "ranking/expected_rank.h"
#include "ranking/positional_rank.h"
#include "reduction/blocking.h"
#include "reduction/full_pairs.h"
#include "reduction/snm_certain_keys.h"
#include "reduction/snm_core.h"
#include "reduction/snm_multipass_worlds.h"
#include "sim/edit_distance.h"
#include "sim/registry.h"

namespace pdd {
namespace {

const Comparator& Hamming() {
  static NormalizedHammingComparator cmp;
  return cmp;
}

// ------------------------------------------------------ random builders

std::string RandomWord(Rng* rng, size_t max_len = 8) {
  size_t len = 1 + rng->Index(max_len);
  std::string w;
  for (size_t i = 0; i < len; ++i) {
    w += static_cast<char>('a' + rng->Index(6));  // small alphabet: collisions
  }
  return w;
}

Value RandomValue(Rng* rng) {
  size_t alt_count = 1 + rng->Index(3);
  std::set<std::string> texts;
  while (texts.size() < alt_count) texts.insert(RandomWord(rng));
  std::vector<double> raw;
  for (size_t i = 0; i < alt_count; ++i) raw.push_back(rng->Uniform(0.1, 1.0));
  double total = 0.0;
  for (double r : raw) total += r;
  double mass = rng->Bernoulli(0.3) ? rng->Uniform(0.5, 1.0) : 1.0;
  std::vector<Alternative> alts;
  size_t i = 0;
  for (const std::string& text : texts) {
    alts.push_back({text, raw[i] / total * mass, false});
    ++i;
  }
  return Value::Unchecked(std::move(alts));
}

XTuple RandomXTuple(const std::string& id, size_t arity, Rng* rng) {
  size_t alt_count = 1 + rng->Index(3);
  std::vector<double> raw;
  for (size_t i = 0; i < alt_count; ++i) raw.push_back(rng->Uniform(0.1, 1.0));
  double total = 0.0;
  for (double r : raw) total += r;
  double existence = rng->Bernoulli(0.4) ? rng->Uniform(0.4, 1.0) : 1.0;
  std::vector<AltTuple> alts;
  for (size_t a = 0; a < alt_count; ++a) {
    AltTuple alt;
    for (size_t v = 0; v < arity; ++v) alt.values.push_back(RandomValue(rng));
    alt.prob = raw[a] / total * existence;
    alts.push_back(std::move(alt));
  }
  return XTuple(id, std::move(alts));
}

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// --------------------------------------------- Eq. 5 expectation bounds

TEST_P(SeededPropertyTest, ExpectedSimilarityBoundedAndSymmetric) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Value a = RandomValue(&rng);
    Value b = RandomValue(&rng);
    double ab = ExpectedSimilarity(a, b, Hamming());
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0 + 1e-12);
    EXPECT_NEAR(ab, ExpectedSimilarity(b, a, Hamming()), 1e-12);
  }
}

TEST_P(SeededPropertyTest, SelfSimilarityEqualsCollisionMass) {
  // sim(a, a) under exact equality is Σ p_i² + p_⊥² — the probability two
  // independent draws agree; certain values must score exactly 1.
  Rng rng(GetParam());
  ExactComparator exact;
  for (int i = 0; i < 30; ++i) {
    Value a = RandomValue(&rng);
    double expected = a.null_probability() * a.null_probability();
    for (const Alternative& alt : a.alternatives()) {
      expected += alt.prob * alt.prob;
    }
    EXPECT_NEAR(ExpectedSimilarity(a, a, exact), expected, 1e-12);
  }
  EXPECT_DOUBLE_EQ(
      ExpectedSimilarity(Value::Certain("x"), Value::Certain("x"), exact),
      1.0);
}

// ----------------------------------- Eq. 5 equals world-level brute force

TEST_P(SeededPropertyTest, Eq5EqualsBruteForceOverValueOutcomes) {
  Rng rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    Value a = RandomValue(&rng);
    Value b = RandomValue(&rng);
    // Brute force: iterate all outcome pairs including ⊥.
    double brute = a.null_probability() * b.null_probability();
    for (const Alternative& da : a.alternatives()) {
      for (const Alternative& db : b.alternatives()) {
        brute += da.prob * db.prob * Hamming().Compare(da.text, db.text);
      }
    }
    EXPECT_NEAR(ExpectedSimilarity(a, b, Hamming()), brute, 1e-12);
  }
}

// ----------------------------------- Eq. 6 equals conditioned world sum

TEST_P(SeededPropertyTest, Eq6EqualsExpectationOverConditionedWorlds) {
  Rng rng(GetParam());
  TupleMatcher matcher =
      *TupleMatcher::Make(Schema::Strings({"a", "b"}),
                          {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.6, 0.4});
  ExpectedSimilarityDerivation theta;
  for (int i = 0; i < 10; ++i) {
    XTuple t1 = RandomXTuple("t1", 2, &rng);
    XTuple t2 = RandomXTuple("t2", 2, &rng);
    AlternativePairScores scores =
        BuildAlternativePairScores(t1, t2, matcher, phi);
    double eq6 = theta.Derive(scores);
    // Brute force: enumerate the pair relation's worlds, condition on B,
    // and average φ over the chosen alternative pairs.
    XRelation pair("pair", Schema::Strings({"a", "b"}));
    pair.AppendUnchecked(t1);
    pair.AppendUnchecked(t2);
    Result<std::vector<World>> worlds = EnumerateWorlds(pair);
    ASSERT_TRUE(worlds.ok());
    ConditionedWorlds conditioned = ConditionOnAllPresent(*worlds);
    double brute = 0.0;
    for (const World& w : conditioned.worlds) {
      ComparisonVector c = matcher.CompareAlternatives(
          t1.alternative(static_cast<size_t>(w.choice[0])),
          t2.alternative(static_cast<size_t>(w.choice[1])));
      brute += w.probability * phi.Combine(c);
    }
    EXPECT_NEAR(eq6, brute, 1e-9);
    // P(B) must equal the product of existence probabilities.
    EXPECT_NEAR(conditioned.event_probability,
                PairExistenceProbability(t1, t2), 1e-9);
  }
}

// ------------------------------------------- decision-based mass closure

TEST_P(SeededPropertyTest, MatchingMassPartitionsUnity) {
  Rng rng(GetParam());
  TupleMatcher matcher =
      *TupleMatcher::Make(Schema::Strings({"a", "b"}),
                          {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.5, 0.5});
  for (int i = 0; i < 20; ++i) {
    XTuple t1 = RandomXTuple("t1", 2, &rng);
    XTuple t2 = RandomXTuple("t2", 2, &rng);
    AlternativePairScores scores =
        BuildAlternativePairScores(t1, t2, matcher, phi);
    double lambda = rng.Uniform(0.0, 0.6);
    Thresholds t{lambda, rng.Uniform(lambda, 1.0)};
    MatchingMass mass = ComputeMatchingMass(scores, t);
    EXPECT_NEAR(mass.p_match + mass.p_possible + mass.p_unmatch, 1.0, 1e-9);
    EXPECT_GE(mass.p_match, -1e-12);
    EXPECT_GE(mass.p_possible, -1e-12);
    EXPECT_GE(mass.p_unmatch, -1e-12);
  }
}

// ----------------------------------------------- derivation order lemmas

TEST_P(SeededPropertyTest, ExpectedSimilarityBetweenMinAndMax) {
  Rng rng(GetParam());
  TupleMatcher matcher =
      *TupleMatcher::Make(Schema::Strings({"a"}), {&Hamming()});
  WeightedSumCombination phi({1.0});
  for (int i = 0; i < 20; ++i) {
    XTuple t1 = RandomXTuple("t1", 1, &rng);
    XTuple t2 = RandomXTuple("t2", 1, &rng);
    AlternativePairScores scores =
        BuildAlternativePairScores(t1, t2, matcher, phi);
    double expected = ExpectedSimilarityDerivation().Derive(scores);
    EXPECT_GE(expected,
              MinSimilarityDerivation().Derive(scores) - 1e-12);
    EXPECT_LE(expected,
              MaxSimilarityDerivation().Derive(scores) + 1e-12);
  }
}

// --------------------------------------------------- conditioning lemmas

TEST_P(SeededPropertyTest, ConditioningPreservesRatiosAndNormalizes) {
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    XTuple t = RandomXTuple("t", 2, &rng);
    XTuple conditioned = ConditionXTuple(t);
    EXPECT_NEAR(conditioned.existence_probability(), 1.0, 1e-9);
    ASSERT_EQ(conditioned.size(), t.size());
    for (size_t a = 1; a < t.size(); ++a) {
      double ratio_before = t.alternative(a).prob / t.alternative(0).prob;
      double ratio_after =
          conditioned.alternative(a).prob / conditioned.alternative(0).prob;
      EXPECT_NEAR(ratio_before, ratio_after, 1e-9);
    }
  }
}

// -------------------------------------------------- top-k vs enumeration

TEST_P(SeededPropertyTest, TopKWorldsMatchEnumeration) {
  Rng rng(GetParam());
  XRelation rel("R", Schema::Strings({"a"}));
  size_t n = 2 + rng.Index(3);
  for (size_t i = 0; i < n; ++i) {
    rel.AppendUnchecked(RandomXTuple("t" + std::to_string(i), 1, &rng));
  }
  Result<std::vector<World>> all = EnumerateWorlds(rel);
  ASSERT_TRUE(all.ok());
  std::vector<double> probs;
  for (const World& w : *all) probs.push_back(w.probability);
  std::sort(probs.rbegin(), probs.rend());
  size_t k = std::min<size_t>(7, probs.size());
  std::vector<World> top = TopKWorlds(rel, k);
  ASSERT_EQ(top.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(top[i].probability, probs[i], 1e-9) << i;
  }
}

// --------------------------------------- reduction containment property

TEST_P(SeededPropertyTest, CertainKeySnmIsSubsetOfMultipass) {
  PersonGenOptions gen;
  gen.num_entities = 15;
  gen.duplicate_rate = 0.5;
  gen.seed = GetParam();
  gen.uncertainty.xtuple_alternative_prob = 0.5;
  GeneratedData data = GeneratePersons(gen);
  KeySpec spec = *KeySpec::FromNames({{"name", 3}, {"job", 2}},
                                     PersonSchema());
  SnmCertainKeyOptions copt;
  copt.window = 3;
  SnmCertainKeys certain(spec, copt);
  SnmMultipassOptions mopt;
  mopt.window = 3;
  mopt.selection.count = 1;
  SnmMultipassWorlds multi(spec, mopt);
  Result<std::vector<CandidatePair>> certain_pairs =
      certain.Generate(data.relation);
  Result<std::vector<CandidatePair>> multi_pairs =
      multi.Generate(data.relation);
  ASSERT_TRUE(certain_pairs.ok());
  ASSERT_TRUE(multi_pairs.ok());
  for (const CandidatePair& p : *certain_pairs) {
    EXPECT_TRUE(ContainsPair(*multi_pairs, p));
  }
}

TEST_P(SeededPropertyTest, BlockingPartitionsAreDisjointAndComplete) {
  PersonGenOptions gen;
  gen.num_entities = 20;
  gen.seed = GetParam();
  GeneratedData data = GeneratePersons(gen);
  KeySpec spec = *KeySpec::FromNames({{"name", 1}, {"job", 1}},
                                     PersonSchema());
  BlockingCertainKeys blocking(spec);
  BlockMap blocks = blocking.Blocks(data.relation);
  std::vector<bool> seen(data.relation.size(), false);
  for (const auto& [key, members] : blocks) {
    for (size_t i : members) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST_P(SeededPropertyTest, WindowPairCountBound) {
  Rng rng(GetParam());
  size_t n = 5 + rng.Index(20);
  std::vector<KeyedEntry> entries;
  for (size_t i = 0; i < n; ++i) entries.push_back({RandomWord(&rng), i});
  SortEntries(&entries);
  for (size_t window = 2; window <= 5; ++window) {
    std::vector<CandidatePair> pairs = WindowPairs(entries, window, nullptr);
    EXPECT_LE(pairs.size(), (n - 1) * (window - 1));
  }
}

// ------------------------------------------------------- ranking lemmas

TEST_P(SeededPropertyTest, RankingsOfCertainKeysEqualPlainSorting) {
  Rng rng(GetParam());
  size_t n = 4 + rng.Index(8);
  std::vector<KeyDistribution> keys(n);
  std::vector<std::pair<std::string, size_t>> sortable;
  std::set<std::string> used;
  for (size_t i = 0; i < n; ++i) {
    std::string key;
    do {
      key = RandomWord(&rng);
    } while (!used.insert(key).second);
    keys[i].entries = {{key, 1.0}};
    sortable.emplace_back(key, i);
  }
  std::sort(sortable.begin(), sortable.end());
  std::vector<size_t> expected;
  for (const auto& [key, idx] : sortable) expected.push_back(idx);
  EXPECT_EQ(RankByExpectedRank(keys), expected);
  EXPECT_EQ(RankByPositionalScore(keys), expected);
}

TEST_P(SeededPropertyTest, PositionalApproximatesExpectedRank) {
  Rng rng(GetParam());
  size_t n = 6 + rng.Index(6);
  std::vector<KeyDistribution> keys(n);
  for (size_t i = 0; i < n; ++i) {
    size_t alts = 1 + rng.Index(3);
    double remaining = 1.0;
    for (size_t a = 0; a < alts; ++a) {
      double p = a + 1 == alts ? remaining : remaining * rng.Uniform(0.3, 0.7);
      keys[i].entries.emplace_back(RandomWord(&rng, 4), p);
      remaining -= p;
    }
  }
  double agreement = KendallTauAgreement(RankByExpectedRank(keys),
                                         RankByPositionalScore(keys));
  // The O(n log n) approximation must strongly agree with the exact rank.
  EXPECT_GE(agreement, 0.75);
}

// ----------------------------------------------------- generator hygiene

TEST_P(SeededPropertyTest, GeneratedRelationsAlwaysValidate) {
  PersonGenOptions gen;
  gen.num_entities = 15;
  gen.duplicate_rate = 0.7;
  gen.seed = GetParam();
  gen.uncertainty.value_uncertainty_prob = 0.6;
  gen.uncertainty.maybe_prob = 0.3;
  gen.uncertainty.xtuple_alternative_prob = 0.5;
  GeneratedData data = GeneratePersons(gen);
  for (const XTuple& t : data.relation.xtuples()) {
    ASSERT_TRUE(t.Validate().ok()) << t.ToString();
    for (const AltTuple& alt : t.alternatives()) {
      for (const Value& v : alt.values) {
        EXPECT_LE(v.existence_probability(), 1.0 + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89),
                         [](const ::testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace pdd
