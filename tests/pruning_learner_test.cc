// Unit tests for the pruning filter (Section III-B's third heuristic)
// and the supervised weight learner.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/paper_examples.h"
#include "datagen/person_generator.h"
#include "decision/combination.h"
#include "decision/weight_learner.h"
#include "derive/similarity_based.h"
#include "match/tuple_matcher.h"
#include "reduction/full_pairs.h"
#include "reduction/pruning.h"
#include "sim/edit_distance.h"
#include "util/random.h"

namespace pdd {
namespace {

// ----------------------------------------------------------- length bound

TEST(LengthBoundTest, EqualLengthsBoundOne) {
  EXPECT_DOUBLE_EQ(LengthBound("abc", "xyz"), 1.0);
  EXPECT_DOUBLE_EQ(LengthBound("", ""), 1.0);
}

TEST(LengthBoundTest, LengthGapLowersBound) {
  EXPECT_NEAR(LengthBound("abcd", "ab"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(LengthBound("abc", ""), 0.0);
}

TEST(LengthBoundTest, SoundForMaxLengthNormalizedComparators) {
  // The bound must dominate the actual similarity for Hamming,
  // Levenshtein, Damerau and LCS on random strings.
  NormalizedHammingComparator hamming;
  LevenshteinComparator levenshtein;
  DamerauLevenshteinComparator damerau;
  LcsComparator lcs;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    std::string a, b;
    size_t la = rng.Index(10), lb = rng.Index(10);
    for (size_t c = 0; c < la; ++c) a += static_cast<char>('a' + rng.Index(4));
    for (size_t c = 0; c < lb; ++c) b += static_cast<char>('a' + rng.Index(4));
    double bound = LengthBound(a, b);
    EXPECT_GE(bound + 1e-12, hamming.Compare(a, b)) << a << "/" << b;
    EXPECT_GE(bound + 1e-12, levenshtein.Compare(a, b)) << a << "/" << b;
    EXPECT_GE(bound + 1e-12, damerau.Compare(a, b)) << a << "/" << b;
    EXPECT_GE(bound + 1e-12, lcs.Compare(a, b)) << a << "/" << b;
  }
}

TEST(ValueLengthBoundTest, SharedNullMassLiftsToOne) {
  Value a = Value::Dist({{"abcdef", 0.5}});
  Value b = Value::Dist({{"x", 0.5}});
  EXPECT_DOUBLE_EQ(ValueLengthBound(a, b), 1.0);  // both carry ⊥ mass
  Value c = Value::Certain("x");
  EXPECT_NEAR(ValueLengthBound(a, c), 1.0 / 6.0, 1e-12);
}

TEST(ValueLengthBoundTest, MaxOverAlternatives) {
  Value a = Value::Unchecked({{"abcdef", 0.5, false}, {"xy", 0.5, false}});
  Value b = Value::Certain("pq");
  EXPECT_DOUBLE_EQ(ValueLengthBound(a, b), 1.0);  // xy vs pq same length
}

// ---------------------------------------------------------- pruning filter

TEST(PruningFilterTest, SoundnessOnPaperRelations) {
  // A pruned pair's true combined similarity (under Hamming and the
  // paper's weights) must lie below the threshold.
  NormalizedHammingComparator hamming;
  TupleMatcher matcher =
      *TupleMatcher::Make(PaperSchema(), {&hamming, &hamming});
  WeightedSumCombination phi({0.8, 0.2});
  ExpectedSimilarityDerivation theta;
  PruningOptions options;
  options.threshold = 0.4;
  options.weights = {0.8, 0.2};
  PruningFilter filter(std::make_unique<FullPairs>(), options);
  XRelation r34 = BuildR34();
  Result<std::vector<CandidatePair>> kept = filter.Generate(r34);
  ASSERT_TRUE(kept.ok());
  FullPairs full;
  Result<std::vector<CandidatePair>> all = full.Generate(r34);
  for (const CandidatePair& pair : *all) {
    if (ContainsPair(*kept, pair)) continue;
    AlternativePairScores scores = BuildAlternativePairScores(
        r34.xtuple(pair.first), r34.xtuple(pair.second), matcher, phi);
    EXPECT_LT(theta.Derive(scores), options.threshold)
        << pair.first << "," << pair.second;
  }
}

TEST(PruningFilterTest, ZeroThresholdKeepsEverything) {
  PruningOptions options;
  options.threshold = 0.0;
  PruningFilter filter(std::make_unique<FullPairs>(), options);
  XRelation r34 = BuildR34();
  EXPECT_EQ(filter.Generate(r34)->size(), 10u);
}

TEST(PruningFilterTest, HighThresholdPrunesAggressively) {
  PersonGenOptions gen;
  gen.num_entities = 60;
  gen.duplicate_rate = 0.5;
  GeneratedData data = GeneratePersons(gen);
  PruningOptions options;
  options.threshold = 0.9;
  PruningFilter filter(std::make_unique<FullPairs>(), options);
  FullPairs full;
  Result<std::vector<CandidatePair>> kept = filter.Generate(data.relation);
  ASSERT_TRUE(kept.ok());
  EXPECT_LT(kept->size(), full.Generate(data.relation)->size());
}

TEST(PruningFilterTest, NameReflectsInner) {
  PruningFilter filter(std::make_unique<FullPairs>(), PruningOptions{});
  EXPECT_EQ(filter.name(), "pruned(full)");
}

// ----------------------------------------------------------- weight learner

std::vector<LabeledVector> SyntheticTrainingData(size_t n, uint64_t seed) {
  // Matches: high first component, moderate second; non-matches: low.
  Rng rng(seed);
  std::vector<LabeledVector> data;
  for (size_t i = 0; i < n; ++i) {
    bool is_match = rng.Bernoulli(0.4);
    double c1 = is_match ? rng.Uniform(0.7, 1.0) : rng.Uniform(0.0, 0.5);
    double c2 = is_match ? rng.Uniform(0.5, 1.0) : rng.Uniform(0.0, 0.6);
    data.push_back({ComparisonVector({c1, c2}), is_match});
  }
  return data;
}

TEST(WeightLearnerTest, SeparatesSyntheticClasses) {
  std::vector<LabeledVector> data = SyntheticTrainingData(400, 7);
  Result<LearnedWeights> model = LearnWeights(data);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  size_t correct = 0;
  for (const LabeledVector& lv : data) {
    bool predicted = model->Predict(lv.comparison) > 0.5;
    if (predicted == lv.is_match) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(data.size()),
            0.9);
}

TEST(WeightLearnerTest, FirstAttributeDominates) {
  // c1 separates the classes more than c2 by construction.
  std::vector<LabeledVector> data = SyntheticTrainingData(600, 11);
  Result<LearnedWeights> model = LearnWeights(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->weights[0], model->weights[1]);
  EXPECT_GT(model->weights[0], 0.0);
}

TEST(WeightLearnerTest, ValidatesInput) {
  EXPECT_FALSE(LearnWeights({}).ok());
  std::vector<LabeledVector> single_class = {
      {ComparisonVector({0.5}), true}, {ComparisonVector({0.9}), true}};
  EXPECT_FALSE(LearnWeights(single_class).ok());
  std::vector<LabeledVector> mixed_arity = {
      {ComparisonVector({0.5}), true}, {ComparisonVector({0.5, 0.5}), false}};
  EXPECT_FALSE(LearnWeights(mixed_arity).ok());
}

TEST(WeightLearnerTest, ToCombinationNormalizesWeights) {
  std::vector<LabeledVector> data = SyntheticTrainingData(300, 13);
  Result<LearnedWeights> model = LearnWeights(data);
  ASSERT_TRUE(model.ok());
  auto [weights, thresholds] = model->ToCombination();
  double total = 0.0;
  for (double w : weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_TRUE(thresholds.Validate().ok());
  EXPECT_GE(thresholds.t_mu, 0.0);
  EXPECT_LE(thresholds.t_mu, 1.0);
}

TEST(WeightLearnerTest, LearnedCombinationClassifiesWell) {
  std::vector<LabeledVector> data = SyntheticTrainingData(500, 17);
  Result<LearnedWeights> model = LearnWeights(data);
  ASSERT_TRUE(model.ok());
  auto [weights, thresholds] = model->ToCombination();
  WeightedSumCombination phi(weights);
  size_t correct = 0;
  for (const LabeledVector& lv : data) {
    bool predicted =
        Classify(phi.Combine(lv.comparison), thresholds) == MatchClass::kMatch;
    if (predicted == lv.is_match) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(data.size()),
            0.85);
}

TEST(WeightLearnerTest, LogLikelihoodImprovesOverTraining) {
  std::vector<LabeledVector> data = SyntheticTrainingData(300, 19);
  WeightLearnOptions quick;
  quick.iterations = 2;
  WeightLearnOptions longer;
  longer.iterations = 400;
  Result<LearnedWeights> early = LearnWeights(data, quick);
  Result<LearnedWeights> late = LearnWeights(data, longer);
  ASSERT_TRUE(early.ok());
  ASSERT_TRUE(late.ok());
  EXPECT_GT(late->log_likelihood, early->log_likelihood);
}

}  // namespace
}  // namespace pdd
