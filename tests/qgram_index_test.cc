// Unit tests for q-gram inverted-index candidate generation.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "datagen/person_generator.h"
#include "reduction/full_pairs.h"
#include "reduction/qgram_index.h"

namespace pdd {
namespace {

constexpr size_t kT31 = 0, kT41 = 2;

TEST(QGramIndexTest, SharedKeyPrefixesBecomeCandidates) {
  QGramIndexOptions options;
  options.q = 2;
  options.min_shared_grams = 3;
  QGramIndexReduction index(PaperSortingKey(), options);
  Result<std::vector<CandidatePair>> pairs = index.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  // t31 and t41 share the full key "Johpi" -> all grams shared.
  EXPECT_TRUE(ContainsPair(*pairs, MakePair(kT31, kT41)));
}

TEST(QGramIndexTest, ThresholdOneDegeneratesTowardFullPairs) {
  // With min_shared_grams=1 and no stop-gram filter, any shared bigram
  // connects tuples — a superset of stricter settings.
  QGramIndexOptions loose;
  loose.min_shared_grams = 1;
  loose.max_posting_fraction = 1.0;
  QGramIndexOptions strict;
  strict.min_shared_grams = 4;
  strict.max_posting_fraction = 1.0;
  XRelation r34 = BuildR34();
  Result<std::vector<CandidatePair>> loose_pairs =
      QGramIndexReduction(PaperSortingKey(), loose).Generate(r34);
  Result<std::vector<CandidatePair>> strict_pairs =
      QGramIndexReduction(PaperSortingKey(), strict).Generate(r34);
  ASSERT_TRUE(loose_pairs.ok());
  ASSERT_TRUE(strict_pairs.ok());
  EXPECT_GE(loose_pairs->size(), strict_pairs->size());
  for (const CandidatePair& p : *strict_pairs) {
    EXPECT_TRUE(ContainsPair(*loose_pairs, p));
  }
}

TEST(QGramIndexTest, StopGramFilterPrunesUbiquitousGrams) {
  // All tuples share one key prefix: with aggressive stop-gram filtering
  // the ubiquitous grams are dropped and fewer pairs survive.
  XRelation rel("R", PaperSchema());
  for (int i = 0; i < 8; ++i) {
    // Common prefix "Joh", distinct suffixes.
    std::string name = "Joh" + std::string(1, static_cast<char>('a' + i));
    rel.AppendUnchecked(XTuple(
        "t" + std::to_string(i),
        {{{Value::Certain(name), Value::Certain("pilot")}, 1.0}}));
  }
  QGramIndexOptions no_filter;
  no_filter.max_posting_fraction = 1.0;
  QGramIndexOptions filtered;
  filtered.max_posting_fraction = 0.4;
  filtered.stop_gram_floor = 1;  // allow filtering on this tiny relation
  KeySpec key({{0, 4}});
  Result<std::vector<CandidatePair>> all =
      QGramIndexReduction(key, no_filter).Generate(rel);
  Result<std::vector<CandidatePair>> few =
      QGramIndexReduction(key, filtered).Generate(rel);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(few.ok());
  EXPECT_EQ(all->size(), 28u);  // every pair shares "Joh" grams
  EXPECT_LT(few->size(), all->size());
}

TEST(QGramIndexTest, ValidatesOptions) {
  QGramIndexOptions bad_q;
  bad_q.q = 0;
  EXPECT_FALSE(
      QGramIndexReduction(PaperSortingKey(), bad_q).Generate(BuildR34()).ok());
  QGramIndexOptions bad_min;
  bad_min.min_shared_grams = 0;
  EXPECT_FALSE(QGramIndexReduction(PaperSortingKey(), bad_min)
                   .Generate(BuildR34())
                   .ok());
}

TEST(QGramIndexTest, SubsetOfFullPairsOnGeneratedData) {
  PersonGenOptions gen;
  gen.num_entities = 40;
  GeneratedData data = GeneratePersons(gen);
  KeySpec key = *KeySpec::FromNames({{"name", 3}, {"job", 2}},
                                    PersonSchema());
  QGramIndexReduction index(key, QGramIndexOptions{});
  Result<std::vector<CandidatePair>> pairs = index.Generate(data.relation);
  ASSERT_TRUE(pairs.ok());
  FullPairs full;
  Result<std::vector<CandidatePair>> all = full.Generate(data.relation);
  for (const CandidatePair& p : *pairs) {
    EXPECT_TRUE(ContainsPair(*all, p));
    EXPECT_LT(p.first, p.second);
  }
  EXPECT_LT(pairs->size(), all->size());
}

TEST(QGramIndexTest, RunsThroughDetectorConfig) {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  config.reduction = ReductionMethod::kQGramIndex;
  config.qgram.min_shared_grams = 2;
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result = detector->Run(BuildR34());
  ASSERT_TRUE(result.ok());
  // The (t31, t41) duplicate must survive the index.
  bool found = false;
  for (const IdPair& pair : result->Matches()) {
    if (pair.first == "t31" && pair.second == "t41") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pdd
