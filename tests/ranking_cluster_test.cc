// Unit tests for probabilistic ranking (expected rank, positional
// approximation, Fig. 13 order) and clustering of key distributions.

#include <gtest/gtest.h>

#include "cluster/k_medoids.h"
#include "cluster/key_distribution_distance.h"
#include "cluster/leader_clustering.h"
#include "core/paper_examples.h"
#include "keys/key_builder.h"
#include "ranking/expected_rank.h"
#include "ranking/positional_rank.h"
#include "sim/edit_distance.h"

namespace pdd {
namespace {

KeyDistribution Dist(std::vector<std::pair<std::string, double>> entries) {
  KeyDistribution d;
  d.entries = std::move(entries);
  return d;
}

std::vector<KeyDistribution> PaperKeyDistributions() {
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  XRelation r34 = BuildR34();
  std::vector<KeyDistribution> dists;
  for (const XTuple& t : r34.xtuples()) {
    dists.push_back(builder.DistributionFor(t));
  }
  return dists;
}

// ------------------------------------------------------------- expected

TEST(ExpectedRankTest, KeyLessProbabilityCertainKeys) {
  KeyDistribution a = Dist({{"aaa", 1.0}});
  KeyDistribution b = Dist({{"bbb", 1.0}});
  EXPECT_DOUBLE_EQ(KeyLessProbability(a, b), 1.0);
  EXPECT_DOUBLE_EQ(KeyLessProbability(b, a), 0.0);
  EXPECT_DOUBLE_EQ(KeyEqualProbability(a, a), 1.0);
}

TEST(ExpectedRankTest, KeyLessProbabilityMixed) {
  KeyDistribution a = Dist({{"a", 0.5}, {"c", 0.5}});
  KeyDistribution b = Dist({{"b", 1.0}});
  EXPECT_NEAR(KeyLessProbability(a, b), 0.5, 1e-12);
  EXPECT_NEAR(KeyLessProbability(b, a), 0.5, 1e-12);
  EXPECT_NEAR(KeyEqualProbability(a, b), 0.0, 1e-12);
}

TEST(ExpectedRankTest, NormalizesRawMasses) {
  // Unconditioned distributions (mass < 1) must behave like conditioned.
  KeyDistribution a = Dist({{"a", 0.45}, {"c", 0.45}});  // mass 0.9
  KeyDistribution b = Dist({{"b", 0.8}});                // mass 0.8
  EXPECT_NEAR(KeyLessProbability(a, b), 0.5, 1e-12);
}

TEST(ExpectedRankTest, CertainKeysReduceToSorting) {
  std::vector<KeyDistribution> keys = {Dist({{"c", 1.0}}),
                                       Dist({{"a", 1.0}}),
                                       Dist({{"b", 1.0}})};
  std::vector<size_t> order = RankByExpectedRank(keys);
  EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
}

TEST(ExpectedRankTest, PaperFig13Order) {
  // Fig. 13 right: t32, t31, t41, t43, t42 (indices 1, 0, 2, 4, 3).
  std::vector<size_t> order = RankByExpectedRank(PaperKeyDistributions());
  EXPECT_EQ(order, (std::vector<size_t>{1, 0, 2, 4, 3}));
}

TEST(ExpectedRankTest, RanksAreConsistentWithPairwiseProbabilities) {
  std::vector<KeyDistribution> keys = PaperKeyDistributions();
  std::vector<double> ranks = ExpectedRanks(keys);
  ASSERT_EQ(ranks.size(), keys.size());
  // Expected ranks over n items must sum to n(n-1)/2.
  double total = 0.0;
  for (double r : ranks) total += r;
  EXPECT_NEAR(total, 10.0, 1e-9);
}

// ------------------------------------------------------------ positional

TEST(PositionalRankTest, CertainKeysReduceToSorting) {
  std::vector<KeyDistribution> keys = {Dist({{"c", 1.0}}),
                                       Dist({{"a", 1.0}}),
                                       Dist({{"b", 1.0}})};
  std::vector<size_t> order = RankByPositionalScore(keys);
  EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
}

TEST(PositionalRankTest, PaperFig13Order) {
  std::vector<size_t> order = RankByPositionalScore(PaperKeyDistributions());
  EXPECT_EQ(order, (std::vector<size_t>{1, 0, 2, 4, 3}));
}

TEST(PositionalRankTest, AgreesWithExpectedRankOnPaperData) {
  std::vector<KeyDistribution> keys = PaperKeyDistributions();
  EXPECT_DOUBLE_EQ(KendallTauAgreement(RankByExpectedRank(keys),
                                       RankByPositionalScore(keys)),
                   1.0);
}

TEST(KendallTauTest, AgreementBounds) {
  std::vector<size_t> a = {0, 1, 2, 3};
  std::vector<size_t> reversed = {3, 2, 1, 0};
  EXPECT_DOUBLE_EQ(KendallTauAgreement(a, a), 1.0);
  EXPECT_DOUBLE_EQ(KendallTauAgreement(a, reversed), 0.0);
  std::vector<size_t> one_swap = {1, 0, 2, 3};
  EXPECT_NEAR(KendallTauAgreement(a, one_swap), 5.0 / 6.0, 1e-12);
}

TEST(KendallTauTest, TrivialSizes) {
  EXPECT_DOUBLE_EQ(KendallTauAgreement({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTauAgreement({0}, {0}), 1.0);
}

// -------------------------------------------------------------- distances

TEST(DistanceTest, OverlapDistanceIdenticalAndDisjoint) {
  KeyDistribution a = Dist({{"x", 0.5}, {"y", 0.5}});
  KeyDistribution b = Dist({{"z", 1.0}});
  EXPECT_NEAR(OverlapDistance(a, a), 0.0, 1e-12);
  EXPECT_NEAR(OverlapDistance(a, b), 1.0, 1e-12);
}

TEST(DistanceTest, OverlapDistancePartial) {
  KeyDistribution a = Dist({{"x", 0.7}, {"y", 0.3}});
  KeyDistribution b = Dist({{"x", 0.4}, {"z", 0.6}});
  // Overlap = min(0.7, 0.4) = 0.4.
  EXPECT_NEAR(OverlapDistance(a, b), 0.6, 1e-12);
}

TEST(DistanceTest, OverlapNormalizesMasses) {
  KeyDistribution a = Dist({{"x", 0.9}});            // mass 0.9
  KeyDistribution b = Dist({{"x", 0.5}});            // mass 0.5
  EXPECT_NEAR(OverlapDistance(a, b), 0.0, 1e-12);    // same normalized dist
}

TEST(DistanceTest, ExpectedKeyDistanceSoftensNearMatches) {
  NormalizedHammingComparator hamming;
  KeyDistribution a = Dist({{"Johpi", 1.0}});
  KeyDistribution b = Dist({{"Johmu", 1.0}});
  // Overlap distance is 1; expected key distance sees the shared prefix.
  EXPECT_NEAR(OverlapDistance(a, b), 1.0, 1e-12);
  EXPECT_NEAR(ExpectedKeyDistance(a, b, hamming), 1.0 - 3.0 / 5.0, 1e-12);
}

// ------------------------------------------------------------- clustering

TEST(LeaderClusteringTest, ThresholdControlsGranularity) {
  // Distance = |i - j| / 10.
  DistanceFn distance = [](size_t a, size_t b) {
    return std::abs(static_cast<double>(a) - static_cast<double>(b)) / 10.0;
  };
  std::vector<std::vector<size_t>> tight = LeaderClustering(10, distance, 0.05);
  EXPECT_EQ(tight.size(), 10u);  // nothing within 0.05 except self
  std::vector<std::vector<size_t>> loose = LeaderClustering(10, distance, 1.0);
  EXPECT_EQ(loose.size(), 1u);
}

TEST(LeaderClusteringTest, EveryItemAppearsExactlyOnce) {
  DistanceFn distance = [](size_t a, size_t b) {
    return a % 3 == b % 3 ? 0.0 : 1.0;
  };
  std::vector<std::vector<size_t>> clusters =
      LeaderClustering(12, distance, 0.5);
  EXPECT_EQ(clusters.size(), 3u);
  std::vector<bool> seen(12, false);
  for (const auto& cluster : clusters) {
    for (size_t i : cluster) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(LeaderClusteringTest, EmptyInput) {
  EXPECT_TRUE(LeaderClustering(0, [](size_t, size_t) { return 0.0; }, 0.5)
                  .empty());
}

TEST(KMedoidsTest, SeparatesObviousClusters) {
  // Items 0-4 mutually close, 5-9 mutually close, groups far apart.
  DistanceFn distance = [](size_t a, size_t b) {
    bool ga = a < 5, gb = b < 5;
    if (ga == gb) return 0.1;
    return 10.0;
  };
  KMedoidsOptions options;
  options.k = 2;
  std::vector<std::vector<size_t>> clusters = KMedoids(10, distance, options);
  ASSERT_EQ(clusters.size(), 2u);
  for (const auto& cluster : clusters) {
    bool group = cluster.front() < 5;
    for (size_t i : cluster) EXPECT_EQ(i < 5, group);
  }
}

TEST(KMedoidsTest, KClampedToN) {
  DistanceFn distance = [](size_t, size_t) { return 1.0; };
  KMedoidsOptions options;
  options.k = 10;
  std::vector<std::vector<size_t>> clusters = KMedoids(3, distance, options);
  size_t total = 0;
  for (const auto& c : clusters) total += c.size();
  EXPECT_EQ(total, 3u);
}

TEST(KMedoidsTest, EmptyInput) {
  KMedoidsOptions options;
  EXPECT_TRUE(KMedoids(0, [](size_t, size_t) { return 0.0; }, options)
                  .empty());
}

TEST(KMedoidsTest, CoversAllItems) {
  DistanceFn distance = [](size_t a, size_t b) {
    return std::abs(static_cast<double>(a) - static_cast<double>(b));
  };
  KMedoidsOptions options;
  options.k = 3;
  std::vector<std::vector<size_t>> clusters = KMedoids(9, distance, options);
  std::vector<bool> seen(9, false);
  for (const auto& cluster : clusters) {
    for (size_t i : cluster) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace pdd
