// Unit tests for search space reduction: SNM core, the matching matrix
// (Fig. 12), all four SNM adaptations (Fig. 9-13) and all blocking
// adaptations (Fig. 14).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/paper_examples.h"
#include "reduction/blocking.h"
#include "reduction/blocking_alternatives.h"
#include "reduction/blocking_clustered.h"
#include "reduction/full_pairs.h"
#include "reduction/matching_matrix.h"
#include "reduction/snm_certain_keys.h"
#include "reduction/snm_core.h"
#include "reduction/snm_multipass_worlds.h"
#include "reduction/snm_sorting_alternatives.h"
#include "reduction/snm_uncertain_ranking.h"
#include "sim/edit_distance.h"

namespace pdd {
namespace {

// R34 index map: t31=0, t32=1, t41=2, t42=3, t43=4.
constexpr size_t kT31 = 0, kT32 = 1, kT41 = 2, kT42 = 3, kT43 = 4;

std::vector<std::string> Keys(const std::vector<KeyedEntry>& entries) {
  std::vector<std::string> keys;
  for (const KeyedEntry& e : entries) keys.push_back(e.key);
  return keys;
}

std::vector<size_t> Tuples(const std::vector<KeyedEntry>& entries) {
  std::vector<size_t> tuples;
  for (const KeyedEntry& e : entries) tuples.push_back(e.tuple);
  return tuples;
}

// ------------------------------------------------------------- pair utils

TEST(PairGeneratorTest, MakePairOrders) {
  EXPECT_EQ(MakePair(3, 1), (CandidatePair{1, 3}));
  EXPECT_EQ(MakePair(1, 3), (CandidatePair{1, 3}));
}

TEST(PairGeneratorTest, SortAndDedup) {
  std::vector<CandidatePair> pairs = {{1, 3}, {0, 2}, {1, 3}, {0, 1}};
  SortAndDedupPairs(&pairs);
  EXPECT_EQ(pairs, (std::vector<CandidatePair>{{0, 1}, {0, 2}, {1, 3}}));
  EXPECT_TRUE(ContainsPair(pairs, {0, 2}));
  EXPECT_FALSE(ContainsPair(pairs, {2, 3}));
}

TEST(FullPairsTest, GeneratesAllPairs) {
  FullPairs full;
  Result<std::vector<CandidatePair>> pairs = full.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 10u);  // 5 choose 2
}

// --------------------------------------------------------- MatchingMatrix

TEST(MatchingMatrixTest, TestAndSetSemantics) {
  MatchingMatrix m(5);
  EXPECT_TRUE(m.TestAndSet(1, 3));
  EXPECT_FALSE(m.TestAndSet(1, 3));
  EXPECT_FALSE(m.TestAndSet(3, 1));  // symmetric
  EXPECT_TRUE(m.Contains(3, 1));
  EXPECT_EQ(m.count(), 1u);
}

TEST(MatchingMatrixTest, SelfPairsRejected) {
  MatchingMatrix m(3);
  EXPECT_FALSE(m.TestAndSet(2, 2));
  EXPECT_FALSE(m.Contains(2, 2));
  EXPECT_EQ(m.count(), 0u);
}

TEST(MatchingMatrixTest, AllPairsIndependent) {
  MatchingMatrix m(4);
  size_t set_count = 0;
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) {
      if (m.TestAndSet(i, j)) ++set_count;
    }
  }
  EXPECT_EQ(set_count, 6u);
  EXPECT_EQ(m.count(), 6u);
}

// ---------------------------------------------------------------- SNM core

TEST(SnmCoreTest, SortEntriesIsStable) {
  std::vector<KeyedEntry> entries = {{"b", 0}, {"a", 1}, {"b", 2}};
  SortEntries(&entries);
  EXPECT_EQ(Tuples(entries), (std::vector<size_t>{1, 0, 2}));
}

TEST(SnmCoreTest, DropAdjacentSameTuple) {
  std::vector<KeyedEntry> entries = {
      {"a", 0}, {"b", 0}, {"c", 1}, {"d", 0}, {"e", 1}, {"f", 1}};
  DropAdjacentSameTuple(&entries);
  EXPECT_EQ(Keys(entries), (std::vector<std::string>{"a", "c", "d", "e"}));
}

TEST(SnmCoreTest, WindowPairsAdjacent) {
  std::vector<KeyedEntry> entries = {{"a", 0}, {"b", 1}, {"c", 2}};
  std::vector<CandidatePair> pairs = WindowPairs(entries, 2, nullptr);
  EXPECT_EQ(pairs, (std::vector<CandidatePair>{{0, 1}, {1, 2}}));
}

TEST(SnmCoreTest, WindowThreePairsTwoBack) {
  std::vector<KeyedEntry> entries = {{"a", 0}, {"b", 1}, {"c", 2}, {"d", 3}};
  std::vector<CandidatePair> pairs = WindowPairs(entries, 3, nullptr);
  SortAndDedupPairs(&pairs);
  EXPECT_EQ(pairs, (std::vector<CandidatePair>{
                       {0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}));
}

TEST(SnmCoreTest, WindowSkipsSelfPairs) {
  std::vector<KeyedEntry> entries = {{"a", 0}, {"b", 0}, {"c", 1}};
  std::vector<CandidatePair> pairs = WindowPairs(entries, 2, nullptr);
  EXPECT_EQ(pairs, (std::vector<CandidatePair>{{0, 1}}));
}

TEST(SnmCoreTest, WindowBelowTwoYieldsNothing) {
  std::vector<KeyedEntry> entries = {{"a", 0}, {"b", 1}};
  EXPECT_TRUE(WindowPairs(entries, 1, nullptr).empty());
  EXPECT_TRUE(WindowPairs(entries, 0, nullptr).empty());
}

TEST(SnmCoreTest, MatrixSuppressesRepeats) {
  std::vector<KeyedEntry> entries = {{"a", 0}, {"b", 1}, {"c", 0}, {"d", 1}};
  MatchingMatrix executed(2);
  std::vector<CandidatePair> pairs = WindowPairs(entries, 2, &executed);
  // (0,1) at positions 0-1; positions 1-2 repeat (1,0); positions 2-3
  // repeat (0,1) again.
  EXPECT_EQ(pairs, (std::vector<CandidatePair>{{0, 1}}));
}

// ----------------------------------------------- SNM 1: multipass worlds

TEST(SnmMultipassTest, Fig9WorldOrders) {
  XRelation r34 = BuildR34();
  SnmMultipassOptions options;
  options.window = 2;
  SnmMultipassWorlds snm(PaperSortingKey(), options);
  // Fig. 8/9 world I1: t31/(John,pilot), t32/(Tim,mechanic),
  // t41/(John,pilot), t42/(Tom,mechanic), t43/(Sean,pilot).
  World i1{{0, 0, 0, 0, 1}, 0.0};
  std::vector<KeyedEntry> e1 = snm.SortedEntriesForWorld(i1, r34);
  EXPECT_EQ(Keys(e1), (std::vector<std::string>{"Johpi", "Johpi", "Seapi",
                                                "Timme", "Tomme"}));
  EXPECT_EQ(Tuples(e1), (std::vector<size_t>{kT31, kT41, kT43, kT32, kT42}));
  // World I2: t31/(Johan,mu*), t32/(Jim,mechanic), t41/(John,pilot),
  // t42/(Tom,mechanic), t43/(John,⊥).
  World i2{{1, 1, 0, 0, 0}, 0.0};
  std::vector<KeyedEntry> e2 = snm.SortedEntriesForWorld(i2, r34);
  EXPECT_EQ(Keys(e2), (std::vector<std::string>{"Jimme", "Joh", "Johmu",
                                                "Johpi", "Tomme"}));
  EXPECT_EQ(Tuples(e2), (std::vector<size_t>{kT32, kT43, kT31, kT41, kT42}));
}

TEST(SnmMultipassTest, GenerateUnionsPasses) {
  SnmMultipassOptions options;
  options.window = 2;
  options.selection.count = 4;
  SnmMultipassWorlds snm(PaperSortingKey(), options);
  Result<std::vector<CandidatePair>> pairs = snm.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  EXPECT_FALSE(pairs->empty());
  EXPECT_LE(pairs->size(), 10u);
  // Pairs are canonical and unique.
  std::vector<CandidatePair> copy = *pairs;
  SortAndDedupPairs(&copy);
  EXPECT_EQ(copy, *pairs);
}

TEST(SnmMultipassTest, MoreWorldsNeverShrinkCandidates) {
  XRelation r34 = BuildR34();
  size_t prev = 0;
  for (size_t count : {1u, 2u, 4u, 8u}) {
    SnmMultipassOptions options;
    options.window = 2;
    options.selection.count = count;
    SnmMultipassWorlds snm(PaperSortingKey(), options);
    Result<std::vector<CandidatePair>> pairs = snm.Generate(r34);
    ASSERT_TRUE(pairs.ok());
    EXPECT_GE(pairs->size(), prev);
    prev = pairs->size();
  }
}

TEST(SnmMultipassTest, RejectsWindowBelowTwo) {
  SnmMultipassOptions options;
  options.window = 1;
  SnmMultipassWorlds snm(PaperSortingKey(), options);
  EXPECT_FALSE(snm.Generate(BuildR34()).ok());
}

// -------------------------------------------------- SNM 2: certain keys

TEST(SnmCertainKeysTest, Fig10Order) {
  SnmCertainKeyOptions options;
  options.window = 2;
  SnmCertainKeys snm(PaperSortingKey(), options);
  std::vector<KeyedEntry> entries = snm.SortedEntries(BuildR34());
  // Fig. 10: Jimba t32, Johpi t31, Johpi t41, Seapi t43, Tomme t42.
  EXPECT_EQ(Keys(entries), (std::vector<std::string>{"Jimba", "Johpi",
                                                     "Johpi", "Seapi",
                                                     "Tomme"}));
  EXPECT_EQ(Tuples(entries),
            (std::vector<size_t>{kT32, kT31, kT41, kT43, kT42}));
}

TEST(SnmCertainKeysTest, SubsetOfMultipass) {
  // Section V-A.2: the certain-key (most probable) matchings are a subset
  // of the multi-pass matchings whenever the most probable world is among
  // the passes.
  XRelation r34 = BuildR34();
  SnmCertainKeyOptions copt;
  copt.window = 3;
  SnmCertainKeys certain(PaperSortingKey(), copt);
  Result<std::vector<CandidatePair>> certain_pairs = certain.Generate(r34);
  ASSERT_TRUE(certain_pairs.ok());
  SnmMultipassOptions mopt;
  mopt.window = 3;
  mopt.selection.count = 1;  // exactly the most probable world
  SnmMultipassWorlds multi(PaperSortingKey(), mopt);
  Result<std::vector<CandidatePair>> multi_pairs = multi.Generate(r34);
  ASSERT_TRUE(multi_pairs.ok());
  for (const CandidatePair& p : *certain_pairs) {
    EXPECT_TRUE(ContainsPair(*multi_pairs, p))
        << p.first << "," << p.second;
  }
}

// -------------------------------------------- SNM 3: sorting alternatives

TEST(SnmSortingAlternativesTest, Fig11SortedEntries) {
  SnmAlternativesOptions options;
  SnmSortingAlternatives snm(PaperSortingKey(), options);
  std::vector<KeyedEntry> sorted = snm.SortedEntries(BuildR34());
  EXPECT_EQ(Keys(sorted),
            (std::vector<std::string>{"Jimba", "Jimme", "Joh", "Johmu",
                                      "Johpi", "Johpi", "Seapi", "Timme",
                                      "Tomme"}));
  EXPECT_EQ(Tuples(sorted), (std::vector<size_t>{kT32, kT32, kT43, kT31,
                                                 kT31, kT41, kT43, kT32,
                                                 kT42}));
}

TEST(SnmSortingAlternativesTest, Fig11OmissionRule) {
  SnmAlternativesOptions options;
  SnmSortingAlternatives snm(PaperSortingKey(), options);
  std::vector<KeyedEntry> surviving = snm.SurvivingEntries(BuildR34());
  // Jimme (t32 after Jimba/t32) and Johpi/t31 (after Johmu/t31) omitted.
  EXPECT_EQ(Keys(surviving),
            (std::vector<std::string>{"Jimba", "Joh", "Johmu", "Johpi",
                                      "Seapi", "Timme", "Tomme"}));
  EXPECT_EQ(Tuples(surviving), (std::vector<size_t>{kT32, kT43, kT31, kT41,
                                                    kT43, kT32, kT42}));
}

TEST(SnmSortingAlternativesTest, Fig12ExactlyFiveMatchings) {
  SnmAlternativesOptions options;
  options.window = 2;
  SnmSortingAlternatives snm(PaperSortingKey(), options);
  Result<std::vector<CandidatePair>> pairs = snm.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  // The paper's five matchings: (t32,t43), (t43,t31), (t31,t41),
  // (t41,t43), (t32,t42) — each applied exactly once.
  std::vector<CandidatePair> expected = {
      MakePair(kT32, kT43), MakePair(kT43, kT31), MakePair(kT31, kT41),
      MakePair(kT41, kT43), MakePair(kT32, kT42)};
  SortAndDedupPairs(&expected);
  EXPECT_EQ(*pairs, expected);
}

// ---------------------------------------------- SNM 4: uncertain ranking

TEST(SnmUncertainRankingTest, Fig13RankedOrder) {
  for (RankingMethod method :
       {RankingMethod::kExpectedRank, RankingMethod::kPositional}) {
    SnmRankingOptions options;
    options.method = method;
    SnmUncertainRanking snm(PaperSortingKey(), options);
    std::vector<size_t> order = snm.RankedOrder(BuildR34());
    EXPECT_EQ(order, (std::vector<size_t>{kT32, kT31, kT41, kT43, kT42}));
  }
}

TEST(SnmUncertainRankingTest, WindowPairsOverRankedTuples) {
  SnmRankingOptions options;
  options.window = 2;
  SnmUncertainRanking snm(PaperSortingKey(), options);
  Result<std::vector<CandidatePair>> pairs = snm.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  // Ranked order t32, t31, t41, t43, t42 with window 2 pairs neighbors.
  std::vector<CandidatePair> expected = {
      MakePair(kT32, kT31), MakePair(kT31, kT41), MakePair(kT41, kT43),
      MakePair(kT43, kT42)};
  SortAndDedupPairs(&expected);
  EXPECT_EQ(*pairs, expected);
}

TEST(SnmUncertainRankingTest, DistributionsExposeFig13Keys) {
  SnmRankingOptions options;
  SnmUncertainRanking snm(PaperSortingKey(), options);
  std::vector<KeyDistribution> dists = snm.Distributions(BuildR34());
  ASSERT_EQ(dists.size(), 5u);
  EXPECT_EQ(dists[kT41].entries.size(), 1u);
  EXPECT_EQ(dists[kT41].entries[0].first, "Johpi");
}

// ------------------------------------------------------------- blocking

TEST(BlockingCertainKeysTest, GroupsByResolvedKey) {
  BlockingCertainKeys blocking(PaperSortingKey());
  BlockMap blocks = blocking.Blocks(BuildR34());
  // Certain keys (Fig. 10): Jimba, Johpi, Johpi, Seapi, Tomme.
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks["Johpi"], (std::vector<size_t>{kT31, kT41}));
  Result<std::vector<CandidatePair>> pairs = blocking.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(*pairs, (std::vector<CandidatePair>{MakePair(kT31, kT41)}));
}

TEST(BlockingAlternativesTest, Fig14BlocksAndMatchings) {
  BlockingAlternatives blocking(PaperBlockingKey());
  BlockMap blocks = blocking.Blocks(BuildR34());
  // Six blocks: Jp {t31,t41}, Jm {t31,t32}, Tm {t32,t42}, Jb {t32},
  // J {t43}, Sp {t43}. (The paper's Fig. 14 labels them B1='JP'...B6='SP';
  // its tuple subscripts contain typos — see EXPERIMENTS.md.)
  ASSERT_EQ(blocks.size(), 6u);
  EXPECT_EQ(blocks["Jp"], (std::vector<size_t>{kT31, kT41}));
  EXPECT_EQ(blocks["Jm"], (std::vector<size_t>{kT31, kT32}));
  EXPECT_EQ(blocks["Tm"], (std::vector<size_t>{kT32, kT42}));
  EXPECT_EQ(blocks["Jb"], (std::vector<size_t>{kT32}));
  EXPECT_EQ(blocks["J"], (std::vector<size_t>{kT43}));
  EXPECT_EQ(blocks["Sp"], (std::vector<size_t>{kT43}));
  Result<std::vector<CandidatePair>> pairs = blocking.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  std::vector<CandidatePair> expected = {
      MakePair(kT31, kT41), MakePair(kT31, kT32), MakePair(kT32, kT42)};
  SortAndDedupPairs(&expected);
  EXPECT_EQ(*pairs, expected);
}

TEST(BlockingAlternativesTest, TupleAllocatedOncePerBlock) {
  // t41's two alternatives map to the same block key Jp; the tuple must
  // appear only once in that block.
  BlockingAlternatives blocking(PaperBlockingKey());
  BlockMap blocks = blocking.Blocks(BuildR34());
  size_t t41_count = std::count(blocks["Jp"].begin(), blocks["Jp"].end(),
                                kT41);
  EXPECT_EQ(t41_count, 1u);
}

TEST(BlockingMultipassTest, UnionOverWorlds) {
  WorldSelectionOptions selection;
  selection.count = 4;
  BlockingMultipassWorlds blocking(PaperSortingKey(), selection);
  Result<std::vector<CandidatePair>> pairs = blocking.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  // In the most probable world both Johpi tuples (t31, t41) block together.
  EXPECT_TRUE(ContainsPair(*pairs, MakePair(kT31, kT41)));
}

TEST(BlockingClusteredTest, LeaderClustersSimilarDistributions) {
  ClusteredBlockingOptions options;
  options.leader_threshold = 0.7;
  BlockingClustered blocking(PaperSortingKey(), options);
  std::vector<std::vector<size_t>> clusters = blocking.Clusters(BuildR34());
  // t31 {Johpi .7, Johmu .3} and t41 {Johpi 1.0} overlap 0.7 ->
  // distance 0.3 <= 0.7: same cluster.
  bool together = false;
  for (const auto& cluster : clusters) {
    bool has31 = std::count(cluster.begin(), cluster.end(), kT31) > 0;
    bool has41 = std::count(cluster.begin(), cluster.end(), kT41) > 0;
    if (has31 && has41) together = true;
  }
  EXPECT_TRUE(together);
  Result<std::vector<CandidatePair>> pairs = blocking.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(ContainsPair(*pairs, MakePair(kT31, kT41)));
}

TEST(BlockingClusteredTest, KMedoidsVariantRuns) {
  ClusteredBlockingOptions options;
  options.algorithm = ClusteredBlockingOptions::Algorithm::kKMedoids;
  options.kmedoids.k = 3;
  BlockingClustered blocking(PaperSortingKey(), options);
  std::vector<std::vector<size_t>> clusters = blocking.Clusters(BuildR34());
  size_t total = 0;
  for (const auto& c : clusters) total += c.size();
  EXPECT_EQ(total, 5u);
}

TEST(BlockingClusteredTest, ExpectedKeyDistanceVariant) {
  NormalizedHammingComparator hamming;
  ClusteredBlockingOptions options;
  options.comparator = &hamming;
  options.leader_threshold = 0.45;
  BlockingClustered blocking(PaperSortingKey(), options);
  Result<std::vector<CandidatePair>> pairs = blocking.Generate(BuildR34());
  ASSERT_TRUE(pairs.ok());
  // Softer distance merges the Joh* tuples.
  EXPECT_TRUE(ContainsPair(*pairs, MakePair(kT31, kT41)));
}

// ------------------------------------------------------ cross-method law

TEST(ReductionLawTest, AllMethodsProduceSubsetOfFullPairs) {
  XRelation r34 = BuildR34();
  FullPairs full;
  Result<std::vector<CandidatePair>> all = full.Generate(r34);
  ASSERT_TRUE(all.ok());
  std::vector<std::unique_ptr<PairGenerator>> methods;
  methods.push_back(std::make_unique<SnmCertainKeys>(
      PaperSortingKey(), SnmCertainKeyOptions{}));
  methods.push_back(std::make_unique<SnmSortingAlternatives>(
      PaperSortingKey(), SnmAlternativesOptions{}));
  methods.push_back(std::make_unique<SnmUncertainRanking>(
      PaperSortingKey(), SnmRankingOptions{}));
  methods.push_back(std::make_unique<BlockingCertainKeys>(PaperSortingKey()));
  methods.push_back(
      std::make_unique<BlockingAlternatives>(PaperBlockingKey()));
  for (const auto& method : methods) {
    Result<std::vector<CandidatePair>> pairs = method->Generate(r34);
    ASSERT_TRUE(pairs.ok()) << method->name();
    for (const CandidatePair& p : *pairs) {
      EXPECT_TRUE(ContainsPair(*all, p)) << method->name();
      EXPECT_LT(p.first, p.second) << method->name();
    }
  }
}

}  // namespace
}  // namespace pdd
