// Robustness and failure-injection tests: the parsers must never crash
// or accept garbage silently — every malformed input returns a Status —
// and round trips must hold on randomized generated data.

#include <gtest/gtest.h>

#include <string>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "datagen/person_generator.h"
#include "decision/rule_parser.h"
#include "pdb/text_format.h"
#include "util/random.h"

namespace pdd {
namespace {

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

// Random mutations of a valid serialized relation must either parse to a
// valid relation or fail with a ParseError/InvalidArgument — never crash
// and never produce an invalid relation.
TEST_P(FuzzSeedTest, MutatedRelationTextNeverProducesInvalidData) {
  Rng rng(GetParam());
  std::string base = SerializeXRelation(BuildR34());
  for (int round = 0; round < 200; ++round) {
    std::string mutated = base;
    size_t mutations = 1 + rng.Index(5);
    for (size_t m = 0; m < mutations; ++m) {
      if (mutated.empty()) break;
      size_t pos = rng.Index(mutated.size());
      switch (rng.Index(4)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        case 2:
          mutated.insert(pos, 1,
                         static_cast<char>(rng.UniformInt(32, 126)));
          break;
        default:
          // Duplicate a random line.
          mutated += "\n" + mutated.substr(pos, 30);
          break;
      }
    }
    Result<XRelation> parsed = ParseXRelation(mutated);
    if (parsed.ok()) {
      for (const XTuple& t : parsed->xtuples()) {
        EXPECT_TRUE(t.Validate().ok()) << mutated;
        EXPECT_EQ(t.arity(), parsed->schema().arity());
      }
    } else {
      EXPECT_TRUE(parsed.status().code() == StatusCode::kParseError ||
                  parsed.status().code() == StatusCode::kInvalidArgument)
          << parsed.status().ToString();
    }
  }
}

// Random rule strings: parse must return cleanly.
TEST_P(FuzzSeedTest, RandomRuleStringsNeverCrash) {
  Rng rng(GetParam());
  Schema schema = PaperSchema();
  const std::string tokens[] = {"IF",   "AND",  "THEN", "DUPLICATES",
                                "WITH", "CERTAINTY", "name", "job",
                                ">",    "=",    "0.5",  "1.5",
                                "abc",  "0.8"};
  for (int round = 0; round < 300; ++round) {
    std::string text;
    size_t count = rng.Index(10);
    for (size_t i = 0; i < count; ++i) {
      text += tokens[rng.Index(std::size(tokens))];
      text += " ";
    }
    Result<IdentificationRule> rule = ParseRule(text, schema);
    if (rule.ok()) {
      // Anything accepted must be a structurally valid rule.
      EXPECT_FALSE(rule->conditions.empty());
      EXPECT_GE(rule->certainty, 0.0);
      EXPECT_LE(rule->certainty, 1.0);
    }
  }
}

// Serialization round trip on randomized generated relations.
TEST_P(FuzzSeedTest, GeneratedRelationsRoundTripThroughTextFormat) {
  PersonGenOptions gen;
  gen.num_entities = 10;
  gen.duplicate_rate = 0.5;
  gen.seed = GetParam();
  gen.uncertainty.value_uncertainty_prob = 0.6;
  gen.uncertainty.xtuple_alternative_prob = 0.5;
  gen.uncertainty.maybe_prob = 0.3;
  GeneratedData data = GeneratePersons(gen);
  std::string text = SerializeXRelation(data.relation);
  Result<XRelation> parsed = ParseXRelation(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), data.relation.size());
  for (size_t i = 0; i < parsed->size(); ++i) {
    const XTuple& a = parsed->xtuple(i);
    const XTuple& b = data.relation.xtuple(i);
    EXPECT_EQ(a.id(), b.id());
    ASSERT_EQ(a.size(), b.size());
    EXPECT_NEAR(a.existence_probability(), b.existence_probability(), 1e-6);
    for (size_t alt = 0; alt < a.size(); ++alt) {
      ASSERT_EQ(a.alternative(alt).values.size(),
                b.alternative(alt).values.size());
      for (size_t v = 0; v < a.alternative(alt).values.size(); ++v) {
        const Value& va = a.alternative(alt).values[v];
        const Value& vb = b.alternative(alt).values[v];
        ASSERT_EQ(va.size(), vb.size());
        EXPECT_NEAR(va.null_probability(), vb.null_probability(), 1e-6);
      }
    }
  }
}

// The full pipeline must handle degenerate relations without crashing.
TEST_P(FuzzSeedTest, PipelineSurvivesDegenerateRelations) {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  ASSERT_TRUE(detector.ok());
  // Empty relation.
  XRelation empty("E", PaperSchema());
  Result<DetectionResult> r1 = detector->Run(empty);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->candidate_count, 0u);
  // Single tuple.
  XRelation single("S", PaperSchema());
  single.AppendUnchecked(XTuple(
      "only", {{{Value::Certain("X"), Value::Null()}, 1.0}}));
  Result<DetectionResult> r2 = detector->Run(single);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->candidate_count, 0u);
  // All-null values.
  XRelation nulls("N", PaperSchema());
  nulls.AppendUnchecked(
      XTuple("n1", {{{Value::Null(), Value::Null()}, 1.0}}));
  nulls.AppendUnchecked(
      XTuple("n2", {{{Value::Null(), Value::Null()}, 1.0}}));
  Result<DetectionResult> r3 = detector->Run(nulls);
  ASSERT_TRUE(r3.ok());
  ASSERT_EQ(r3->decisions.size(), 1u);
  // sim(⊥,⊥)=1 per attribute -> combined similarity 1 -> match.
  EXPECT_NEAR(r3->decisions[0].similarity, 1.0, 1e-12);
}

TEST_P(FuzzSeedTest, EveryReductionMethodHandlesUniformKeys) {
  // All tuples share one key value: SNM/blocking degenerate to (nearly)
  // full comparison but must stay correct and terminate.
  Rng rng(GetParam());
  XRelation rel("U", PaperSchema());
  size_t n = 4 + rng.Index(4);
  for (size_t i = 0; i < n; ++i) {
    rel.AppendUnchecked(XTuple(
        "t" + std::to_string(i),
        {{{Value::Certain("same"), Value::Certain("key")}, 1.0}}));
  }
  for (ReductionMethod method :
       {ReductionMethod::kSnmCertainKeys,
        ReductionMethod::kSnmSortingAlternatives,
        ReductionMethod::kSnmUncertainRanking,
        ReductionMethod::kBlockingCertainKeys,
        ReductionMethod::kBlockingAlternatives, ReductionMethod::kCanopy,
        ReductionMethod::kSnmAdaptive, ReductionMethod::kQGramIndex}) {
    DetectorConfig config;
    config.key = {{"name", 3}, {"job", 2}};
    config.weights = {0.8, 0.2};
    config.reduction = method;
    config.window = 4;
    Result<DuplicateDetector> detector =
        DuplicateDetector::Make(config, PaperSchema());
    ASSERT_TRUE(detector.ok()) << ReductionMethodName(method);
    Result<DetectionResult> result = detector->Run(rel);
    ASSERT_TRUE(result.ok()) << ReductionMethodName(method);
    // Identical tuples: every examined pair must classify as a match.
    for (const PairDecisionRecord& rec : result->decisions) {
      EXPECT_EQ(rec.match_class, MatchClass::kMatch)
          << ReductionMethodName(method);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(101, 202, 303, 404, 505),
                         [](const ::testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace pdd
