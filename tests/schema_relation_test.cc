// Unit tests for schemas, tuples, relations, x-tuples and x-relations.

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "pdb/relation.h"
#include "pdb/xrelation.h"

namespace pdd {
namespace {

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, StringsConvenience) {
  Schema s = Schema::Strings({"name", "job"});
  EXPECT_EQ(s.arity(), 2u);
  EXPECT_EQ(s.attribute(0).name, "name");
  EXPECT_EQ(s.attribute(1).type, ValueType::kString);
}

TEST(SchemaTest, IndexOf) {
  Schema s = Schema::Strings({"name", "job"});
  EXPECT_EQ(s.IndexOf("job").value(), 1u);
  EXPECT_FALSE(s.IndexOf("city").ok());
}

TEST(SchemaTest, MakeRejectsDuplicates) {
  EXPECT_FALSE(Schema::Make({{"a", ValueType::kString, {}},
                             {"a", ValueType::kString, {}}})
                   .ok());
  EXPECT_FALSE(Schema::Make({{"", ValueType::kString, {}}}).ok());
}

TEST(SchemaTest, CompatibilityIgnoresVocabulary) {
  Schema a({{"x", ValueType::kString, {"v1"}}});
  Schema b({{"x", ValueType::kString, {}}});
  EXPECT_TRUE(a.CompatibleWith(b));
}

TEST(SchemaTest, CompatibilityChecksNamesAndTypes) {
  Schema a({{"x", ValueType::kString, {}}});
  Schema b({{"x", ValueType::kNumeric, {}}});
  Schema c({{"y", ValueType::kString, {}}});
  EXPECT_FALSE(a.CompatibleWith(b));
  EXPECT_FALSE(a.CompatibleWith(c));
  EXPECT_FALSE(a.CompatibleWith(Schema::Strings({"x", "y"})));
}

// -------------------------------------------------------------- Relation

TEST(RelationTest, AppendValidatesArity) {
  Relation r("R", Schema::Strings({"a", "b"}));
  EXPECT_TRUE(r.Append(Tuple("t1", {Value::Certain("x"),
                                    Value::Certain("y")})).ok());
  EXPECT_FALSE(r.Append(Tuple("t2", {Value::Certain("x")})).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, AppendValidatesMembership) {
  Relation r("R", Schema::Strings({"a"}));
  EXPECT_FALSE(r.Append(Tuple("t", {Value::Certain("x")}, 0.0)).ok());
  EXPECT_FALSE(r.Append(Tuple("t", {Value::Certain("x")}, 1.5)).ok());
  EXPECT_TRUE(r.Append(Tuple("t", {Value::Certain("x")}, 0.6)).ok());
}

TEST(RelationTest, PaperR1HasExpectedShape) {
  Relation r1 = BuildR1();
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_EQ(r1.tuple(0).id(), "t11");
  EXPECT_DOUBLE_EQ(r1.tuple(2).membership(), 0.6);
  // t11's job has 10% ⊥ mass (the person may be jobless).
  EXPECT_NEAR(r1.tuple(0).value(1).null_probability(), 0.1, 1e-12);
}

TEST(RelationTest, ToStringMentionsSchemaAndTuples) {
  Relation r1 = BuildR1();
  std::string s = r1.ToString();
  EXPECT_NE(s.find("R1(name, job)"), std::string::npos);
  EXPECT_NE(s.find("t11"), std::string::npos);
}

// ---------------------------------------------------------------- XTuple

TEST(XTupleTest, ExistenceProbabilityAndMaybe) {
  XRelation r3 = BuildR3();
  const XTuple& t31 = r3.xtuple(0);
  const XTuple& t32 = r3.xtuple(1);
  EXPECT_NEAR(t31.existence_probability(), 1.0, 1e-12);
  EXPECT_FALSE(t31.is_maybe());
  EXPECT_NEAR(t32.existence_probability(), 0.9, 1e-12);
  EXPECT_TRUE(t32.is_maybe());
}

TEST(XTupleTest, ConditionedProbabilitiesSumToOne) {
  XRelation r3 = BuildR3();
  std::vector<double> probs = r3.xtuple(1).ConditionedProbabilities();
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0, 1e-12);
  EXPECT_NEAR(probs[0], 0.3 / 0.9, 1e-12);
  EXPECT_NEAR(probs[2], 0.4 / 0.9, 1e-12);
}

TEST(XTupleTest, ValidateRejectsEmptyAndMixedArity) {
  EXPECT_FALSE(XTuple("t", {}).Validate().ok());
  XTuple mixed("t", {{{Value::Certain("a")}, 0.5},
                     {{Value::Certain("a"), Value::Certain("b")}, 0.5}});
  EXPECT_FALSE(mixed.Validate().ok());
}

TEST(XTupleTest, ValidateRejectsOverflowingMass) {
  XTuple over("t", {{{Value::Certain("a")}, 0.8},
                    {{Value::Certain("b")}, 0.4}});
  EXPECT_FALSE(over.Validate().ok());
}

TEST(XTupleTest, ToStringMarksMaybe) {
  XRelation r4 = BuildR4();
  EXPECT_NE(r4.xtuple(1).ToString().find("?"), std::string::npos);  // t42
  EXPECT_EQ(r4.xtuple(0).ToString().find("?"), std::string::npos);  // t41
}

// ------------------------------------------------------------- XRelation

TEST(XRelationTest, PaperR3R4Shapes) {
  XRelation r3 = BuildR3();
  XRelation r4 = BuildR4();
  EXPECT_EQ(r3.size(), 2u);
  EXPECT_EQ(r4.size(), 3u);
  EXPECT_EQ(r3.TotalAlternatives(), 5u);
  EXPECT_EQ(r4.TotalAlternatives(), 5u);
  // t31's second alternative has the 'mu*' pattern job.
  EXPECT_TRUE(r3.xtuple(0).alternative(1).values[1].has_pattern());
  // t43's first alternative has a ⊥ job.
  EXPECT_TRUE(r4.xtuple(2).alternative(0).values[1].is_null());
}

TEST(XRelationTest, UnionConcatenates) {
  XRelation r34 = BuildR34();
  ASSERT_EQ(r34.size(), 5u);
  EXPECT_EQ(r34.xtuple(0).id(), "t31");
  EXPECT_EQ(r34.xtuple(2).id(), "t41");
  EXPECT_EQ(r34.xtuple(4).id(), "t43");
}

TEST(XRelationTest, UnionRejectsIncompatibleSchemas) {
  XRelation a("A", Schema::Strings({"x"}));
  XRelation b("B", Schema::Strings({"x", "y"}));
  EXPECT_FALSE(XRelation::Union(a, b, "AB").ok());
}

TEST(XRelationTest, UnionRejectsDuplicateIds) {
  XRelation a("A", Schema::Strings({"x"}));
  a.AppendUnchecked(XTuple("t1", {{{Value::Certain("v")}, 1.0}}));
  XRelation b("B", Schema::Strings({"x"}));
  b.AppendUnchecked(XTuple("t1", {{{Value::Certain("w")}, 1.0}}));
  EXPECT_FALSE(XRelation::Union(a, b, "AB").ok());
}

TEST(XRelationTest, AppendValidatesAgainstSchema) {
  XRelation r("R", Schema::Strings({"a", "b"}));
  EXPECT_FALSE(r.Append(XTuple("t", {{{Value::Certain("x")}, 1.0}})).ok());
  EXPECT_TRUE(
      r.Append(XTuple("t", {{{Value::Certain("x"), Value::Certain("y")},
                             1.0}}))
          .ok());
}

TEST(XRelationTest, FromRelationWrapsTuples) {
  Relation r1 = BuildR1();
  XRelation x = XRelation::FromRelation(r1);
  ASSERT_EQ(x.size(), 3u);
  // Membership probability becomes the single alternative's probability.
  EXPECT_NEAR(x.xtuple(2).alternative(0).prob, 0.6, 1e-12);
  EXPECT_TRUE(x.xtuple(2).is_maybe());
  // Attribute-level uncertainty is preserved.
  EXPECT_EQ(x.xtuple(1).alternative(0).values[0].size(), 2u);
}

}  // namespace
}  // namespace pdd
