// Sharded candidate stream suite: for every registered reduction and
// shard counts {1, 2, 7, 16} × batch sizes {1, 4096}, the merged
// sharded stream must be bit-identical to the unsharded stream, the
// executor's shard-aware drain must produce byte-identical reports,
// the shared decision cache must serve a second sharded run entirely
// from hits, and the Reset / hint seams must behave (no stats
// carry-over, no reliance on a count hint).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/decision_cache.h"
#include "core/detector.h"
#include "core/report_writer.h"
#include "datagen/person_generator.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/detection_plan.h"
#include "pipeline/sharded_stream.h"
#include "pipeline/stage_executor.h"
#include "plan/registry.h"
#include "reduction/shard_partitioner.h"
#include "util/checked_math.h"

namespace pdd {
namespace {

GeneratedData ShardTestPersons(size_t entities = 40) {
  PersonGenOptions options;
  options.num_entities = entities;
  options.duplicate_rate = 0.8;
  options.seed = 20100514;  // fixed: results must be reproducible
  return GeneratePersons(options);
}

DetectorConfig ReductionConfig(ReductionMethod method) {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  config.window = 4;
  config.reduction = method;
  return config;
}

std::vector<CandidatePair> DrainStream(CandidateStream& stream,
                                       size_t batch_size) {
  std::vector<CandidatePair> all;
  std::vector<CandidatePair> batch;
  while (stream.NextBatch(batch_size, &batch) > 0) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

void ExpectIdentical(const DetectionResult& a, const DetectionResult& b) {
  EXPECT_EQ(a.candidate_count, b.candidate_count);
  EXPECT_EQ(a.total_pairs, b.total_pairs);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].id1, b.decisions[i].id1) << i;
    EXPECT_EQ(a.decisions[i].id2, b.decisions[i].id2) << i;
    EXPECT_EQ(a.decisions[i].index1, b.decisions[i].index1) << i;
    EXPECT_EQ(a.decisions[i].index2, b.decisions[i].index2) << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.decisions[i].similarity, b.decisions[i].similarity) << i;
    EXPECT_EQ(a.decisions[i].match_class, b.decisions[i].match_class) << i;
  }
}

// The core determinism contract: every registered reduction, sharded
// {1, 2, 7, 16} ways under every strategy's auto-resolution, merges
// back to the exact unsharded candidate sequence at every batch size.
TEST(ShardedStreamTest, MergedShardsEqualUnshardedForEveryReduction) {
  GeneratedData data = ShardTestPersons();
  const ComponentRegistry& registry = ComponentRegistry::Global();
  for (const std::string& name : registry.ReductionNames()) {
    Result<const ComponentRegistry::ReductionEntry*> entry =
        registry.FindReduction(name);
    ASSERT_TRUE(entry.ok()) << name;
    Result<std::shared_ptr<const DetectionPlan>> plan = DetectionPlan::Compile(
        ReductionConfig((*entry)->method), PersonSchema());
    ASSERT_TRUE(plan.ok()) << name << ": " << plan.status().ToString();
    Result<std::unique_ptr<CandidateStream>> unsharded =
        MakeFullStream(**plan, data.relation);
    ASSERT_TRUE(unsharded.ok()) << name;
    std::vector<CandidatePair> expected = DrainStream(**unsharded, 64);
    ASSERT_GT(expected.size(), 0u) << name;
    for (size_t shards : {size_t{1}, size_t{2}, size_t{7}, size_t{16}}) {
      for (size_t batch_size : {size_t{1}, size_t{4096}}) {
        Result<std::unique_ptr<CandidateStream>> sharded =
            MakeShardedFullStream(**plan, data.relation,
                                  {shards, ShardStrategy::kAuto});
        ASSERT_TRUE(sharded.ok())
            << name << ": " << sharded.status().ToString();
        EXPECT_EQ(DrainStream(**sharded, batch_size), expected)
            << name << " diverges at " << shards << " shards, batch size "
            << batch_size;
      }
    }
  }
}

// Every explicit strategy must also merge exactly (auto-resolution is
// a load-balancing choice, never a correctness requirement).
TEST(ShardedStreamTest, EveryStrategyMergesExactly) {
  GeneratedData data = ShardTestPersons();
  for (ReductionMethod method : {ReductionMethod::kFull,
                                 ReductionMethod::kSnmCertainKeys,
                                 ReductionMethod::kBlockingAlternatives}) {
    Result<std::shared_ptr<const DetectionPlan>> plan =
        DetectionPlan::Compile(ReductionConfig(method), PersonSchema());
    ASSERT_TRUE(plan.ok());
    Result<std::unique_ptr<CandidateStream>> unsharded =
        MakeFullStream(**plan, data.relation);
    ASSERT_TRUE(unsharded.ok());
    std::vector<CandidatePair> expected = DrainStream(**unsharded, 64);
    for (ShardStrategy strategy :
         {ShardStrategy::kIndexRange, ShardStrategy::kKeyRange,
          ShardStrategy::kBlockSubset}) {
      Result<std::unique_ptr<CandidateStream>> sharded =
          MakeShardedFullStream(**plan, data.relation, {7, strategy});
      ASSERT_TRUE(sharded.ok()) << ShardStrategyName(strategy);
      EXPECT_EQ(DrainStream(**sharded, 97), expected)
          << ReductionMethodName(method) << " under "
          << ShardStrategyName(strategy);
    }
  }
}

// The executor's shard-aware drain (serial and pooled) must be
// byte-identical to the unsharded run, with per-shard accounting.
TEST(ShardedStreamTest, ExecutorShardDrainIsBitIdentical) {
  GeneratedData data = ShardTestPersons(50);
  for (ReductionMethod method : {ReductionMethod::kSnmCertainKeys,
                                 ReductionMethod::kBlockingCertainKeys,
                                 ReductionMethod::kFull}) {
    Result<DuplicateDetector> detector =
        DuplicateDetector::Make(ReductionConfig(method), PersonSchema());
    ASSERT_TRUE(detector.ok());
    Result<DetectionResult> serial = detector->Run(data.relation);
    ASSERT_TRUE(serial.ok());
    ASSERT_GT(serial->decisions.size(), 0u);
    EXPECT_TRUE(serial->stream_stats.per_shard.empty());
    std::string serial_report = DetectionReport(*serial);
    // workers=2 with 7 shards exercises threads < shards (one thread
    // drains several shards); workers=4 with 2 shards exercises
    // multiple workers per shard.
    for (size_t shards : {size_t{2}, size_t{7}}) {
      for (size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
        Result<std::unique_ptr<CandidateStream>> stream = MakeShardedFullStream(
            detector->plan(), data.relation, {shards, ShardStrategy::kAuto});
        ASSERT_TRUE(stream.ok()) << stream.status().ToString();
        StageExecutorOptions options;
        options.workers = workers;
        options.batch_size = 32;
        StageExecutor executor(detector->shared_plan(), options);
        Result<DetectionResult> result = executor.Execute(**stream);
        ASSERT_TRUE(result.ok()) << shards << " shards";
        ExpectIdentical(*serial, *result);
        EXPECT_EQ(DetectionReport(*result), serial_report)
            << ReductionMethodName(method) << " at " << shards << " shards";
        ASSERT_EQ(result->stream_stats.per_shard.size(), shards);
        size_t batches = 0;
        for (const StreamRunStats& stats : result->stream_stats.per_shard) {
          batches += stats.batches;
        }
        EXPECT_EQ(result->stream_stats.batches, batches);
      }
    }
  }
}

// Pooled shard workers (one worker set per shard) must agree with the
// serial shard drain.
TEST(ShardedStreamTest, PooledShardWorkersMatchSerial) {
  GeneratedData data = ShardTestPersons(50);
  DetectorConfig config = ReductionConfig(ReductionMethod::kSnmCertainKeys);
  config.batch_size = 16;
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(detector.ok());
  detector->set_shard_options({3, ShardStrategy::kAuto});
  Result<DetectionResult> serial = detector->Run(data.relation);
  ASSERT_TRUE(serial.ok());
  DetectorConfig pooled_config = config;
  pooled_config.workers = 6;
  Result<DuplicateDetector> pooled =
      DuplicateDetector::Make(pooled_config, PersonSchema());
  ASSERT_TRUE(pooled.ok());
  pooled->set_shard_options({3, ShardStrategy::kAuto});
  Result<DetectionResult> result = pooled->Run(data.relation);
  ASSERT_TRUE(result.ok());
  ExpectIdentical(*serial, *result);
}

// One ShardedDecisionCache handle shared across all shard workers: a
// second sharded run decides nothing anew (100% hits) and stays
// byte-identical; the cache also carries across shard counts because
// sharding is decision-irrelevant.
TEST(ShardedStreamTest, SharedCacheServesWarmShardedRuns) {
  GeneratedData data = ShardTestPersons(50);
  DetectorConfig config = ReductionConfig(ReductionMethod::kSnmCertainKeys);
  config.workers = 4;
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(detector.ok());
  detector->set_shard_options({4, ShardStrategy::kAuto});
  auto cache = std::make_shared<ShardedDecisionCache>();
  detector->set_cache(cache);
  Result<DetectionResult> cold = detector->Run(data.relation);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->cache_stats.has_value());
  EXPECT_GT(cold->cache_stats->inserts, 0u);
  Result<DetectionResult> warm = detector->Run(data.relation);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->cache_stats.has_value());
  EXPECT_EQ(warm->cache_stats->hits, warm->cache_stats->lookups);
  EXPECT_EQ(warm->cache_stats->inserts, 0u);
  ExpectIdentical(*cold, *warm);
  EXPECT_EQ(DetectionReport(*warm), DetectionReport(*cold));
  // A differently-sharded (and an unsharded) run reuses the same
  // entries: shard keys are decision-irrelevant.
  detector->set_shard_options({9, ShardStrategy::kIndexRange});
  Result<DetectionResult> resharded = detector->Run(data.relation);
  ASSERT_TRUE(resharded.ok());
  EXPECT_EQ(resharded->cache_stats->hits, resharded->cache_stats->lookups);
  ExpectIdentical(*cold, *resharded);
}

// Sharded union and incremental scenarios merge to their unsharded
// counterparts exactly.
TEST(ShardedStreamTest, UnionAndIncrementalShardExactly) {
  PersonGenOptions options;
  options.num_entities = 25;
  options.seed = 4242;
  GeneratedSources sources = GeneratePersonSources(options);
  Result<DuplicateDetector> detector = DuplicateDetector::Make(
      ReductionConfig(ReductionMethod::kSnmCertainKeys), PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> union_plain =
      detector->RunOnSources(sources.source1, sources.source2);
  ASSERT_TRUE(union_plain.ok());
  Result<DetectionResult> incr_plain =
      detector->RunIncremental(sources.source1, sources.source2);
  ASSERT_TRUE(incr_plain.ok());
  ASSERT_GT(incr_plain->decisions.size(), 0u);
  detector->set_shard_options({5, ShardStrategy::kAuto});
  Result<DetectionResult> union_sharded =
      detector->RunOnSources(sources.source1, sources.source2);
  ASSERT_TRUE(union_sharded.ok());
  ExpectIdentical(*union_plain, *union_sharded);
  Result<DetectionResult> incr_sharded =
      detector->RunIncremental(sources.source1, sources.source2);
  ASSERT_TRUE(incr_sharded.ok());
  ExpectIdentical(*incr_plain, *incr_sharded);
  // Incremental candidates all cross into the additions, per shard too.
  for (const PairDecisionRecord& rec : incr_sharded->decisions) {
    EXPECT_GE(rec.index2, sources.source1.size());
  }
}

// Regression (stats carry-over seam): Reset() mid-drain must zero the
// per-shard drain accounting, so a re-drained stream reports exactly
// one drain's stats — not the sum of every drain since construction.
TEST(ShardedStreamTest, ResetMidDrainZeroesShardAccounting) {
  GeneratedData data = ShardTestPersons(40);
  Result<std::shared_ptr<const DetectionPlan>> plan = DetectionPlan::Compile(
      ReductionConfig(ReductionMethod::kSnmCertainKeys), PersonSchema());
  ASSERT_TRUE(plan.ok());
  Result<std::unique_ptr<CandidateStream>> made =
      MakeShardedFullStream(**plan, data.relation, {4, ShardStrategy::kAuto});
  ASSERT_TRUE(made.ok());
  auto* stream = dynamic_cast<ShardedCandidateStream*>(made->get());
  ASSERT_NE(stream, nullptr);
  // Full reference drain on a fresh stream.
  std::vector<CandidatePair> expected = DrainStream(*stream, 32);
  std::vector<StreamRunStats> reference = stream->shard_stats();
  size_t reference_batches = 0;
  for (const StreamRunStats& stats : reference) {
    reference_batches += stats.batches;
  }
  ASSERT_GT(reference_batches, 0u);
  // Partial drain, then Reset: the next full drain must replay the
  // identical sequence and report identical (not doubled) stats.
  stream->Reset();
  std::vector<CandidatePair> batch;
  ASSERT_GT(stream->NextBatch(7, &batch), 0u);
  stream->Reset();
  for (const StreamRunStats& stats : stream->shard_stats()) {
    EXPECT_EQ(stats.batches, 0u);
    EXPECT_EQ(stats.live_candidate_high_water, 0u);
  }
  EXPECT_EQ(DrainStream(*stream, 32), expected);
  std::vector<StreamRunStats> redrained = stream->shard_stats();
  ASSERT_EQ(redrained.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(redrained[i].batches, reference[i].batches) << i;
    EXPECT_EQ(redrained[i].live_candidate_high_water,
              reference[i].live_candidate_high_water)
        << i;
  }
}

// Regression: a sharded stream partially drained through the merged
// NextBatch interface and then handed to the executor must decide
// every remaining pair — the pairs sitting in the per-shard merge
// lookaheads are the front of each shard's remaining sequence, not
// droppable state. (The unsharded RunStream seam has always supported
// partial pre-drains; the sharded one must too.)
TEST(ShardedStreamTest, ExecutorDrainsMergeLookaheadAfterPartialDrain) {
  GeneratedData data = ShardTestPersons(40);
  Result<DuplicateDetector> detector = DuplicateDetector::Make(
      ReductionConfig(ReductionMethod::kSnmCertainKeys), PersonSchema());
  ASSERT_TRUE(detector.ok());
  for (size_t predrain : {size_t{1}, size_t{5}, size_t{33}}) {
    // Reference: the unsharded stream with the same pre-drain.
    Result<std::unique_ptr<CandidateStream>> plain =
        MakeFullStream(detector->plan(), data.relation);
    ASSERT_TRUE(plain.ok());
    std::vector<CandidatePair> skipped;
    ASSERT_EQ((*plain)->NextBatch(predrain, &skipped), predrain);
    Result<DetectionResult> expected = detector->RunStream(**plain);
    ASSERT_TRUE(expected.ok());
    // Same pre-drain through the sharded merge, then the shard-aware
    // executor drain: identical remaining decisions, nothing dropped.
    Result<std::unique_ptr<CandidateStream>> sharded = MakeShardedFullStream(
        detector->plan(), data.relation, {3, ShardStrategy::kAuto});
    ASSERT_TRUE(sharded.ok());
    std::vector<CandidatePair> sharded_skipped;
    ASSERT_EQ((*sharded)->NextBatch(predrain, &sharded_skipped), predrain);
    EXPECT_EQ(sharded_skipped, skipped);
    Result<DetectionResult> rest = detector->RunStream(**sharded);
    ASSERT_TRUE(rest.ok());
    ExpectIdentical(*expected, *rest);
  }
}

// Executor re-run over a Reset sharded stream: stream_stats (including
// per-shard) must equal the first run's, not accumulate.
TEST(ShardedStreamTest, ExecutorRerunAfterResetDoesNotDoubleCount) {
  GeneratedData data = ShardTestPersons(40);
  Result<DuplicateDetector> detector = DuplicateDetector::Make(
      ReductionConfig(ReductionMethod::kBlockingCertainKeys), PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<std::unique_ptr<CandidateStream>> stream = MakeShardedFullStream(
      detector->plan(), data.relation, {3, ShardStrategy::kAuto});
  ASSERT_TRUE(stream.ok());
  Result<DetectionResult> first = detector->RunStream(**stream);
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first->decisions.size(), 0u);
  (*stream)->Reset();
  Result<DetectionResult> second = detector->RunStream(**stream);
  ASSERT_TRUE(second.ok());
  ExpectIdentical(*first, *second);
  EXPECT_EQ(second->stream_stats.batches, first->stream_stats.batches);
  ASSERT_EQ(second->stream_stats.per_shard.size(),
            first->stream_stats.per_shard.size());
  for (size_t i = 0; i < first->stream_stats.per_shard.size(); ++i) {
    EXPECT_EQ(second->stream_stats.per_shard[i].batches,
              first->stream_stats.per_shard[i].batches)
        << i;
  }
}

/// A stream that refuses to hint its candidate count — the shape every
/// hint consumer must tolerate (shard sources over unknown-size ranges
/// cannot know their counts pre-drain).
class HintlessStream : public CandidateStream {
 public:
  HintlessStream(const XRelation* rel, std::vector<CandidatePair> candidates)
      : rel_(rel), candidates_(std::move(candidates)) {}

  const XRelation& relation() const override { return *rel_; }
  size_t NextBatch(size_t max_batch,
                   std::vector<CandidatePair>* out) override {
    out->clear();
    while (out->size() < max_batch && next_ < candidates_.size()) {
      out->push_back(candidates_[next_++]);
    }
    return out->size();
  }
  void Reset() override { next_ = 0; }
  // candidate_count_hint() stays the base-class nullopt.
  size_t total_pairs() const override {
    return TriangularPairCount(rel_->size());
  }
  std::string name() const override { return "hintless"; }

 private:
  const XRelation* rel_;
  std::vector<CandidatePair> candidates_;
  size_t next_ = 0;
};

// A hintless source must execute correctly (and identically to the
// hinted run) on both executor paths: the hint is an optional
// reservation aid, never control flow.
TEST(ShardedStreamTest, HintlessSourceExecutesIdentically) {
  GeneratedData data = ShardTestPersons(30);
  Result<DuplicateDetector> detector = DuplicateDetector::Make(
      ReductionConfig(ReductionMethod::kFull), PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> reference = detector->Run(data.relation);
  ASSERT_TRUE(reference.ok());
  std::vector<CandidatePair> candidates;
  for (size_t i = 0; i < data.relation.size(); ++i) {
    for (size_t j = i + 1; j < data.relation.size(); ++j) {
      candidates.push_back({i, j});
    }
  }
  for (size_t workers : {size_t{0}, size_t{3}}) {
    HintlessStream stream(&data.relation, candidates);
    EXPECT_FALSE(stream.candidate_count_hint().has_value());
    StageExecutorOptions options;
    options.workers = workers;
    options.batch_size = 32;
    StageExecutor executor(detector->shared_plan(), options);
    Result<DetectionResult> result = executor.Execute(stream);
    ASSERT_TRUE(result.ok()) << workers;
    ExpectIdentical(*reference, *result);
  }
  // Native shard sources are exactly such hintless sources.
  Result<std::unique_ptr<CandidateStream>> sharded = MakeShardedFullStream(
      detector->plan(), data.relation, {2, ShardStrategy::kKeyRange});
  ASSERT_TRUE(sharded.ok());
  EXPECT_FALSE((*sharded)->candidate_count_hint().has_value());
  Result<DetectionResult> result = detector->RunStream(**sharded);
  ASSERT_TRUE(result.ok());
  ExpectIdentical(*reference, *result);
}

// Spec keys: shard.count / shard.strategy round-trip, fingerprint the
// plan only when count != 1, and never touch the decision fingerprint.
TEST(ShardedStreamTest, ShardSpecKeysFingerprintOnlyWhenSharded) {
  DetectorConfig base = ReductionConfig(ReductionMethod::kSnmCertainKeys);
  DetectorConfig sharded = base;
  sharded.shard_count = 4;
  sharded.shard_strategy = ShardStrategy::kKeyRange;
  PlanSpec base_spec = base.ToSpec();
  PlanSpec sharded_spec = sharded.ToSpec();
  EXPECT_FALSE(base_spec.params().Has("shard.count"));
  EXPECT_TRUE(sharded_spec.params().Has("shard.count"));
  EXPECT_NE(base_spec.Fingerprint(), sharded_spec.Fingerprint());
  // Round-trip through the declarative form.
  Result<DetectorConfig> parsed = DetectorConfig::FromSpec(sharded_spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->shard_count, 4u);
  EXPECT_EQ(parsed->shard_strategy, ShardStrategy::kKeyRange);
  // Decision fingerprints agree: sharding can never invalidate cached
  // decisions.
  Result<std::shared_ptr<const DetectionPlan>> base_plan =
      DetectionPlan::Compile(base, PersonSchema());
  Result<std::shared_ptr<const DetectionPlan>> sharded_plan =
      DetectionPlan::Compile(sharded, PersonSchema());
  ASSERT_TRUE(base_plan.ok());
  ASSERT_TRUE(sharded_plan.ok());
  EXPECT_NE((*base_plan)->fingerprint(), (*sharded_plan)->fingerprint());
  EXPECT_EQ((*base_plan)->decision_fingerprint(),
            (*sharded_plan)->decision_fingerprint());
  // A plan-carried shard count actually shards the run.
  GeneratedData data = ShardTestPersons(30);
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(sharded, PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result = detector->Run(data.relation);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stream_stats.per_shard.size(), 4u);
  // Unknown strategy names fail with the registry's suggestion error.
  Result<ShardStrategy> unknown =
      ComponentRegistry::Global().FindShardStrategy("key_rnage");
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().ToString().find("key_range"), std::string::npos);
  // Validate rejects a zero shard count.
  DetectorConfig zero = base;
  zero.shard_count = 0;
  EXPECT_FALSE(zero.Validate().ok());
}

// The partitioners: every tuple owned exactly once, by a shard below
// the count, under every strategy and lopsided shard counts.
TEST(ShardPartitionerTest, AssignmentsCoverEveryTupleExactlyOnce) {
  std::vector<std::string> keys;
  for (size_t i = 0; i < 100; ++i) {
    keys.push_back("k" + std::to_string(i % 13));
  }
  for (uint32_t shards : {1u, 2u, 7u, 16u, 101u}) {
    for (const ShardAssignment& assignment :
         {AssignIndexRanges(keys.size(), shards),
          AssignKeyRanges(keys, shards), AssignBlockSubsets(keys, shards)}) {
      EXPECT_EQ(assignment.shard_count, shards);
      ASSERT_EQ(assignment.owner.size(), keys.size());
      for (size_t tuple = 0; tuple < keys.size(); ++tuple) {
        EXPECT_LT(assignment.owner[tuple], shards);
        uint32_t owners = 0;
        for (uint32_t s = 0; s < shards; ++s) {
          if (assignment.Owns(tuple, s)) ++owners;
        }
        EXPECT_EQ(owners, 1u) << tuple;
      }
    }
    // Block subsets keep equal-keyed tuples together.
    ShardAssignment blocks = AssignBlockSubsets(keys, shards);
    for (size_t a = 0; a < keys.size(); ++a) {
      for (size_t b = a + 1; b < keys.size(); ++b) {
        if (keys[a] == keys[b]) {
          EXPECT_EQ(blocks.owner[a], blocks.owner[b]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace pdd
