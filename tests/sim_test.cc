// Unit and property tests for the comparison function library,
// including every similarity value the paper computes with the
// normalized Hamming distance.

#include <gtest/gtest.h>

#include "sim/edit_distance.h"
#include "sim/jaro.h"
#include "sim/numeric_similarity.h"
#include "sim/phonetic.h"
#include "sim/registry.h"
#include "sim/token_similarity.h"
#include "util/random.h"

namespace pdd {
namespace {

// ------------------------------------------------------- paper's values

TEST(HammingTest, PaperTimKim) {
  NormalizedHammingComparator cmp;
  EXPECT_NEAR(cmp.Compare("Tim", "Kim"), 2.0 / 3.0, 1e-12);
}

TEST(HammingTest, PaperMachinistMechanic) {
  NormalizedHammingComparator cmp;
  EXPECT_NEAR(cmp.Compare("machinist", "mechanic"), 5.0 / 9.0, 1e-12);
}

TEST(HammingTest, PaperJimTom) {
  NormalizedHammingComparator cmp;
  EXPECT_NEAR(cmp.Compare("Jim", "Tom"), 1.0 / 3.0, 1e-12);
}

TEST(HammingTest, PaperBakerMechanic) {
  NormalizedHammingComparator cmp;
  EXPECT_NEAR(cmp.Compare("baker", "mechanic"), 0.0, 1e-12);
}

// ---------------------------------------------------------- edit family

TEST(HammingTest, UnequalLengthsCountAsMismatch) {
  EXPECT_EQ(GeneralizedHammingDistance("abc", "abcd"), 1u);
  EXPECT_EQ(GeneralizedHammingDistance("abc", ""), 3u);
  NormalizedHammingComparator cmp;
  EXPECT_NEAR(cmp.Compare("abc", "abcd"), 0.75, 1e-12);
}

TEST(HammingTest, EmptyStringsAreIdentical) {
  NormalizedHammingComparator cmp;
  EXPECT_DOUBLE_EQ(cmp.Compare("", ""), 1.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("a", ""), 0.0);
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(LevenshteinTest, SimilarityNormalizesByMaxLength) {
  LevenshteinComparator cmp;
  EXPECT_NEAR(cmp.Compare("kitten", "sitting"), 1.0 - 3.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(cmp.Compare("", ""), 1.0);
}

TEST(DamerauTest, TranspositionIsOneEdit) {
  EXPECT_EQ(DamerauLevenshteinDistance("ab", "ba"), 1u);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2u);
  EXPECT_EQ(DamerauLevenshteinDistance("Tim", "Tmi"), 1u);
}

TEST(DamerauTest, NeverExceedsLevenshtein) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::string a, b;
    for (int c = 0; c < 6; ++c) {
      a += static_cast<char>('a' + rng.Index(4));
      b += static_cast<char>('a' + rng.Index(4));
    }
    EXPECT_LE(DamerauLevenshteinDistance(a, b), LevenshteinDistance(a, b));
  }
}

TEST(LcsTest, KnownValues) {
  EXPECT_EQ(LongestCommonSubsequence("ABCBDAB", "BDCABA"), 4u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "def"), 0u);
  LcsComparator cmp;
  EXPECT_NEAR(cmp.Compare("ABCBDAB", "BDCABA"), 4.0 / 7.0, 1e-12);
}

// ----------------------------------------------------------------- Jaro

TEST(JaroTest, ClassicExamples) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DWAYNE", "DUANE"), 0.822222, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
}

TEST(JaroTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, BoostsCommonPrefix) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_GE(JaroWinklerSimilarity("prefixed", "prefixes"),
            JaroSimilarity("prefixed", "prefixes"));
}

TEST(JaroWinklerTest, PrefixCapAtFour) {
  // Identical 10-char prefix must not push similarity above 1.
  EXPECT_LE(JaroWinklerSimilarity("abcdefghij", "abcdefghik"), 1.0);
}

// ------------------------------------------------------------ q-grams &
// tokens

TEST(QGramTest, IdenticalAndDisjoint) {
  QGramComparator cmp(2);
  EXPECT_DOUBLE_EQ(cmp.Compare("night", "night"), 1.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("", ""), 1.0);
  EXPECT_GT(cmp.Compare("night", "nacht"), 0.0);
  EXPECT_LT(cmp.Compare("night", "nacht"), 1.0);
}

TEST(QGramTest, MultisetSemantics) {
  QGramComparator cmp(2);
  // "aaa" vs "aa": padded bigrams {#a,aa,aa,a#} vs {#a,aa,a#}.
  EXPECT_NEAR(cmp.Compare("aaa", "aa"), 2.0 * 3.0 / 7.0, 1e-12);
}

TEST(JaccardTest, TokenOverlap) {
  JaccardTokenComparator cmp;
  EXPECT_DOUBLE_EQ(cmp.Compare("john smith", "smith john"), 1.0);
  EXPECT_NEAR(cmp.Compare("john smith", "john doe"), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cmp.Compare("", ""), 1.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("a", "b"), 0.0);
}

TEST(DiceTest, TokenOverlap) {
  DiceTokenComparator cmp;
  EXPECT_NEAR(cmp.Compare("john smith", "john doe"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(cmp.Compare("", ""), 1.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("x", ""), 0.0);
}

TEST(CosineTest, BoundsAndIdentity) {
  CosineQGramComparator cmp(2);
  EXPECT_NEAR(cmp.Compare("hello", "hello"), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cmp.Compare("abc", "xyz"), 0.0);
  double v = cmp.Compare("hello", "hallo");
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(MongeElkanTest, BestTokenAlignment) {
  JaroWinklerComparator inner;
  MongeElkanComparator cmp(&inner);
  // Token order must not matter much.
  double forward = cmp.Compare("peter john smith", "smith peter john");
  EXPECT_GT(forward, 0.95);
  EXPECT_DOUBLE_EQ(cmp.Compare("", ""), 1.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("a", ""), 0.0);
}

TEST(MongeElkanTest, IsSymmetric) {
  JaroWinklerComparator inner;
  MongeElkanComparator cmp(&inner);
  EXPECT_NEAR(cmp.Compare("john q smith", "jon smith"),
              cmp.Compare("jon smith", "john q smith"), 1e-12);
}

// -------------------------------------------------------------- phonetic

TEST(SoundexTest, ClassicCodes) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, EmptyAndNonAlpha) {
  EXPECT_EQ(Soundex(""), "0000");
  EXPECT_EQ(Soundex("123"), "0000");
  EXPECT_EQ(Soundex("  Lee"), "L000");
}

TEST(SoundexComparatorTest, SoundsAlikeScoresHigh) {
  SoundexComparator cmp;
  EXPECT_DOUBLE_EQ(cmp.Compare("Robert", "Rupert"), 1.0);
  EXPECT_LT(cmp.Compare("Robert", "Baker"), 1.0);
}

TEST(SynonymComparatorTest, GroupsScoreSynonymValue) {
  ExactComparator inner;
  SynonymComparator cmp({{"baker", "confectioner"}}, &inner, 0.9);
  EXPECT_DOUBLE_EQ(cmp.Compare("baker", "confectioner"), 0.9);
  EXPECT_DOUBLE_EQ(cmp.Compare("Baker", "CONFECTIONER"), 0.9);
  EXPECT_DOUBLE_EQ(cmp.Compare("baker", "baker"), 1.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("baker", "pilot"), 0.0);
}

TEST(SynonymComparatorTest, FallsBackToInner) {
  NormalizedHammingComparator inner;
  SynonymComparator cmp({{"baker", "confectioner"}}, &inner, 0.9);
  EXPECT_NEAR(cmp.Compare("Tim", "Kim"), 2.0 / 3.0, 1e-12);
}

// --------------------------------------------------------------- numeric

TEST(NumericTest, LinearDecay) {
  NumericComparator cmp(10.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("5", "5"), 1.0);
  EXPECT_NEAR(cmp.Compare("5", "10"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(cmp.Compare("0", "100"), 0.0);
}

TEST(NumericTest, NonNumericFallsBackToExact) {
  NumericComparator cmp(10.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("abc", "abd"), 0.0);
}

TEST(RelativeNumericTest, ScaleFree) {
  RelativeNumericComparator cmp;
  EXPECT_DOUBLE_EQ(cmp.Compare("0", "0"), 1.0);
  EXPECT_NEAR(cmp.Compare("100", "90"), 0.9, 1e-12);
  EXPECT_NEAR(cmp.Compare("1.0", "0.9"), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(cmp.Compare("1", "-1"), 0.0);
}

// --------------------------------------------------------------- others

TEST(PrefixComparatorTest, LcpOverMaxLength) {
  PrefixComparator cmp;
  EXPECT_NEAR(cmp.Compare("Johan", "John"), 3.0 / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(cmp.Compare("", ""), 1.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("abc", "xbc"), 0.0);
}

TEST(ExactIgnoreCaseTest, CaseInsensitive) {
  ExactIgnoreCaseComparator cmp;
  EXPECT_DOUBLE_EQ(cmp.Compare("Tim", "tim"), 1.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("Tim", "Tom"), 0.0);
}

// -------------------------------------------------------------- registry

TEST(RegistryTest, ResolvesAllDocumentedNames) {
  for (const std::string& name : ComparatorNames()) {
    Result<const Comparator*> cmp = GetComparator(name);
    ASSERT_TRUE(cmp.ok()) << name;
    EXPECT_NE(*cmp, nullptr);
  }
  EXPECT_GE(ComparatorNames().size(), 18u);
}

TEST(RegistryTest, UnknownNameFails) {
  EXPECT_FALSE(GetComparator("no_such_comparator").ok());
  EXPECT_EQ(GetComparator("no_such_comparator").status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, NamesRoundTrip) {
  Result<const Comparator*> cmp = GetComparator("jaro_winkler");
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ((*cmp)->name(), "jaro_winkler");
}

// ------------------------------------------------- comparator properties
// Parameterized sweep: every registered comparator must be normalized,
// symmetric and reflexive on a randomized word corpus.

class ComparatorPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ComparatorPropertyTest, NormalizedSymmetricReflexive) {
  Result<const Comparator*> cmp_result = GetComparator(GetParam());
  ASSERT_TRUE(cmp_result.ok());
  const Comparator& cmp = **cmp_result;
  Rng rng(42);
  std::vector<std::string> corpus = {"", "a", "Tim", "Tom", "machinist",
                                     "mechanic", "John Smith", "42", "3.14"};
  for (int i = 0; i < 40; ++i) {
    std::string w;
    size_t len = rng.Index(12);
    for (size_t c = 0; c < len; ++c) {
      w += static_cast<char>('a' + rng.Index(26));
    }
    corpus.push_back(w);
  }
  for (const std::string& a : corpus) {
    EXPECT_NEAR(cmp.Compare(a, a), 1.0, 1e-9) << cmp.name() << " on " << a;
    for (const std::string& b : corpus) {
      double ab = cmp.Compare(a, b);
      EXPECT_GE(ab, 0.0) << cmp.name() << " " << a << "/" << b;
      EXPECT_LE(ab, 1.0 + 1e-12) << cmp.name() << " " << a << "/" << b;
      EXPECT_NEAR(ab, cmp.Compare(b, a), 1e-9)
          << cmp.name() << " " << a << "/" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllComparators, ComparatorPropertyTest,
    ::testing::Values("exact", "exact_nocase", "prefix", "hamming",
                      "levenshtein", "damerau", "lcs", "jaro", "jaro_winkler",
                      "qgram2", "qgram3", "jaccard", "dice", "cosine",
                      "monge_elkan", "soundex", "numeric", "numeric_rel"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

}  // namespace
}  // namespace pdd
