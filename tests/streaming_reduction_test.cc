// Streaming ≡ materialized equivalence suite: for every registered
// reduction method, the concatenation of PairGenerator::Stream()
// batches must equal Generate() output exactly — order, deduplication
// and count — across batch sizes, and the end-to-end streamed
// DetectionResult must stay bit-identical across serial, pooled and
// cached executions. This is the contract that lets the pipeline
// delete the O(candidates) buffer without perturbing a single report.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/decision_cache.h"
#include "core/detector.h"
#include "datagen/person_generator.h"
#include "keys/key_spec.h"
#include "reduction/snm_certain_keys.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/detection_plan.h"
#include "pipeline/stage_executor.h"
#include "plan/registry.h"
#include "reduction/full_pairs.h"
#include "reduction/pair_generator.h"
#include "reduction/pruning.h"
#include "util/checked_math.h"

namespace pdd {
namespace {

GeneratedData StreamTestPersons(size_t entities = 40) {
  PersonGenOptions options;
  options.num_entities = entities;
  options.duplicate_rate = 0.8;
  options.seed = 20100514;  // fixed: results must be reproducible
  return GeneratePersons(options);
}

DetectorConfig ReductionConfig(ReductionMethod method) {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  config.window = 4;
  config.reduction = method;
  return config;
}

std::vector<CandidatePair> Drain(PairBatchSource& source, size_t batch_size) {
  std::vector<CandidatePair> all;
  std::vector<CandidatePair> batch;
  size_t pulled = 0;
  bool saw_short_batch = false;
  while ((pulled = source.NextBatch(batch_size, &batch)) > 0) {
    // Every batch but the last must be full (the contract that keeps
    // batch boundaries independent of the underlying source).
    EXPECT_FALSE(saw_short_batch) << "short batch mid-stream";
    saw_short_batch = pulled < batch_size;
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

TEST(StreamingReductionTest, EveryRegisteredReductionStreamsItsGenerateOutput) {
  GeneratedData data = StreamTestPersons();
  const ComponentRegistry& registry = ComponentRegistry::Global();
  for (const std::string& name : registry.ReductionNames()) {
    Result<const ComponentRegistry::ReductionEntry*> entry =
        registry.FindReduction(name);
    ASSERT_TRUE(entry.ok()) << name;
    Result<std::shared_ptr<const DetectionPlan>> plan = DetectionPlan::Compile(
        ReductionConfig((*entry)->method), PersonSchema());
    ASSERT_TRUE(plan.ok()) << name << ": " << plan.status().ToString();
    std::unique_ptr<PairGenerator> generator = (*plan)->MakePairGenerator();
    // The registry's capability flag must mirror the built instance.
    EXPECT_EQ((*entry)->native_streaming, generator->native_streaming())
        << name;
    Result<std::vector<CandidatePair>> generated =
        generator->Generate(data.relation);
    ASSERT_TRUE(generated.ok()) << name << ": "
                                << generated.status().ToString();
    EXPECT_GT(generated->size(), 0u) << name;
    for (size_t batch_size : {size_t{1}, size_t{7}, size_t{4096}}) {
      Result<std::unique_ptr<PairBatchSource>> source =
          generator->Stream(data.relation);
      ASSERT_TRUE(source.ok()) << name << ": " << source.status().ToString();
      std::vector<CandidatePair> streamed = Drain(**source, batch_size);
      EXPECT_EQ(streamed, *generated)
          << name << " diverges at batch size " << batch_size;
    }
  }
}

TEST(StreamingReductionTest, PruningFilterStreamsItsGenerateOutput) {
  GeneratedData data = StreamTestPersons();
  PruningOptions options;
  options.threshold = 0.5;
  PruningFilter pruned(std::make_unique<FullPairs>(), options);
  EXPECT_TRUE(pruned.native_streaming());  // full streams natively
  Result<std::vector<CandidatePair>> generated = pruned.Generate(data.relation);
  ASSERT_TRUE(generated.ok());
  ASSERT_GT(generated->size(), 0u);
  // The filter must actually prune for the test to mean anything.
  EXPECT_LT(generated->size(), TriangularPairCount(data.relation.size()));
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{4096}}) {
    Result<std::unique_ptr<PairBatchSource>> source =
        pruned.Stream(data.relation);
    ASSERT_TRUE(source.ok());
    EXPECT_EQ(Drain(**source, batch_size), *generated) << batch_size;
  }
}

TEST(StreamingReductionTest, StreamRejectsInvalidWindowLikeGenerate) {
  GeneratedData data = StreamTestPersons(5);
  Result<KeySpec> key =
      KeySpec::FromNames({{"name", 3}, {"job", 2}}, PersonSchema());
  ASSERT_TRUE(key.ok());
  SnmCertainKeys snm(*key, SnmCertainKeyOptions{/*window=*/1});
  EXPECT_FALSE(snm.Generate(data.relation).ok());
  EXPECT_FALSE(snm.Stream(data.relation).ok());
}

void ExpectIdentical(const DetectionResult& a, const DetectionResult& b) {
  EXPECT_EQ(a.candidate_count, b.candidate_count);
  EXPECT_EQ(a.total_pairs, b.total_pairs);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].id1, b.decisions[i].id1) << i;
    EXPECT_EQ(a.decisions[i].id2, b.decisions[i].id2) << i;
    EXPECT_EQ(a.decisions[i].index1, b.decisions[i].index1) << i;
    EXPECT_EQ(a.decisions[i].index2, b.decisions[i].index2) << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.decisions[i].similarity, b.decisions[i].similarity) << i;
    EXPECT_EQ(a.decisions[i].match_class, b.decisions[i].match_class) << i;
  }
}

TEST(StreamingReductionTest, StreamedRunsAreBitIdenticalSerialPoolCached) {
  GeneratedData data = StreamTestPersons(50);
  for (ReductionMethod method : {ReductionMethod::kSnmCertainKeys,
                                 ReductionMethod::kBlockingCertainKeys}) {
    Result<DuplicateDetector> detector =
        DuplicateDetector::Make(ReductionConfig(method), PersonSchema());
    ASSERT_TRUE(detector.ok());
    Result<DetectionResult> serial = detector->Run(data.relation);
    ASSERT_TRUE(serial.ok());
    ASSERT_GT(serial->decisions.size(), 0u);
    for (size_t workers : {size_t{2}, size_t{4}}) {
      for (size_t batch_size : {size_t{1}, size_t{7}, size_t{4096}}) {
        Result<std::unique_ptr<CandidateStream>> stream =
            MakeFullStream(detector->plan(), data.relation);
        ASSERT_TRUE(stream.ok());
        StageExecutorOptions options;
        options.workers = workers;
        options.batch_size = batch_size;
        StageExecutor executor(detector->shared_plan(), options);
        Result<DetectionResult> pooled = executor.Execute(**stream);
        ASSERT_TRUE(pooled.ok());
        ExpectIdentical(*serial, *pooled);
      }
    }
    // Cached runs (cold, then 100%-hit warm) stay bit-identical too.
    auto cache = std::make_shared<ShardedDecisionCache>();
    detector->set_cache(cache);
    Result<DetectionResult> cold = detector->Run(data.relation);
    ASSERT_TRUE(cold.ok());
    ExpectIdentical(*serial, *cold);
    Result<DetectionResult> warm = detector->Run(data.relation);
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(warm->cache_stats.has_value());
    EXPECT_EQ(warm->cache_stats->hits, warm->cache_stats->lookups);
    ExpectIdentical(*serial, *warm);
  }
}

TEST(StreamingReductionTest, NativeStreamingBoundsLiveCandidates) {
  GeneratedData data = StreamTestPersons(300);
  DetectorConfig config = ReductionConfig(ReductionMethod::kSnmCertainKeys);
  config.window = 6;
  config.batch_size = 64;
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<DetectionResult> result = detector->Run(data.relation);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->candidate_count, 0u);
  // Live candidates on the streamed path: one batch plus one tuple's
  // window partners — nowhere near the materialized candidate vector.
  EXPECT_LE(result->stream_stats.live_candidate_high_water,
            config.batch_size + 2 * config.window);
  EXPECT_LT(result->stream_stats.live_candidate_high_water,
            result->candidate_count / 2);
  EXPECT_GT(result->stream_stats.batches, 1u);
}

// Regression (stats carry-over seam): a partially-drained stream that
// is Reset and re-executed must report exactly one drain's stream
// accounting — batches and the live-candidate high-water must not
// carry over across re-opens (ExecutionStatsReport would double-count).
TEST(StreamingReductionTest, ResetMidDrainDoesNotCarryDrainAccounting) {
  GeneratedData data = StreamTestPersons(50);
  DetectorConfig config = ReductionConfig(ReductionMethod::kSnmCertainKeys);
  config.batch_size = 16;
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<std::unique_ptr<CandidateStream>> stream =
      MakeFullStream(detector->plan(), data.relation);
  ASSERT_TRUE(stream.ok());
  // Reference: a clean full drain.
  Result<DetectionResult> reference = detector->RunStream(**stream);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->stream_stats.batches, 1u);
  // Partially drain after a Reset, Reset again mid-drain, re-execute:
  // the accounting must equal the clean drain's, not accumulate.
  (*stream)->Reset();
  std::vector<CandidatePair> batch;
  ASSERT_GT((*stream)->NextBatch(8, &batch), 0u);
  ASSERT_GT((*stream)->NextBatch(8, &batch), 0u);
  (*stream)->Reset();
  Result<DetectionResult> second = detector->RunStream(**stream);
  ASSERT_TRUE(second.ok());
  ExpectIdentical(*reference, *second);
  EXPECT_EQ(second->stream_stats.batches, reference->stream_stats.batches);
  EXPECT_EQ(second->stream_stats.live_candidate_high_water,
            reference->stream_stats.live_candidate_high_water);
}

// The candidate-count hint is a reservation aid only: a pull-based
// native stream reports none, and the executor must run it exactly like
// a hinted one (no reserve(0) capacity pinning, no behavioral fork).
TEST(StreamingReductionTest, NativeStreamsAreHintlessAndStillExact) {
  GeneratedData data = StreamTestPersons(40);
  DetectorConfig config = ReductionConfig(ReductionMethod::kSnmCertainKeys);
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  ASSERT_TRUE(detector.ok());
  Result<std::unique_ptr<CandidateStream>> stream =
      MakeFullStream(detector->plan(), data.relation);
  ASSERT_TRUE(stream.ok());
  // Native streaming: count unknown before the drain.
  EXPECT_FALSE((*stream)->candidate_count_hint().has_value());
  Result<DetectionResult> hintless = detector->RunStream(**stream);
  ASSERT_TRUE(hintless.ok());
  ASSERT_GT(hintless->decisions.size(), 0u);
  // Same candidates through the (hinted) materialized stream: the
  // decisions and their order must not depend on the hint.
  std::unique_ptr<PairGenerator> generator =
      detector->plan().MakePairGenerator();
  Result<std::vector<CandidatePair>> candidates =
      generator->Generate(data.relation);
  ASSERT_TRUE(candidates.ok());
  MaterializedCandidateStream materialized(
      "full", std::nullopt, &data.relation, std::move(*candidates),
      TriangularPairCount(data.relation.size()));
  ASSERT_TRUE(materialized.candidate_count_hint().has_value());
  Result<DetectionResult> hinted = detector->RunStream(materialized);
  ASSERT_TRUE(hinted.ok());
  ExpectIdentical(*hinted, *hintless);
}

TEST(CheckedMathTest, SaturatesInsteadOfWrapping) {
  constexpr size_t kMax = std::numeric_limits<size_t>::max();
  EXPECT_EQ(TriangularPairCount(0), 0u);
  EXPECT_EQ(TriangularPairCount(1), 0u);
  EXPECT_EQ(TriangularPairCount(2), 1u);
  EXPECT_EQ(TriangularPairCount(5), 10u);
  EXPECT_EQ(TriangularPairCount(100000), 4999950000u);
  EXPECT_EQ(TriangularPairCount(kMax), kMax);        // would wrap naively
  EXPECT_EQ(SaturatingMul(kMax, 2), kMax);
  EXPECT_EQ(SaturatingMul(0, kMax), 0u);
  EXPECT_EQ(SaturatingAdd(kMax, 1), kMax);
  EXPECT_EQ(SaturatingAdd(2, 3), 5u);
}

}  // namespace
}  // namespace pdd
