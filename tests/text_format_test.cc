// Unit tests for the probabilistic relation text format: value syntax,
// full relation round trips, and parser error reporting.

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "pdb/text_format.h"

namespace pdd {
namespace {

// ------------------------------------------------------------ value level

TEST(ValueFormatTest, SerializeCertainNullPattern) {
  EXPECT_EQ(SerializeValue(Value::Certain("Tim")), "Tim");
  EXPECT_EQ(SerializeValue(Value::Null()), "_");
  EXPECT_EQ(SerializeValue(Value::Pattern("mu")), "mu*");
}

TEST(ValueFormatTest, SerializeDistribution) {
  Value v = Value::Dist({{"John", 0.5}, {"Johan", 0.5}});
  EXPECT_EQ(SerializeValue(v), "{John:0.5, Johan:0.5}");
}

TEST(ValueFormatTest, ParseCertain) {
  Result<Value> v = ParseValue("Tim");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Certain("Tim"));
}

TEST(ValueFormatTest, ParseNull) {
  Result<Value> v = ParseValue(" _ ");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ValueFormatTest, ParsePattern) {
  Result<Value> v = ParseValue("mu*");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->has_pattern());
  EXPECT_EQ(v->alternatives()[0].text, "mu");
}

TEST(ValueFormatTest, ParseDistribution) {
  Result<Value> v = ParseValue("{machinist:0.7, mechanic:0.2}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 2u);
  EXPECT_NEAR(v->null_probability(), 0.1, 1e-12);
}

TEST(ValueFormatTest, ParseDistributionWithPatternEntry) {
  Result<Value> v = ParseValue("{musician:0.5, mu*:0.3}");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->has_pattern());
  EXPECT_NEAR(v->existence_probability(), 0.8, 1e-12);
}

TEST(ValueFormatTest, ValueRoundTrips) {
  for (const Value& v :
       {Value::Certain("Tim"), Value::Null(), Value::Pattern("mu", 1.0),
        Value::Dist({{"a", 0.25}, {"b", 0.5}}),
        Value::Unchecked({{"x", 0.3, false}, {"mu", 0.4, true}})}) {
    Result<Value> parsed = ParseValue(SerializeValue(v));
    ASSERT_TRUE(parsed.ok()) << SerializeValue(v);
    EXPECT_EQ(*parsed, v) << SerializeValue(v);
  }
}

TEST(ValueFormatTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseValue("").ok());
  EXPECT_FALSE(ParseValue("{a:0.5").ok());
  EXPECT_FALSE(ParseValue("{a}").ok());
  EXPECT_FALSE(ParseValue("{a:x}").ok());
  EXPECT_FALSE(ParseValue("{:0.5}").ok());
  EXPECT_FALSE(ParseValue("{a:0.6, a:0.6}").ok());  // sums above 1
  EXPECT_FALSE(ParseValue("*").ok());
}

// --------------------------------------------------------- relation level

TEST(RelationFormatTest, PaperRelationsRoundTrip) {
  for (const XRelation& rel : {BuildR3(), BuildR4(), BuildR34()}) {
    std::string text = SerializeXRelation(rel);
    Result<XRelation> parsed = ParseXRelation(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
    EXPECT_EQ(parsed->name(), rel.name());
    ASSERT_EQ(parsed->size(), rel.size());
    for (size_t i = 0; i < rel.size(); ++i) {
      EXPECT_EQ(parsed->xtuple(i).id(), rel.xtuple(i).id());
      ASSERT_EQ(parsed->xtuple(i).size(), rel.xtuple(i).size());
      EXPECT_NEAR(parsed->xtuple(i).existence_probability(),
                  rel.xtuple(i).existence_probability(), 1e-9);
      for (size_t a = 0; a < rel.xtuple(i).size(); ++a) {
        EXPECT_EQ(parsed->xtuple(i).alternative(a).values,
                  rel.xtuple(i).alternative(a).values);
      }
    }
  }
}

TEST(RelationFormatTest, VocabularyRoundTrips) {
  XRelation r3 = BuildR3();
  Result<XRelation> parsed = ParseXRelation(SerializeXRelation(r3));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->schema().attribute(1).vocabulary,
            PaperSchema().attribute(1).vocabulary);
}

TEST(RelationFormatTest, ParsesHandWrittenInput) {
  Result<XRelation> rel = ParseXRelation(
      "# paper example\n"
      "relation R3\n"
      "schema name:string, job:string\n"
      "vocab job musician, muleteer\n"
      "tuple t31\n"
      "alt 0.7 | John ; pilot\n"
      "alt 0.3 | Johan ; mu*\n"
      "tuple t32\n"
      "alt 0.3 | Tim ; mechanic\n"
      "alt 0.2 | Jim ; mechanic\n"
      "alt 0.4 | Jim ; baker\n");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_TRUE(rel->xtuple(0).alternative(1).values[1].has_pattern());
  EXPECT_TRUE(rel->xtuple(1).is_maybe());
  EXPECT_EQ(rel->schema().attribute(1).vocabulary.size(), 2u);
}

TEST(RelationFormatTest, NumericSchemaRoundTrips) {
  XRelation rel("T", Schema({{"ra", ValueType::kNumeric, {}},
                             {"mag", ValueType::kNumeric, {}}}));
  rel.AppendUnchecked(XTuple(
      "o1", {{{Value::Dist({{"10.25", 0.5}, {"10.26", 0.5}}),
               Value::Certain("7.1")},
              1.0}}));
  Result<XRelation> parsed = ParseXRelation(SerializeXRelation(rel));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->schema().attribute(0).type, ValueType::kNumeric);
  EXPECT_EQ(parsed->xtuple(0).alternative(0).values[0].size(), 2u);
}

TEST(RelationFormatTest, ErrorsCarryLineNumbers) {
  Result<XRelation> bad = ParseXRelation(
      "relation R\n"
      "schema a:string\n"
      "tuple t1\n"
      "alt bogus | x\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 4"), std::string::npos);
}

TEST(RelationFormatTest, RejectsStructuralErrors) {
  // Missing header.
  EXPECT_FALSE(ParseXRelation("schema a:string\n").ok());
  // Missing schema.
  EXPECT_FALSE(ParseXRelation("relation R\ntuple t\nalt 1 | x\n").ok());
  // alt before tuple.
  EXPECT_FALSE(
      ParseXRelation("relation R\nschema a:string\nalt 1 | x\n").ok());
  // Unknown type.
  EXPECT_FALSE(ParseXRelation("relation R\nschema a:blob\n").ok());
  // Unknown directive.
  EXPECT_FALSE(
      ParseXRelation("relation R\nschema a:string\nbogus line\n").ok());
  // vocab for unknown attribute.
  EXPECT_FALSE(
      ParseXRelation("relation R\nschema a:string\nvocab b x, y\n").ok());
  // Alternative arity mismatch surfaces through XTuple validation.
  EXPECT_FALSE(ParseXRelation("relation R\nschema a:string, b:string\n"
                              "tuple t\nalt 1 | x\n")
                   .ok());
  // Probability mass above 1.
  EXPECT_FALSE(ParseXRelation("relation R\nschema a:string\n"
                              "tuple t\nalt 0.8 | x\nalt 0.7 | y\n")
                   .ok());
}

TEST(RelationFormatTest, EmptyRelationRoundTrips) {
  XRelation rel("Empty", Schema::Strings({"a"}));
  Result<XRelation> parsed = ParseXRelation(SerializeXRelation(rel));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 0u);
  EXPECT_EQ(parsed->name(), "Empty");
}

}  // namespace
}  // namespace pdd
