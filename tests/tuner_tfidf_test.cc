// Unit tests for the threshold tuner (Section III-E feedback loop) and
// the TF-IDF / SoftTFIDF comparators.

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "core/threshold_tuner.h"
#include "datagen/person_generator.h"
#include "sim/edit_distance.h"
#include "sim/jaro.h"
#include "sim/tfidf.h"

namespace pdd {
namespace {

// --------------------------------------------------------------- IdfTable

TEST(IdfTableTest, RareTokensWeighMore) {
  IdfTable idf = IdfTable::Train(
      {"john smith", "john miller", "john garcia", "zyx smith"});
  EXPECT_GT(idf.Weight("zyx"), idf.Weight("john"));
  EXPECT_GT(idf.Weight("garcia"), idf.Weight("john"));
  EXPECT_GT(idf.size(), 3u);
}

TEST(IdfTableTest, UnseenTokensGetMaximalWeight) {
  IdfTable idf = IdfTable::Train({"a b", "a c"});
  EXPECT_GE(idf.Weight("unseen"), idf.Weight("b"));
  EXPECT_GE(idf.Weight("b"), idf.Weight("a"));
}

TEST(IdfTableTest, TrainingIsCaseInsensitive) {
  IdfTable idf = IdfTable::Train({"John", "JOHN", "john"});
  EXPECT_DOUBLE_EQ(idf.Weight("john"), idf.Weight("john"));
  EXPECT_LT(idf.Weight("john"), idf.Weight("other"));
}

// --------------------------------------------------------------- TF-IDF

TEST(TfIdfComparatorTest, IdenticalAndDisjoint) {
  IdfTable idf = IdfTable::Train({"john smith", "anna garcia"});
  TfIdfComparator cmp(&idf);
  EXPECT_NEAR(cmp.Compare("john smith", "john smith"), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(cmp.Compare("john smith", "anna garcia"), 0.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("", ""), 1.0);
  EXPECT_DOUBLE_EQ(cmp.Compare("john", ""), 0.0);
}

TEST(TfIdfComparatorTest, RareTokenOverlapScoresHigher) {
  // Shared rare surname must beat shared ubiquitous given name.
  std::vector<std::string> corpus;
  for (int i = 0; i < 50; ++i) corpus.push_back("john doe" + std::to_string(i));
  corpus.push_back("zyx garcia");
  IdfTable idf = IdfTable::Train(corpus);
  TfIdfComparator cmp(&idf);
  double rare_overlap = cmp.Compare("zyx garcia", "zyx smithson");
  double common_overlap = cmp.Compare("john garcia", "john smithson");
  EXPECT_GT(rare_overlap, common_overlap);
}

TEST(TfIdfComparatorTest, SymmetricAndBounded) {
  IdfTable idf = IdfTable::Train({"a b c", "b c d", "c d e"});
  TfIdfComparator cmp(&idf);
  for (const char* a : {"a b", "b c d", "x y"}) {
    for (const char* b : {"a", "c d", "x y z"}) {
      double ab = cmp.Compare(a, b);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
      EXPECT_NEAR(ab, cmp.Compare(b, a), 1e-12);
    }
  }
}

TEST(SoftTfIdfTest, ToleratesTokenTypos) {
  IdfTable idf = IdfTable::Train({"john smith", "anna garcia"});
  JaroWinklerComparator jw;
  TfIdfComparator hard(&idf);
  SoftTfIdfComparator soft(&idf, &jw, 0.85);
  // "smith" vs "smithe": hard TF-IDF sees no overlap on that token.
  double hard_score = hard.Compare("john smith", "john smithe");
  double soft_score = soft.Compare("john smith", "john smithe");
  EXPECT_GT(soft_score, hard_score);
  EXPECT_LE(soft_score, 1.0);
}

TEST(SoftTfIdfTest, ThresholdGatesFuzzyMatches) {
  IdfTable idf = IdfTable::Train({"abc def"});
  NormalizedHammingComparator hamming;
  SoftTfIdfComparator strict(&idf, &hamming, 0.99);
  SoftTfIdfComparator loose(&idf, &hamming, 0.3);
  EXPECT_LE(strict.Compare("abc", "abd"), loose.Compare("abc", "abd"));
}

// ---------------------------------------------------------------- tuner

DetectionResult RunOnPersons(const GeneratedData& data) {
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.25, 0.25};
  config.final_thresholds = {0.5, 0.9};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  return *detector->Run(data.relation);
}

TEST(ThresholdTunerTest, FindsBetterOrEqualThresholds) {
  PersonGenOptions gen;
  gen.num_entities = 60;
  gen.duplicate_rate = 0.7;
  gen.errors.char_error_rate = 0.03;
  GeneratedData data = GeneratePersons(gen);
  DetectionResult result = RunOnPersons(data);
  EffectivenessMetrics fixed = Evaluate(result, data.gold);
  TuneResult tuned = TuneThresholds(result, data.gold);
  EXPECT_GE(tuned.best_metrics.f1, fixed.f1 - 1e-12);
  EXPECT_FALSE(tuned.sweep.empty());
}

TEST(ThresholdTunerTest, BestPointIsOnTheSweep) {
  PersonGenOptions gen;
  gen.num_entities = 40;
  GeneratedData data = GeneratePersons(gen);
  DetectionResult result = RunOnPersons(data);
  TuneResult tuned = TuneThresholds(result, data.gold);
  double max_f1 = 0.0;
  for (const ThresholdSweepPoint& p : tuned.sweep) {
    max_f1 = std::max(max_f1, p.metrics.f1);
  }
  EXPECT_NEAR(tuned.best_metrics.f1, max_f1, 1e-12);
}

TEST(ThresholdTunerTest, TunedThresholdReproducesItsMetrics) {
  // Re-running Evaluate with the tuned Tμ must reproduce the reported
  // confusion (consistency between tuner math and Evaluate).
  PersonGenOptions gen;
  gen.num_entities = 50;
  gen.duplicate_rate = 0.8;
  GeneratedData data = GeneratePersons(gen);
  DetectionResult result = RunOnPersons(data);
  TuneResult tuned = TuneThresholds(result, data.gold);
  // Reclassify the decisions at the tuned threshold.
  DetectionResult reclassified = result;
  for (PairDecisionRecord& rec : reclassified.decisions) {
    rec.match_class = rec.similarity > tuned.best.t_mu
                          ? MatchClass::kMatch
                          : MatchClass::kUnmatch;
  }
  EffectivenessMetrics check = Evaluate(reclassified, data.gold);
  EXPECT_NEAR(check.f1, tuned.best_metrics.f1, 1e-9);
  EXPECT_NEAR(check.precision, tuned.best_metrics.precision, 1e-9);
  EXPECT_NEAR(check.recall, tuned.best_metrics.recall, 1e-9);
}

TEST(ThresholdTunerTest, PossibleBandWidth) {
  PersonGenOptions gen;
  gen.num_entities = 30;
  GeneratedData data = GeneratePersons(gen);
  DetectionResult result = RunOnPersons(data);
  TuneOptions options;
  options.possible_band = 0.1;
  TuneResult tuned = TuneThresholds(result, data.gold, options);
  EXPECT_NEAR(tuned.best.t_mu - tuned.best.t_lambda, 0.1, 1e-9);
  EXPECT_TRUE(tuned.best.Validate().ok());
}

TEST(ThresholdTunerTest, CandidateSubsamplingStillCoversEnds) {
  PersonGenOptions gen;
  gen.num_entities = 80;
  gen.duplicate_rate = 0.6;
  GeneratedData data = GeneratePersons(gen);
  DetectionResult result = RunOnPersons(data);
  TuneOptions options;
  options.max_candidates = 8;
  TuneResult small = TuneThresholds(result, data.gold, options);
  TuneResult full = TuneThresholds(result, data.gold);
  // Subsampled tuning cannot beat the full sweep, respects the candidate
  // cap (+ empty prefix and forced final candidate), and still covers
  // both extremes of the similarity range.
  EXPECT_LE(small.best_metrics.f1, full.best_metrics.f1 + 1e-12);
  EXPECT_LE(small.sweep.size(), options.max_candidates + 2);
  ASSERT_GE(small.sweep.size(), 2u);
  EXPECT_GE(small.sweep.front().t_mu, small.sweep.back().t_mu);
}

TEST(ThresholdTunerTest, EmptyDecisionsYieldZeroOrPerfect) {
  DetectionResult empty;
  empty.total_pairs = 10;
  GoldStandard no_gold;
  TuneResult tuned = TuneThresholds(empty, no_gold);
  EXPECT_DOUBLE_EQ(tuned.best_metrics.f1, 1.0);  // nothing to find
  GoldStandard gold;
  gold.AddMatch("a", "b");
  TuneResult missed = TuneThresholds(empty, gold);
  EXPECT_DOUBLE_EQ(missed.best_metrics.recall, 0.0);
}

}  // namespace
}  // namespace pdd
