// Unit tests for the utility layer: Status/Result, string helpers,
// deterministic RNG and the table printer.

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pdd {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(ParsePositive(3).value_or(9), 3);
  EXPECT_EQ(ParsePositive(-3).value_or(9), 9);
}

Result<int> DoubledPositive(int v) {
  PDD_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubledPositive(4).value(), 8);
  EXPECT_FALSE(DoubledPositive(0).ok());
}

Status CheckPositive(int v) {
  PDD_RETURN_IF_ERROR(ParsePositive(v).status());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckPositive(1).ok());
  EXPECT_FALSE(CheckPositive(-1).ok());
}

// ----------------------------------------------------------- StringUtil

TEST(StringUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToUpper("MiXeD"), "MIXED");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string> parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleField) {
  std::vector<std::string> parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  std::vector<std::string> parts = SplitWhitespace("  a \t b  c ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("machinist", "mach"));
  EXPECT_FALSE(StartsWith("machinist", "mech"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("machinist", "ist"));
  EXPECT_FALSE(EndsWith("machinist", "isx"));
}

TEST(StringUtilTest, PrefixClampsToLength) {
  EXPECT_EQ(Prefix("John", 3), "Joh");
  EXPECT_EQ(Prefix("Jo", 3), "Jo");
  EXPECT_EQ(Prefix("John", 0), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("THEN", "then"));
  EXPECT_FALSE(EqualsIgnoreCase("then", "they"));
  EXPECT_FALSE(EqualsIgnoreCase("then", "the"));
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(0.59, 4), "0.59");
  EXPECT_EQ(FormatDouble(1.0, 4), "1");
  EXPECT_EQ(FormatDouble(0.8383, 4), "0.8383");
  EXPECT_EQ(FormatDouble(0.5, 1), "0.5");
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("0.8", &v));
  EXPECT_DOUBLE_EQ(v, 0.8);
  EXPECT_TRUE(ParseDouble("  -1.5  ", &v));
  EXPECT_DOUBLE_EQ(v, -1.5);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, QGramsPadded) {
  std::vector<std::string> grams = QGrams("ab", 2);
  // #a, ab, b#
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "#a");
  EXPECT_EQ(grams[1], "ab");
  EXPECT_EQ(grams[2], "b#");
}

TEST(StringUtilTest, QGramsUnpadded) {
  std::vector<std::string> grams = QGrams("abcd", 3, '\0');
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "abc");
  EXPECT_EQ(grams[1], "bcd");
}

TEST(StringUtilTest, QGramsShortInput) {
  EXPECT_TRUE(QGrams("a", 3, '\0').empty());
  EXPECT_EQ(QGrams("", 2).size(), 1u);  // "##" from padding
}

// ----------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, DiscretePicksOnlyPositiveWeights) {
  Rng rng(7);
  std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 200; ++i) {
    size_t pick = rng.Discrete(weights);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(RngTest, DiscreteAllZeroReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.Discrete({0.0, 0.0}), 0u);
}

TEST(RngTest, DiscreteRoughlyProportional) {
  Rng rng(7);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Discrete(weights) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / trials, 0.75, 0.03);
}

TEST(RngTest, ZipfSkewFavorsLowIndices) {
  Rng rng(7);
  int zero_count = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Zipf(50, 1.5) == 0) ++zero_count;
  }
  // With skew 1.5 index 0 has far more than uniform (2%) mass.
  EXPECT_GT(zero_count, trials / 10);
}

TEST(RngTest, ZipfZeroSkewIsNearUniform) {
  Rng rng(7);
  int zero_count = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Zipf(10, 0.0) == 0) ++zero_count;
  }
  EXPECT_NEAR(static_cast<double>(zero_count) / trials, 0.1, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> sa(v.begin(), v.end()), sb(original.begin(),
                                                original.end());
  EXPECT_EQ(sa, sb);
}

TEST(RngTest, IndexWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(5), 5u);
  }
}

// -------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"key", "tuple"});
  table.AddRow({"Johpi", "t31"});
  table.AddRow({"Timme", "t32"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| key   | tuple |"), std::string::npos);
  EXPECT_NE(out.find("| Johpi | t31   |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, PadsMissingCellsAndDropsExtra) {
  TablePrinter table({"a", "b"});
  table.AddRow({"only"});
  table.AddRow({"x", "y", "ignored"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| only |"), std::string::npos);
  EXPECT_EQ(out.find("ignored"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter table({"h1"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("h1"), std::string::npos);
  EXPECT_EQ(table.row_count(), 0u);
}

}  // namespace
}  // namespace pdd
