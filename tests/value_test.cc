// Unit tests for probabilistic attribute values (Section IV-A model).

#include <gtest/gtest.h>

#include "pdb/value.h"

namespace pdd {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_TRUE(v.is_certain());
  EXPECT_DOUBLE_EQ(v.null_probability(), 1.0);
  EXPECT_DOUBLE_EQ(v.existence_probability(), 0.0);
  EXPECT_EQ(v.ToString(), "⊥");
}

TEST(ValueTest, CertainValue) {
  Value v = Value::Certain("Tim");
  EXPECT_FALSE(v.is_null());
  EXPECT_TRUE(v.is_certain());
  EXPECT_DOUBLE_EQ(v.null_probability(), 0.0);
  EXPECT_EQ(v.MostProbableText(), "Tim");
  EXPECT_EQ(v.ToString(), "Tim");
}

TEST(ValueTest, DistributionWithImplicitNullMass) {
  // t11.job: {machinist: 0.7, mechanic: 0.2} leaves 0.1 for ⊥.
  Value v = Value::Dist({{"machinist", 0.7}, {"mechanic", 0.2}});
  EXPECT_FALSE(v.is_certain());
  EXPECT_NEAR(v.null_probability(), 0.1, 1e-12);
  EXPECT_NEAR(v.existence_probability(), 0.9, 1e-12);
  EXPECT_EQ(v.MostProbableText(), "machinist");
  EXPECT_EQ(v.size(), 2u);
}

TEST(ValueTest, MakeValidatesProbabilityRange) {
  EXPECT_FALSE(Value::Make({{"a", 0.0, false}}).ok());
  EXPECT_FALSE(Value::Make({{"a", -0.1, false}}).ok());
  EXPECT_FALSE(Value::Make({{"a", 1.2, false}}).ok());
  EXPECT_TRUE(Value::Make({{"a", 1.0, false}}).ok());
}

TEST(ValueTest, MakeValidatesTotalMass) {
  EXPECT_FALSE(Value::Make({{"a", 0.7, false}, {"b", 0.7, false}}).ok());
  EXPECT_TRUE(Value::Make({{"a", 0.5, false}, {"b", 0.5, false}}).ok());
}

TEST(ValueTest, MakeRejectsDuplicateAlternatives) {
  EXPECT_FALSE(Value::Make({{"a", 0.5, false}, {"a", 0.3, false}}).ok());
  // Same text as pattern and literal is allowed (different semantics).
  EXPECT_TRUE(Value::Make({{"mu", 0.5, false}, {"mu", 0.3, true}}).ok());
}

TEST(ValueTest, MostProbableTextPrefersNullWhenDominant) {
  Value v = Value::Dist({{"a", 0.2}});  // ⊥ mass 0.8
  EXPECT_EQ(v.MostProbableText(), "");
}

TEST(ValueTest, MostProbableTextTieBreaksTowardEarlier) {
  Value v = Value::Dist({{"x", 0.5}, {"y", 0.5}});
  EXPECT_EQ(v.MostProbableText(), "x");
}

TEST(ValueTest, PatternValue) {
  Value v = Value::Pattern("mu", 0.3);
  EXPECT_TRUE(v.has_pattern());
  EXPECT_NEAR(v.null_probability(), 0.7, 1e-12);
  EXPECT_EQ(v.ToString(), "{mu*: 0.3, ⊥: 0.7}");
}

TEST(ValueTest, PatternExpansionUniform) {
  Value v = Value::Pattern("mu");  // prob 1.0
  Value expanded = v.Expanded({"musician", "mule-driver", "baker"});
  EXPECT_FALSE(expanded.has_pattern());
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded.alternatives()[0].text, "musician");
  EXPECT_NEAR(expanded.alternatives()[0].prob, 0.5, 1e-12);
  EXPECT_NEAR(expanded.alternatives()[1].prob, 0.5, 1e-12);
}

TEST(ValueTest, PatternExpansionNoMatchFallsBackToLiteral) {
  Value v = Value::Pattern("zz", 0.4);
  Value expanded = v.Expanded({"musician", "baker"});
  ASSERT_EQ(expanded.size(), 1u);
  EXPECT_EQ(expanded.alternatives()[0].text, "zz");
  EXPECT_NEAR(expanded.alternatives()[0].prob, 0.4, 1e-12);
  EXPECT_FALSE(expanded.alternatives()[0].is_pattern);
}

TEST(ValueTest, PatternExpansionMergesWithLiterals) {
  // {musician: 0.4, mu*: 0.6} over a vocab where mu* matches musician and
  // musicologist: musician ends with 0.4 + 0.3.
  Value v = Value::Unchecked({{"musician", 0.4, false}, {"mu", 0.6, true}});
  Value expanded = v.Expanded({"musician", "musicologist"});
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded.alternatives()[0].text, "musician");
  EXPECT_NEAR(expanded.alternatives()[0].prob, 0.7, 1e-12);
  EXPECT_EQ(expanded.alternatives()[1].text, "musicologist");
  EXPECT_NEAR(expanded.alternatives()[1].prob, 0.3, 1e-12);
}

TEST(ValueTest, ExpandedPreservesTotalMass) {
  Value v = Value::Unchecked({{"pilot", 0.2, false}, {"mu", 0.5, true}});
  Value expanded = v.Expanded({"musician", "muleteer", "pilot"});
  EXPECT_NEAR(expanded.existence_probability(), 0.7, 1e-12);
  EXPECT_NEAR(expanded.null_probability(), 0.3, 1e-12);
}

TEST(ValueTest, ExpandedWithoutPatternsIsIdentity) {
  Value v = Value::Dist({{"a", 0.5}, {"b", 0.5}});
  EXPECT_EQ(v.Expanded({"a", "b", "c"}), v);
}

TEST(ValueTest, ToStringRendersDistribution) {
  Value v = Value::Dist({{"John", 0.5}, {"Johan", 0.5}});
  EXPECT_EQ(v.ToString(), "{John: 0.5, Johan: 0.5}");
}

TEST(ValueTest, ToStringShowsPartialNull) {
  Value v = Value::Dist({{"a", 0.6}});
  EXPECT_EQ(v.ToString(), "{a: 0.6, ⊥: 0.4}");
}

TEST(ValueTest, EqualityIsStructural) {
  EXPECT_EQ(Value::Certain("x"), Value::Certain("x"));
  EXPECT_FALSE(Value::Certain("x") == Value::Certain("y"));
  EXPECT_FALSE(Value::Certain("x") == Value::Dist({{"x", 0.9}}));
}

TEST(ValueTest, UncheckedAllowsFullMassDistribution) {
  Value v = Value::Unchecked(
      {{"a", 0.3, false}, {"b", 0.3, false}, {"c", 0.4, false}});
  EXPECT_NEAR(v.null_probability(), 0.0, 1e-12);
  EXPECT_FALSE(v.is_certain());
}

}  // namespace
}  // namespace pdd
