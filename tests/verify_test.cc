// Unit tests for verification metrics (Section III-E) and gold standards.

#include <gtest/gtest.h>

#include "verify/gold_io.h"
#include "verify/gold_standard.h"
#include "verify/metrics.h"
#include "verify/similarity_histogram.h"

namespace pdd {
namespace {

TEST(EffectivenessTest, PerfectClassifier) {
  EffectivenessMetrics m =
      ComputeEffectiveness({.true_positives = 10,
                            .false_positives = 0,
                            .false_negatives = 0,
                            .true_negatives = 90});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_DOUBLE_EQ(m.false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.false_negative_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
}

TEST(EffectivenessTest, MixedCounts) {
  EffectivenessMetrics m =
      ComputeEffectiveness({.true_positives = 6,
                            .false_positives = 2,
                            .false_negatives = 4,
                            .true_negatives = 88});
  EXPECT_NEAR(m.precision, 0.75, 1e-12);
  EXPECT_NEAR(m.recall, 0.6, 1e-12);
  EXPECT_NEAR(m.f1, 2.0 * 0.75 * 0.6 / 1.35, 1e-12);
  EXPECT_NEAR(m.false_positive_rate, 2.0 / 90.0, 1e-12);
  EXPECT_NEAR(m.false_negative_rate, 0.4, 1e-12);
  EXPECT_NEAR(m.accuracy, 0.94, 1e-12);
}

TEST(EffectivenessTest, NothingPredictedNothingToFind) {
  EffectivenessMetrics m = ComputeEffectiveness(
      {.true_positives = 0, .false_positives = 0, .false_negatives = 0,
       .true_negatives = 10});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(EffectivenessTest, NothingPredictedButMatchesExist) {
  EffectivenessMetrics m = ComputeEffectiveness(
      {.true_positives = 0, .false_positives = 0, .false_negatives = 5,
       .true_negatives = 10});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
  EXPECT_DOUBLE_EQ(m.false_negative_rate, 1.0);
}

TEST(EffectivenessTest, ToStringMentionsAllMetrics) {
  EffectivenessMetrics m = ComputeEffectiveness(
      {.true_positives = 1, .false_positives = 1, .false_negatives = 1,
       .true_negatives = 1});
  std::string s = m.ToString();
  EXPECT_NE(s.find("P=0.5"), std::string::npos);
  EXPECT_NE(s.find("R=0.5"), std::string::npos);
  EXPECT_NE(s.find("F1=0.5"), std::string::npos);
}

TEST(ReductionMetricsTest, FullSearchSpace) {
  ReductionMetrics m = ComputeReduction(100, 100, 10, 10);
  EXPECT_DOUBLE_EQ(m.reduction_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.pairs_completeness, 1.0);
  EXPECT_NEAR(m.pairs_quality, 0.1, 1e-12);
}

TEST(ReductionMetricsTest, AggressiveReduction) {
  ReductionMetrics m = ComputeReduction(10, 1000, 8, 10);
  EXPECT_NEAR(m.reduction_ratio, 0.99, 1e-12);
  EXPECT_NEAR(m.pairs_completeness, 0.8, 1e-12);
  EXPECT_NEAR(m.pairs_quality, 0.8, 1e-12);
}

TEST(ReductionMetricsTest, DegenerateDenominators) {
  ReductionMetrics no_gold = ComputeReduction(10, 100, 0, 0);
  EXPECT_DOUBLE_EQ(no_gold.pairs_completeness, 1.0);
  ReductionMetrics no_candidates = ComputeReduction(0, 100, 0, 5);
  EXPECT_DOUBLE_EQ(no_candidates.pairs_quality, 0.0);
  EXPECT_DOUBLE_EQ(no_candidates.reduction_ratio, 1.0);
}

TEST(GoldStandardTest, AddAndQuery) {
  GoldStandard gold;
  gold.AddMatch("a", "b");
  EXPECT_TRUE(gold.IsMatch("a", "b"));
  EXPECT_TRUE(gold.IsMatch("b", "a"));
  EXPECT_FALSE(gold.IsMatch("a", "c"));
  EXPECT_EQ(gold.size(), 1u);
}

TEST(GoldStandardTest, IdempotentAndSelfPairFree) {
  GoldStandard gold;
  gold.AddMatch("a", "b");
  gold.AddMatch("b", "a");
  gold.AddMatch("a", "a");
  EXPECT_EQ(gold.size(), 1u);
  EXPECT_FALSE(gold.IsMatch("a", "a"));
}

TEST(GoldStandardTest, PairsAreCanonical) {
  GoldStandard gold;
  gold.AddMatch("z", "a");
  std::vector<IdPair> pairs = gold.Pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, "a");
  EXPECT_EQ(pairs[0].second, "z");
}

TEST(GoldStandardTest, CountCovered) {
  GoldStandard gold;
  gold.AddMatch("a", "b");
  gold.AddMatch("c", "d");
  std::vector<IdPair> candidates = {MakeIdPair("b", "a"),
                                    MakeIdPair("a", "c"),
                                    MakeIdPair("d", "c")};
  EXPECT_EQ(gold.CountCovered(candidates), 2u);
}

TEST(MakeIdPairTest, OrdersEndpoints) {
  IdPair p = MakeIdPair("t43", "t31");
  EXPECT_EQ(p.first, "t31");
  EXPECT_EQ(p.second, "t43");
}

TEST(GoldIoTest, RoundTrip) {
  GoldStandard gold;
  gold.AddMatch("t31", "t41");
  gold.AddMatch("b", "a");
  std::string text = SerializeGoldStandard(gold);
  Result<GoldStandard> parsed = ParseGoldStandard(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_TRUE(parsed->IsMatch("t41", "t31"));
  EXPECT_TRUE(parsed->IsMatch("a", "b"));
}

TEST(GoldIoTest, ParsesCommentsAndWhitespace) {
  Result<GoldStandard> parsed = ParseGoldStandard(
      "# header\n"
      "\n"
      "  a , b  \n"
      "c,d\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_TRUE(parsed->IsMatch("a", "b"));
}

TEST(GoldIoTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseGoldStandard("a,b,c\n").ok());
  EXPECT_FALSE(ParseGoldStandard("loner\n").ok());
  EXPECT_FALSE(ParseGoldStandard("a,\n").ok());
  Result<GoldStandard> bad = ParseGoldStandard("a,b\nbroken\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(GoldIoTest, EmptyInputIsEmptyGold) {
  Result<GoldStandard> parsed = ParseGoldStandard("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 0u);
}

TEST(SimilarityHistogramTest, BucketsObservations) {
  SimilarityHistogram hist(10);
  hist.AddAll({0.05, 0.05, 0.95, 0.5});
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.bucket(0), 2u);  // [0.0, 0.1)
  EXPECT_EQ(hist.bucket(5), 1u);  // [0.5, 0.6)
  EXPECT_EQ(hist.bucket(9), 1u);  // [0.9, 1.0]
}

TEST(SimilarityHistogramTest, ClampsOutOfRange) {
  SimilarityHistogram hist(4);
  hist.Add(-1.0);
  hist.Add(2.0);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(3), 1u);
}

TEST(SimilarityHistogramTest, BucketEdges) {
  SimilarityHistogram hist(4);
  EXPECT_DOUBLE_EQ(hist.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.BucketLow(2), 0.5);
  EXPECT_DOUBLE_EQ(hist.BucketLow(4), 1.0);
  // Exactly 1.0 lands in the last bucket, not past it.
  hist.Add(1.0);
  EXPECT_EQ(hist.bucket(3), 1u);
}

TEST(SimilarityHistogramTest, AsciiRendering) {
  SimilarityHistogram hist(2);
  hist.AddAll({0.1, 0.2, 0.9});
  std::string s = hist.ToString(10);
  EXPECT_NE(s.find("##########| 2"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(SimilarityHistogramTest, EmptyHistogramRenders) {
  SimilarityHistogram hist(3);
  std::string s = hist.ToString();
  EXPECT_EQ(hist.total(), 0u);
  EXPECT_NE(s.find("| 0"), std::string::npos);
}

}  // namespace
}  // namespace pdd
