// Oracle tests: every closed-form quantity of Section IV is re-derived
// by brute-force possible-world enumeration and compared. These are the
// strongest correctness guarantees in the suite — if the formulas and
// the world semantics ever drift apart, these tests fail.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "decision/combination.h"
#include "derive/decision_based.h"
#include "derive/similarity_based.h"
#include "match/tuple_matcher.h"
#include "pdb/conditioning.h"
#include "pdb/possible_worlds.h"
#include "sim/edit_distance.h"
#include "util/random.h"

namespace pdd {
namespace {

const Comparator& Hamming() {
  static NormalizedHammingComparator cmp;
  return cmp;
}

// Random x-tuple with certain values (world enumeration at x-tuple level
// then covers all uncertainty).
XTuple RandomCertainXTuple(const std::string& id, Rng* rng) {
  size_t alt_count = 1 + rng->Index(3);
  std::vector<double> raw;
  for (size_t i = 0; i < alt_count; ++i) raw.push_back(rng->Uniform(0.1, 1.0));
  double total = 0.0;
  for (double r : raw) total += r;
  double existence = rng->Bernoulli(0.5) ? rng->Uniform(0.4, 1.0) : 1.0;
  std::vector<AltTuple> alts;
  for (size_t a = 0; a < alt_count; ++a) {
    std::string name, job;
    for (int c = 0; c < 3; ++c) {
      name += static_cast<char>('a' + rng->Index(5));
      job += static_cast<char>('a' + rng->Index(5));
    }
    alts.push_back({{Value::Certain(name), Value::Certain(job)},
                    raw[a] / total * existence});
  }
  return XTuple(id, std::move(alts));
}

class WorldOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorldOracleTest, MatchingMassesEqualConditionedWorldMasses) {
  // P(m), P(p), P(u) of Eq. 8/9 must equal the conditioned world masses
  // of the worlds whose alternative pair classifies as m/p/u.
  Rng rng(GetParam());
  TupleMatcher matcher = *TupleMatcher::Make(Schema::Strings({"a", "b"}),
                                             {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.6, 0.4});
  Thresholds intermediate{0.3, 0.7};
  for (int round = 0; round < 10; ++round) {
    XTuple t1 = RandomCertainXTuple("t1", &rng);
    XTuple t2 = RandomCertainXTuple("t2", &rng);
    AlternativePairScores scores =
        BuildAlternativePairScores(t1, t2, matcher, phi);
    MatchingMass mass = ComputeMatchingMass(scores, intermediate);
    // Brute force over conditioned worlds.
    XRelation pair("pair", Schema::Strings({"a", "b"}));
    pair.AppendUnchecked(t1);
    pair.AppendUnchecked(t2);
    Result<std::vector<World>> worlds = EnumerateWorlds(pair);
    ASSERT_TRUE(worlds.ok());
    ConditionedWorlds conditioned = ConditionOnAllPresent(*worlds);
    double pm = 0.0, pp = 0.0, pu = 0.0;
    for (const World& w : conditioned.worlds) {
      double sim = phi.Combine(matcher.CompareAlternatives(
          t1.alternative(static_cast<size_t>(w.choice[0])),
          t2.alternative(static_cast<size_t>(w.choice[1]))));
      switch (Classify(sim, intermediate)) {
        case MatchClass::kMatch:
          pm += w.probability;
          break;
        case MatchClass::kPossible:
          pp += w.probability;
          break;
        case MatchClass::kUnmatch:
          pu += w.probability;
          break;
      }
    }
    EXPECT_NEAR(mass.p_match, pm, 1e-9);
    EXPECT_NEAR(mass.p_possible, pp, 1e-9);
    EXPECT_NEAR(mass.p_unmatch, pu, 1e-9);
  }
}

TEST_P(WorldOracleTest, MaxMinDerivationsBoundEveryWorld) {
  Rng rng(GetParam());
  TupleMatcher matcher = *TupleMatcher::Make(Schema::Strings({"a", "b"}),
                                             {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.5, 0.5});
  for (int round = 0; round < 10; ++round) {
    XTuple t1 = RandomCertainXTuple("t1", &rng);
    XTuple t2 = RandomCertainXTuple("t2", &rng);
    AlternativePairScores scores =
        BuildAlternativePairScores(t1, t2, matcher, phi);
    double lo = MinSimilarityDerivation().Derive(scores);
    double hi = MaxSimilarityDerivation().Derive(scores);
    for (size_t i = 0; i < t1.size(); ++i) {
      for (size_t j = 0; j < t2.size(); ++j) {
        double sim = phi.Combine(matcher.CompareAlternatives(
            t1.alternative(i), t2.alternative(j)));
        EXPECT_GE(sim, lo - 1e-12);
        EXPECT_LE(sim, hi + 1e-12);
      }
    }
  }
}

TEST_P(WorldOracleTest, ExistenceProbabilityEqualsPresentWorldMass) {
  Rng rng(GetParam());
  XRelation rel("R", Schema::Strings({"a", "b"}));
  size_t n = 2 + rng.Index(2);
  for (size_t i = 0; i < n; ++i) {
    rel.AppendUnchecked(RandomCertainXTuple("t" + std::to_string(i), &rng));
  }
  Result<std::vector<World>> worlds = EnumerateWorlds(rel);
  ASSERT_TRUE(worlds.ok());
  for (size_t i = 0; i < n; ++i) {
    double present_mass = 0.0;
    for (const World& w : *worlds) {
      if (w.choice[i] != kAbsent) present_mass += w.probability;
    }
    EXPECT_NEAR(present_mass, rel.xtuple(i).existence_probability(), 1e-9);
  }
}

TEST_P(WorldOracleTest, AlternativeMarginalsEqualWorldMasses) {
  // The probability that an x-tuple takes alternative a must equal the
  // total mass of worlds choosing a.
  Rng rng(GetParam());
  XRelation rel("R", Schema::Strings({"a", "b"}));
  rel.AppendUnchecked(RandomCertainXTuple("t0", &rng));
  rel.AppendUnchecked(RandomCertainXTuple("t1", &rng));
  Result<std::vector<World>> worlds = EnumerateWorlds(rel);
  ASSERT_TRUE(worlds.ok());
  for (size_t i = 0; i < rel.size(); ++i) {
    for (size_t a = 0; a < rel.xtuple(i).size(); ++a) {
      double mass = 0.0;
      for (const World& w : *worlds) {
        if (w.choice[i] == static_cast<int>(a)) mass += w.probability;
      }
      EXPECT_NEAR(mass, rel.xtuple(i).alternative(a).prob, 1e-9);
    }
  }
}

TEST_P(WorldOracleTest, DetectorSimilarityEqualsWorldExpectation) {
  // End-to-end: the detector's expected-similarity pipeline must agree
  // with the brute-force conditional expectation for random pairs.
  Rng rng(GetParam());
  DetectorConfig config;
  config.key = {{"a", 2}, {"b", 2}};
  config.weights = {0.6, 0.4};
  Schema schema = Schema::Strings({"a", "b"});
  Result<DuplicateDetector> detector = DuplicateDetector::Make(config,
                                                               schema);
  ASSERT_TRUE(detector.ok());
  NormalizedHammingComparator hamming;
  TupleMatcher matcher = *TupleMatcher::Make(schema, {&hamming, &hamming});
  WeightedSumCombination phi({0.6, 0.4});
  for (int round = 0; round < 5; ++round) {
    XTuple t1 = RandomCertainXTuple("t1", &rng);
    XTuple t2 = RandomCertainXTuple("t2", &rng);
    XRelation pair("pair", schema);
    pair.AppendUnchecked(t1);
    pair.AppendUnchecked(t2);
    Result<std::vector<World>> worlds = EnumerateWorlds(pair);
    ASSERT_TRUE(worlds.ok());
    ConditionedWorlds conditioned = ConditionOnAllPresent(*worlds);
    double brute = 0.0;
    for (const World& w : conditioned.worlds) {
      brute += w.probability *
               phi.Combine(matcher.CompareAlternatives(
                   t1.alternative(static_cast<size_t>(w.choice[0])),
                   t2.alternative(static_cast<size_t>(w.choice[1]))));
    }
    EXPECT_NEAR(detector->PairSimilarity(t1, t2), brute, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldOracleTest,
                         ::testing::Values(2, 4, 6, 8, 10, 12),
                         [](const ::testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace pdd
