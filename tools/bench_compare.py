#!/usr/bin/env python3
"""Regression-gate bench metrics against committed baselines.

The benches emit machine-readable ``BENCH_*.json`` sidecars (pairs/sec,
stage timings, cache hit rates, stream high-water marks). CI archives
them per run; this script closes the loop by diffing the current run's
sidecars against the baselines committed in ``bench/baselines/`` and
failing on throughput regressions beyond a tolerance.

Sidecars are ``pdd.telemetry.v1`` documents (gauges/counters/info/
histograms sections, sorted keys — the schema ``pddcli --metrics``
writes). ``flatten`` merges gauges + counters + info (info ``"true"``/
``"false"`` strings become booleans) and per-histogram summary stats
back into the flat key space the classifier below operates on; legacy
flat sidecars pass through unchanged, so pre-migration baselines keep
comparing.

Metric classes (selected by key name):

* throughput  -- keys ending in ``_per_sec`` or containing ``speedup``:
  timing-derived and therefore machine- and run-dependent (a cache
  hit-vs-miss speedup swings 2x between quiet runs), so the default
  tolerance is generous (fail only when the current value drops more
  than ``--throughput-tolerance`` below baseline). The benches
  themselves gate the hard ratio floors (columnar >= scalar, hit >= 5x
  miss) in-process where both sides share one run's conditions.
* ratio       -- keys containing ``hit_rate``: count-derived and
  deterministic (a warm run's hit rate is exactly 1.0), so the tighter
  ``--ratio-tolerance`` applies.
* invariant   -- boolean keys containing ``identical``: must stay true
  (the benches also gate these themselves; this catches a silently
  skipped bench).

Everything else (record counts, seconds, high-water marks) is
informational: counts are exact-gated inside the benches and wall
times are too noisy to gate here.

Usage:
  tools/bench_compare.py [--run-dir DIR] [--baselines DIR]
                         [--runner NAME] [--throughput-tolerance F]
                         [--ratio-tolerance F] [--update]

``--update`` rewrites the baselines from the current run (commit the
result when a deliberate perf change moves the floor).

``--runner NAME`` (or the ``BENCH_RUNNER`` environment variable)
selects a per-runner baseline family: baselines are read from
``bench/baselines/<NAME>/`` first, falling back to the shared root
files, and ``--update`` writes into the runner's directory. Absolute
throughput differs by an order of magnitude between a laptop and a CI
container; per-runner families let each machine gate against its own
floor instead of the weakest shared one.

A sidecar with no committed baseline is a hard failure (exit 3), not a
skip: a silently unbaselined bench is an ungated bench. Run with
``--update`` and commit the result to enroll it.

Exit status: 0 clean, 1 regression, 2 usage/IO error, 3 missing
baseline.
"""

import argparse
import json
import os
import pathlib
import sys


def classify(key, value):
    """Metric class for a sidecar entry, or None if informational."""
    if isinstance(value, bool):
        return "invariant" if "identical" in key else None
    if not isinstance(value, (int, float)):
        return None
    if key.endswith("_per_sec") or "speedup" in key:
        return "throughput"
    if "hit_rate" in key:
        return "ratio"
    return None


def flatten(doc):
    """Flat key space of a sidecar (telemetry.v1 or legacy flat)."""
    if not isinstance(doc, dict) or doc.get("schema") != "pdd.telemetry.v1":
        return doc
    flat = {}
    for section in ("counters", "gauges"):
        flat.update(doc.get(section, {}))
    for key, value in doc.get("info", {}).items():
        if value == "true":
            flat[key] = True
        elif value == "false":
            flat[key] = False
        else:
            flat[key] = value
    for name, hist in doc.get("histograms", {}).items():
        for stat in ("count", "sum", "min", "max", "p50", "p95", "p99"):
            if stat in hist:
                flat[f"{name}.{stat}"] = hist[stat]
    return flat


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_compare: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json against committed baselines")
    parser.add_argument("--run-dir", default=".",
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--baselines", default=None,
                        help="baseline directory (default: "
                             "<script>/../bench/baselines)")
    parser.add_argument("--throughput-tolerance", type=float, default=0.60,
                        help="allowed fractional drop for *_per_sec metrics "
                             "(default 0.60: fail below 40%% of baseline; "
                             "absolute throughput varies across runners)")
    parser.add_argument("--ratio-tolerance", type=float, default=0.25,
                        help="allowed fractional drop for deterministic "
                             "hit-rate metrics (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from the current run")
    parser.add_argument("--runner", default=os.environ.get("BENCH_RUNNER"),
                        help="per-runner baseline family: read baselines "
                             "from <baselines>/<runner>/ first (fall back "
                             "to the shared root files); --update writes "
                             "there (default: $BENCH_RUNNER)")
    args = parser.parse_args()

    run_dir = pathlib.Path(args.run_dir)
    baseline_dir = (pathlib.Path(args.baselines) if args.baselines else
                    pathlib.Path(__file__).resolve().parent.parent /
                    "bench" / "baselines")
    runner_dir = baseline_dir / args.runner if args.runner else None

    def baseline_for(name):
        """The baseline file for a sidecar: runner family first."""
        if runner_dir is not None and (runner_dir / name).exists():
            return runner_dir / name
        return baseline_dir / name

    run_files = sorted(run_dir.glob("BENCH_*.json"))
    if not run_files:
        print(f"bench_compare: no BENCH_*.json under {run_dir}",
              file=sys.stderr)
        return 2

    if args.update:
        update_dir = runner_dir if runner_dir is not None else baseline_dir
        update_dir.mkdir(parents=True, exist_ok=True)
        for run_file in run_files:
            target = update_dir / run_file.name
            target.write_text(json.dumps(load(run_file), indent=2) + "\n")
            print(f"bench_compare: baseline updated: {target}")
        return 0

    tolerances = {"throughput": args.throughput_tolerance,
                  "ratio": args.ratio_tolerance}
    regressions = []
    missing = []
    compared = 0
    for run_file in run_files:
        baseline_file = baseline_for(run_file.name)
        if not baseline_file.exists():
            print(f"bench_compare: missing baseline for {run_file.name} "
                  f"— run with --update to create one", file=sys.stderr)
            missing.append(run_file.name)
            continue
        current = flatten(load(run_file))
        baseline = flatten(load(baseline_file))
        for key, base_value in sorted(baseline.items()):
            metric_class = classify(key, base_value)
            if metric_class is None or key not in current:
                continue
            value = current[key]
            compared += 1
            name = f"{run_file.name}:{key}"
            if metric_class == "invariant":
                if value is not True:
                    regressions.append(f"{name}: expected true, got {value}")
                continue
            floor = base_value * (1.0 - tolerances[metric_class])
            delta = ((value - base_value) / base_value * 100.0
                     if base_value else 0.0)
            marker = "REGRESSION" if value < floor else "ok"
            print(f"  {marker:>10}  {name}: {value:.6g} vs baseline "
                  f"{base_value:.6g} ({delta:+.1f}%)")
            if value < floor:
                regressions.append(
                    f"{name}: {value:.6g} fell below {floor:.6g} "
                    f"({delta:+.1f}% vs baseline, tolerance "
                    f"{tolerances[metric_class]:.0%})")

    print(f"bench_compare: {compared} metrics compared against "
          f"{baseline_dir}")
    if regressions:
        print("bench_compare: REGRESSIONS:", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    if missing:
        print(f"bench_compare: {len(missing)} sidecar(s) without a "
              f"committed baseline", file=sys.stderr)
        return 3
    if compared == 0:
        print("bench_compare: nothing compared — missing baselines?",
              file=sys.stderr)
        return 2
    print("bench_compare: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
