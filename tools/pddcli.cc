// pddcli — command-line duplicate detection for probabilistic relations.
//
// Usage:
//   pddcli detect  <relation.pxr> [options]     run detection, print report
//   pddcli stats   <relation.pxr>               profile a relation
//   pddcli explain <relation.pxr> <id1> <id2> [options]
//                                               per-alternative breakdown
//                                               of one pair's decision
//   pddcli demo                                 run on the paper's R34
//
// Options for `detect`:
//   --key attr:len[,attr:len...]   sorting/blocking key (default: first
//                                  two attributes, prefix 3 and 2)
//   --reduction NAME               full | snm_certain_keys |
//                                  snm_sorting_alternatives |
//                                  snm_uncertain_ranking |
//                                  blocking_certain_keys |
//                                  blocking_alternatives | canopy |
//                                  snm_adaptive  (default: full)
//   --window N                     SNM window (default 3)
//   --t-lambda X --t-mu Y          thresholds (default 0.4 / 0.7)
//   --derivation NAME              expected_similarity | matching_weight |
//                                  expected_matching (default:
//                                  expected_similarity)
//   --prepare                      lowercase/trim/collapse before matching
//   --workers N                    decide candidate batches on N threads
//                                  (default 0 = serial; results identical)
//   --batch N                      candidates per executor batch
//                                  (default 256)
//   --csv                          emit per-pair CSV instead of the report
//   --gold FILE                    gold pairs ("id1,id2" lines) — the
//                                  report gains verification metrics
//   --histogram                    append an ASCII histogram of the
//                                  candidate similarities (threshold
//                                  selection aid)
//
// Relations use the text format of pdb/text_format.h (.pxr files).

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/detector.h"
#include "core/explain.h"
#include "core/paper_examples.h"
#include "core/report_writer.h"
#include "pdb/statistics.h"
#include "pdb/text_format.h"
#include "prep/standardizer.h"
#include "util/string_util.h"
#include "verify/gold_io.h"
#include "verify/similarity_histogram.h"

namespace {

using namespace pdd;

int Fail(const std::string& message) {
  std::cerr << "pddcli: " << message << "\n";
  return 1;
}

Result<XRelation> LoadRelation(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseXRelation(buffer.str());
}

Result<ReductionMethod> ParseReduction(const std::string& name) {
  if (name == "full") return ReductionMethod::kFull;
  if (name == "snm_multipass_worlds") {
    return ReductionMethod::kSnmMultipassWorlds;
  }
  if (name == "snm_certain_keys") return ReductionMethod::kSnmCertainKeys;
  if (name == "snm_sorting_alternatives") {
    return ReductionMethod::kSnmSortingAlternatives;
  }
  if (name == "snm_uncertain_ranking") {
    return ReductionMethod::kSnmUncertainRanking;
  }
  if (name == "blocking_certain_keys") {
    return ReductionMethod::kBlockingCertainKeys;
  }
  if (name == "blocking_alternatives") {
    return ReductionMethod::kBlockingAlternatives;
  }
  if (name == "blocking_multipass_worlds") {
    return ReductionMethod::kBlockingMultipassWorlds;
  }
  if (name == "blocking_clustered") return ReductionMethod::kBlockingClustered;
  if (name == "canopy") return ReductionMethod::kCanopy;
  if (name == "snm_adaptive") return ReductionMethod::kSnmAdaptive;
  if (name == "qgram_index") return ReductionMethod::kQGramIndex;
  return Status::InvalidArgument("unknown reduction '" + name + "'");
}

Result<DerivationKind> ParseDerivation(const std::string& name) {
  if (name == "expected_similarity") {
    return DerivationKind::kExpectedSimilarity;
  }
  if (name == "matching_weight") return DerivationKind::kMatchingWeight;
  if (name == "expected_matching") return DerivationKind::kExpectedMatching;
  if (name == "max_similarity") return DerivationKind::kMaxSimilarity;
  if (name == "min_similarity") return DerivationKind::kMinSimilarity;
  if (name == "mode_similarity") return DerivationKind::kModeSimilarity;
  return Status::InvalidArgument("unknown derivation '" + name + "'");
}

Result<std::vector<std::pair<std::string, size_t>>> ParseKeySpecArg(
    const std::string& arg) {
  std::vector<std::pair<std::string, size_t>> key;
  for (const std::string& piece : Split(arg, ',')) {
    std::vector<std::string> parts = Split(piece, ':');
    if (parts.size() != 2) {
      return Status::InvalidArgument("key component '" + piece +
                                     "' is not attr:len");
    }
    double len = 0.0;
    if (!ParseDouble(parts[1], &len) || len < 0) {
      return Status::InvalidArgument("bad prefix length in '" + piece + "'");
    }
    key.emplace_back(std::string(Trim(parts[0])),
                     static_cast<size_t>(len));
  }
  if (key.empty()) {
    return Status::InvalidArgument("empty key spec");
  }
  return key;
}

int RunDetect(const XRelation& rel, int argc, char** argv, int first_arg) {
  DetectorConfig config;
  // Default key: first two attributes, prefixes 3 and 2.
  config.key.clear();
  config.key.emplace_back(rel.schema().attribute(0).name, 3);
  if (rel.schema().arity() > 1) {
    config.key.emplace_back(rel.schema().attribute(1).name, 2);
  }
  config.weights.assign(rel.schema().arity(),
                        1.0 / static_cast<double>(rel.schema().arity()));
  bool csv = false;
  bool histogram = false;
  std::optional<GoldStandard> gold;
  for (int i = first_arg; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--key") {
      const char* v = next();
      if (v == nullptr) return Fail("--key needs a value");
      Result<std::vector<std::pair<std::string, size_t>>> key =
          ParseKeySpecArg(v);
      if (!key.ok()) return Fail(key.status().ToString());
      config.key = std::move(key).value();
    } else if (arg == "--reduction") {
      const char* v = next();
      if (v == nullptr) return Fail("--reduction needs a value");
      Result<ReductionMethod> method = ParseReduction(v);
      if (!method.ok()) return Fail(method.status().ToString());
      config.reduction = *method;
    } else if (arg == "--window") {
      const char* v = next();
      double w = 0.0;
      if (v == nullptr || !ParseDouble(v, &w)) {
        return Fail("--window needs a number");
      }
      config.window = static_cast<size_t>(w);
    } else if (arg == "--t-lambda") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &config.final_thresholds.t_lambda)) {
        return Fail("--t-lambda needs a number");
      }
    } else if (arg == "--t-mu") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &config.final_thresholds.t_mu)) {
        return Fail("--t-mu needs a number");
      }
    } else if (arg == "--derivation") {
      const char* v = next();
      if (v == nullptr) return Fail("--derivation needs a value");
      Result<DerivationKind> kind = ParseDerivation(v);
      if (!kind.ok()) return Fail(kind.status().ToString());
      config.derivation = *kind;
    } else if (arg == "--workers") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 0) {
        return Fail("--workers needs a non-negative number");
      }
      config.workers = static_cast<size_t>(n);
    } else if (arg == "--batch") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 1) {
        return Fail("--batch needs a positive number");
      }
      config.batch_size = static_cast<size_t>(n);
    } else if (arg == "--prepare") {
      Standardizer standard;
      standard.LowerCase().TrimWhitespace().CollapseWhitespace();
      config.preparation =
          DataPreparation::Uniform(standard, rel.schema().arity());
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--histogram") {
      histogram = true;
    } else if (arg == "--gold") {
      const char* v = next();
      if (v == nullptr) return Fail("--gold needs a file");
      std::ifstream in(v);
      if (!in) return Fail(std::string("cannot open '") + v + "'");
      std::stringstream buffer;
      buffer << in.rdbuf();
      Result<GoldStandard> parsed = ParseGoldStandard(buffer.str());
      if (!parsed.ok()) return Fail(parsed.status().ToString());
      gold = std::move(parsed).value();
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, rel.schema());
  if (!detector.ok()) return Fail(detector.status().ToString());
  Result<DetectionResult> result = detector->Run(rel);
  if (!result.ok()) return Fail(result.status().ToString());
  const GoldStandard* gold_ptr = gold.has_value() ? &*gold : nullptr;
  std::cout << (csv ? DecisionsToCsv(*result, gold_ptr)
                    : DetectionReport(*result, gold_ptr));
  if (histogram) {
    SimilarityHistogram hist(20);
    for (const PairDecisionRecord& rec : result->decisions) {
      hist.Add(rec.similarity);
    }
    std::cout << "\ncandidate similarity distribution ("
              << hist.total() << " pairs):\n"
              << hist.ToString();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: pddcli <detect|stats|demo> [file] [options]");
  }
  std::string command = argv[1];
  if (command == "demo") {
    XRelation r34 = BuildR34();
    std::cout << ComputeStatistics(r34).ToString() << "\n";
    return RunDetect(r34, argc, argv, 2);
  }
  if (argc < 3) return Fail(command + " needs a relation file");
  Result<XRelation> rel = LoadRelation(argv[2]);
  if (!rel.ok()) return Fail(rel.status().ToString());
  if (command == "stats") {
    std::cout << "relation " << rel->name() << "\n"
              << ComputeStatistics(*rel).ToString();
    return 0;
  }
  if (command == "detect") {
    return RunDetect(*rel, argc, argv, 3);
  }
  if (command == "explain") {
    if (argc < 5) return Fail("explain needs <file> <id1> <id2>");
    const XTuple* t1 = nullptr;
    const XTuple* t2 = nullptr;
    for (const XTuple& t : rel->xtuples()) {
      if (t.id() == argv[3]) t1 = &t;
      if (t.id() == argv[4]) t2 = &t;
    }
    if (t1 == nullptr || t2 == nullptr) {
      return Fail("tuple id not found in relation");
    }
    DetectorConfig config;
    config.key.clear();
    config.key.emplace_back(rel->schema().attribute(0).name, 3);
    if (rel->schema().arity() > 1) {
      config.key.emplace_back(rel->schema().attribute(1).name, 2);
    }
    config.weights.assign(rel->schema().arity(),
                          1.0 / static_cast<double>(rel->schema().arity()));
    Result<DuplicateDetector> detector =
        DuplicateDetector::Make(config, rel->schema());
    if (!detector.ok()) return Fail(detector.status().ToString());
    PairExplanation explanation = ExplainPair(*detector, *t1, *t2);
    std::cout << explanation.ToString(rel->schema());
    return 0;
  }
  return Fail("unknown command '" + command + "'");
}
