// pddcli — command-line duplicate detection for probabilistic relations.
//
// Usage:
//   pddcli detect  <relation.pxr> [options]     run detection, print report
//   pddcli stats   <relation.pxr>               profile a relation
//   pddcli explain <relation.pxr> <id1> <id2> [options]
//                                               per-alternative breakdown
//                                               of one pair's decision
//   pddcli lint-plan <plan-file>                validate a plan spec
//                                               offline: unknown keys /
//                                               components / values fail
//                                               with the parser's
//                                               diagnostics, and every
//                                               accepted key is
//                                               classified (fingerprint-
//                                               relevant, fingerprint-
//                                               irrelevant throughput
//                                               knob, decision-relevant
//                                               for the cache key);
//                                               also spelled --lint-plan
//   pddcli demo                                 run on the paper's R34
//   pddcli index-build <relation.pxr> <out.pddindex> [options]
//                                               run detection and compile
//                                               the result into a
//                                               pdd.index.v1 serving
//                                               index (same plan/executor
//                                               options as detect; see
//                                               README "Decision index")
//   pddcli index-query <pair|cluster|members|inspect|verify|bench> ...
//                                               query/inspect/verify an
//                                               index file (same surface
//                                               as the pddquery tool)
//
// Options for `detect`:
//   --plan FILE                    load a declarative plan spec
//                                  (`key = value` lines; see README
//                                  "Plan files"); applied before any
//                                  other option regardless of position
//   --set key=value                override one plan parameter (may
//                                  repeat; applied after all other
//                                  options)
//   --print-plan                   print the resolved plan in canonical
//                                  spec form (with its fingerprint as a
//                                  comment) and exit without running
//   --key attr:len[,attr:len...]   sorting/blocking key (default: first
//                                  two attributes, prefix 3 and 2)
//   --reduction NAME               any registered reduction (see
//                                  --print-plan / README; default: full)
//   --window N                     SNM window (default 3)
//   --t-lambda X --t-mu Y          thresholds (default 0.4 / 0.7)
//   --derivation NAME              any registered derivation (default:
//                                  expected_similarity)
//   --prepare                      lowercase/trim/collapse before matching
//   --workers N                    decide candidate batches on N threads
//                                  (default 0 = serial; results identical)
//   --batch N                      candidates per executor batch
//                                  (default 256)
//   --kernel auto|scalar|columnar  match-stage implementation (default
//                                  auto = columnar when every selected
//                                  comparator has a kernel; results are
//                                  bit-identical either way — a pure
//                                  throughput knob like --workers; the
//                                  resolved kernel shows under
//                                  --cache-stats)
//   --shards N                     partition the candidate stream into N
//                                  shards drained by per-shard worker
//                                  sets and merged deterministically
//                                  (default 1 = unsharded; the report is
//                                  byte-identical for any shard count —
//                                  a runtime placement knob like
//                                  --workers, it never changes the plan
//                                  fingerprint; plans can instead bake
//                                  sharding in via `shard.count` /
//                                  `shard.strategy` spec keys)
//   --cache-capacity N             enable the in-memory decision cache
//                                  bounded to N entries (LRU; default
//                                  capacity 1048576 when another cache
//                                  flag enables caching)
//   --cache-file PATH              warm-start from PATH when it exists
//                                  and append this run's new decisions
//                                  to it afterwards (append-only; the
//                                  report stays byte-identical between
//                                  warm and cold runs)
//   --cache-stats                  print the execution statistics
//                                  (per-stage wall times, cache hits)
//                                  to stderr after the run
//   --stream-candidates            print the candidate streaming
//                                  diagnostics to stderr after the run:
//                                  whether the plan's reduction streams
//                                  natively (bounded live pairs) or
//                                  through the materializing adapter,
//                                  batches pulled, and the live-candidate
//                                  high-water mark of the drain
//   --metrics FILE                 write the run's telemetry sidecar
//                                  (schema pdd.telemetry.v1: counters,
//                                  gauges, histograms, info, span tree)
//                                  to FILE after the run; stdout stays
//                                  byte-identical
//   --metrics-format json|prom     sidecar format (default json;
//                                  prom = Prometheus text exposition)
//   --csv                          emit per-pair CSV instead of the report
//   --gold FILE                    gold pairs ("id1,id2" lines) — the
//                                  report gains verification metrics
//   --histogram                    append an ASCII histogram of the
//                                  candidate similarities (threshold
//                                  selection aid)
//
// Relations use the text format of pdb/text_format.h (.pxr files).
// `--print-plan` output is itself a valid plan file:
//   pddcli detect r.pxr --reduction canopy --print-plan > plan.txt
//   pddcli detect r.pxr --plan plan.txt

#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/spec_closure.h"
#include "cache/decision_cache.h"
#include "core/detector.h"
#include "pipeline/detection_plan.h"
#include "core/explain.h"
#include "core/paper_examples.h"
#include "core/report_writer.h"
#include "index/index_cli.h"
#include "obs/export.h"
#include "obs/run_telemetry.h"
#include "pdb/statistics.h"
#include "pdb/text_format.h"
#include "plan/plan_spec.h"
#include "plan/registry.h"
#include "plan/translate.h"
#include "prep/standardizer.h"
#include "util/string_util.h"
#include "verify/gold_io.h"
#include "verify/similarity_histogram.h"

namespace {

using namespace pdd;

int Fail(const std::string& message) {
  std::cerr << "pddcli: " << message << "\n";
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<XRelation> LoadRelation(const std::string& path) {
  PDD_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseXRelation(text);
}

int RunDetect(const XRelation& rel, int argc, char** argv, int first_arg) {
  DetectorConfig config;
  // Default key: first two attributes, prefixes 3 and 2.
  config.key.clear();
  config.key.emplace_back(rel.schema().attribute(0).name, 3);
  if (rel.schema().arity() > 1) {
    config.key.emplace_back(rel.schema().attribute(1).name, 2);
  }
  config.weights.assign(rel.schema().arity(),
                        1.0 / static_cast<double>(rel.schema().arity()));
  // A plan file applies before any other option, wherever it appears.
  for (int i = first_arg; i < argc; ++i) {
    if (std::string(argv[i]) == "--plan") {
      if (i + 1 >= argc) return Fail("--plan needs a file");
      Result<std::string> text = ReadFile(argv[i + 1]);
      if (!text.ok()) return Fail(text.status().ToString());
      Result<PlanSpec> spec = PlanSpec::Parse(*text);
      if (!spec.ok()) return Fail(spec.status().ToString());
      Result<DetectorConfig> merged =
          DetectorConfig::FromSpec(*spec, std::move(config));
      if (!merged.ok()) return Fail(merged.status().ToString());
      config = std::move(merged).value();
    }
  }
  bool csv = false;
  bool histogram = false;
  bool print_plan = false;
  bool cache_stats = false;
  bool stream_candidates = false;
  size_t cache_capacity = 0;  // 0 = not set; default applied below
  size_t shard_override = 0;  // 0 = not set; plan's sharding applies
  std::string cache_file;
  std::string metrics_file;
  std::string metrics_format = "json";
  PlanSpec overrides;
  std::optional<GoldStandard> gold;
  for (int i = first_arg; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--plan") {
      ++i;  // handled in the first pass
    } else if (arg == "--set") {
      const char* v = next();
      if (v == nullptr) return Fail("--set needs key=value");
      Status status = overrides.SetAssignment(v);
      if (!status.ok()) return Fail(status.ToString());
    } else if (arg == "--print-plan") {
      print_plan = true;
    } else if (arg == "--key") {
      const char* v = next();
      if (v == nullptr) return Fail("--key needs a value");
      Result<std::vector<std::pair<std::string, size_t>>> key =
          ParseKeyComponents(v);
      if (!key.ok()) return Fail(key.status().ToString());
      config.key = std::move(key).value();
    } else if (arg == "--reduction") {
      const char* v = next();
      if (v == nullptr) return Fail("--reduction needs a value");
      Result<const ComponentRegistry::ReductionEntry*> method =
          ComponentRegistry::Global().FindReduction(v);
      if (!method.ok()) return Fail(method.status().ToString());
      config.reduction = (*method)->method;
    } else if (arg == "--window") {
      const char* v = next();
      double w = 0.0;
      if (v == nullptr || !ParseDouble(v, &w)) {
        return Fail("--window needs a number");
      }
      config.window = static_cast<size_t>(w);
    } else if (arg == "--t-lambda") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &config.final_thresholds.t_lambda)) {
        return Fail("--t-lambda needs a number");
      }
    } else if (arg == "--t-mu") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &config.final_thresholds.t_mu)) {
        return Fail("--t-mu needs a number");
      }
    } else if (arg == "--derivation") {
      const char* v = next();
      if (v == nullptr) return Fail("--derivation needs a value");
      Result<const ComponentRegistry::DerivationEntry*> kind =
          ComponentRegistry::Global().FindDerivation(v);
      if (!kind.ok()) return Fail(kind.status().ToString());
      config.derivation = (*kind)->kind;
    } else if (arg == "--workers") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 0) {
        return Fail("--workers needs a non-negative number");
      }
      config.workers = static_cast<size_t>(n);
    } else if (arg == "--batch") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 1) {
        return Fail("--batch needs a positive number");
      }
      config.batch_size = static_cast<size_t>(n);
    } else if (arg == "--kernel") {
      const char* v = next();
      if (v == nullptr) return Fail("--kernel needs auto, scalar or columnar");
      Result<MatchKernel> kernel = MatchKernelFromName(v);
      if (!kernel.ok()) return Fail(kernel.status().ToString());
      config.match_kernel = *kernel;
    } else if (arg == "--shards") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 1) {
        return Fail("--shards needs a positive number");
      }
      shard_override = static_cast<size_t>(n);
    } else if (arg == "--cache-capacity") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 1) {
        return Fail("--cache-capacity needs a positive number");
      }
      cache_capacity = static_cast<size_t>(n);
    } else if (arg == "--cache-file") {
      const char* v = next();
      if (v == nullptr) return Fail("--cache-file needs a path");
      cache_file = v;
    } else if (arg == "--cache-stats") {
      cache_stats = true;
    } else if (arg == "--stream-candidates") {
      stream_candidates = true;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (v == nullptr) return Fail("--metrics needs a file");
      metrics_file = v;
    } else if (arg == "--metrics-format") {
      const char* v = next();
      if (v == nullptr || (std::string(v) != "json" && std::string(v) != "prom")) {
        return Fail("--metrics-format needs json or prom");
      }
      metrics_format = v;
    } else if (arg == "--prepare") {
      Standardizer standard;
      standard.LowerCase().TrimWhitespace().CollapseWhitespace();
      config.preparation = DataPreparation::UniformAll(std::move(standard));
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--histogram") {
      histogram = true;
    } else if (arg == "--gold") {
      const char* v = next();
      if (v == nullptr) return Fail("--gold needs a file");
      std::ifstream in(v);
      if (!in) return Fail(std::string("cannot open '") + v + "'");
      std::stringstream buffer;
      buffer << in.rdbuf();
      Result<GoldStandard> parsed = ParseGoldStandard(buffer.str());
      if (!parsed.ok()) return Fail(parsed.status().ToString());
      gold = std::move(parsed).value();
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }
  // --set overrides apply last, on top of plan file and flags.
  if (!overrides.params().empty()) {
    Result<DetectorConfig> merged =
        DetectorConfig::FromSpec(overrides, std::move(config));
    if (!merged.ok()) return Fail(merged.status().ToString());
    config = std::move(merged).value();
  }
  if (print_plan) {
    PlanSpec spec = config.ToSpec();
    std::cout << "# pddcli plan (fingerprint " +
                     FingerprintHex(spec.Fingerprint()) + ")\n"
              << spec.ToText();
    return 0;
  }
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, rel.schema());
  if (!detector.ok()) return Fail(detector.status().ToString());
  if (shard_override > 0) {
    // A run-level placement knob: the plan (and the report it prints)
    // stays byte-identical to the unsharded run.
    detector->set_shard_options({shard_override, ShardStrategy::kAuto});
  }
  // Any cache flag enables the decision cache; --cache-file also
  // warm-starts from earlier invocations.
  std::shared_ptr<ShardedDecisionCache> cache;
  if (cache_capacity > 0 || !cache_file.empty() || cache_stats) {
    ShardedDecisionCacheOptions cache_options;
    if (cache_capacity > 0) cache_options.capacity = cache_capacity;
    cache = std::make_shared<ShardedDecisionCache>(cache_options);
    if (!cache_file.empty()) {
      Status loaded = cache->LoadSnapshot(cache_file);
      // A missing file is a cold first run, not an error.
      if (!loaded.ok() && loaded.code() != StatusCode::kNotFound) {
        return Fail(loaded.ToString());
      }
    }
    detector->set_cache(cache);
  }
  // The stats report renders the per-stage breakdown, so collect it.
  if (cache_stats) detector->set_collect_stage_timings(true);
  Result<DetectionResult> result = detector->Run(rel);
  if (!result.ok()) return Fail(result.status().ToString());
  if (cache != nullptr && !cache_file.empty()) {
    Status saved = cache->AppendSnapshot(cache_file);
    if (!saved.ok()) return Fail(saved.ToString());
  }
  if (cache_stats || stream_candidates || !metrics_file.empty()) {
    // One telemetry, one exporter code path for every diagnostic: the
    // stderr blocks and the sidecar are all renderings of this
    // registry. Stderr only (stdout stays byte-identical across warm/
    // cold, streamed/materialized and sharded/unsharded runs).
    RunTelemetry telemetry = result->telemetry != nullptr
                                 ? *result->telemetry
                                 : TelemetryFromResult(*result);
    if (cache != nullptr) {
      AddCacheLifetimeStats(cache->Stats(), &telemetry.metrics);
    }
    std::unique_ptr<PairGenerator> generator =
        detector->plan().MakePairGenerator();
    telemetry.metrics.SetInfo("exec.reduction", generator->name());
    telemetry.metrics.SetInfo(
        "exec.streaming",
        generator->native_streaming() ? "native" : "adapter");
    if (cache_stats) std::cerr << RenderExecutionStats(telemetry);
    if (stream_candidates) std::cerr << RenderStreamDiagnostics(telemetry);
    if (!metrics_file.empty()) {
      std::ofstream out(metrics_file);
      if (!out) return Fail("cannot write '" + metrics_file + "'");
      out << (metrics_format == "prom" ? TelemetryToPrometheus(telemetry)
                                       : TelemetryToJson(telemetry));
      if (!out.good()) return Fail("error writing '" + metrics_file + "'");
    }
  }
  const GoldStandard* gold_ptr = gold.has_value() ? &*gold : nullptr;
  std::cout << (csv ? DecisionsToCsv(*result, gold_ptr)
                    : DetectionReport(*result, gold_ptr));
  if (histogram) {
    SimilarityHistogram hist(20);
    for (const PairDecisionRecord& rec : result->decisions) {
      hist.Add(rec.similarity);
    }
    std::cout << "\ncandidate similarity distribution ("
              << hist.total() << " pairs):\n"
              << hist.ToString();
  }
  return 0;
}

int RunLintPlan(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return Fail(text.status().ToString());
  Result<PlanSpec> spec = PlanSpec::Parse(*text);
  if (!spec.ok()) {
    return Fail("lint-plan: " + spec.status().ToString());
  }
  // FromSpec is the authoritative validator: unknown keys, unresolvable
  // component names (with nearest-match suggestions) and malformed
  // values all fail here.
  Result<DetectorConfig> config = DetectorConfig::FromSpec(*spec);
  if (!config.ok()) {
    return Fail("lint-plan: " + config.status().ToString());
  }
  Status valid = config->Validate();
  if (!valid.ok()) {
    return Fail("lint-plan: " + valid.ToString());
  }
  PlanSpec resolved = config->ToSpec();
  PlanSpec decision_subset;
  for (const auto& [key, value] : resolved.params().entries()) {
    if (!IsDecisionIrrelevantSpecKey(key)) {
      decision_subset.params().Set(key, value);
    }
  }
  std::cout << "plan lint: " << path << ": " << spec->params().size()
            << " keys, fingerprint " << FingerprintHex(resolved.Fingerprint())
            << ", decision fingerprint "
            << FingerprintHex(decision_subset.Fingerprint()) << "\n";
  // Per-key classification of what the author actually wrote (the
  // resolved spec adds defaulted keys; those are not interesting here).
  for (const auto& [key, value] : spec->params().entries()) {
    std::cout << "  " << key;
    if (FingerprintIrrelevantSpecKeys().count(key) > 0) {
      std::cout << ": fingerprint-irrelevant (throughput/placement knob; "
                   "never changes the report or the plan identity)";
    } else if (IsDecisionIrrelevantSpecKey(key)) {
      std::cout << ": fingerprint-relevant, decision-irrelevant (decision "
                   "cache entries carry across its values)";
    } else {
      std::cout << ": decision-relevant (changing it structurally "
                   "invalidates cached decisions)";
    }
    std::cout << "\n";
  }
  std::cout << "plan lint: OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: pddcli <detect|stats|demo> [file] [options]");
  }
  std::string command = argv[1];
  if (command == "lint-plan" || command == "--lint-plan") {
    if (argc < 3) return Fail("lint-plan needs a plan file");
    return RunLintPlan(argv[2]);
  }
  if (command == "demo") {
    XRelation r34 = BuildR34();
    // Keep --print-plan output pipeable back into --plan: the plan
    // must be the only stdout output.
    bool print_plan = false;
    for (int i = 2; i < argc; ++i) {
      if (std::string(argv[i]) == "--print-plan") print_plan = true;
    }
    if (!print_plan) std::cout << ComputeStatistics(r34).ToString() << "\n";
    return RunDetect(r34, argc, argv, 2);
  }
  if (command == "index-build") {
    return RunIndexBuild(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (command == "index-query") {
    if (argc < 3) {
      return Fail(
          "index-query needs <pair|cluster|members|inspect|verify|bench>");
    }
    return RunIndexQuery(argv[2],
                         std::vector<std::string>(argv + 3, argv + argc));
  }
  if (argc < 3) return Fail(command + " needs a relation file");
  Result<XRelation> rel = LoadRelation(argv[2]);
  if (!rel.ok()) return Fail(rel.status().ToString());
  if (command == "stats") {
    std::cout << "relation " << rel->name() << "\n"
              << ComputeStatistics(*rel).ToString();
    return 0;
  }
  if (command == "detect") {
    return RunDetect(*rel, argc, argv, 3);
  }
  if (command == "explain") {
    if (argc < 5) return Fail("explain needs <file> <id1> <id2>");
    const XTuple* t1 = nullptr;
    const XTuple* t2 = nullptr;
    for (const XTuple& t : rel->xtuples()) {
      if (t.id() == argv[3]) t1 = &t;
      if (t.id() == argv[4]) t2 = &t;
    }
    if (t1 == nullptr || t2 == nullptr) {
      return Fail("tuple id not found in relation");
    }
    DetectorConfig config;
    config.key.clear();
    config.key.emplace_back(rel->schema().attribute(0).name, 3);
    if (rel->schema().arity() > 1) {
      config.key.emplace_back(rel->schema().attribute(1).name, 2);
    }
    config.weights.assign(rel->schema().arity(),
                          1.0 / static_cast<double>(rel->schema().arity()));
    Result<DuplicateDetector> detector =
        DuplicateDetector::Make(config, rel->schema());
    if (!detector.ok()) return Fail(detector.status().ToString());
    PairExplanation explanation = ExplainPair(*detector, *t1, *t2);
    std::cout << explanation.ToString(rel->schema());
    return 0;
  }
  return Fail("unknown command '" + command + "'");
}
