// pddgen — synthetic probabilistic dataset generator.
//
// Usage:
//   pddgen person   <out.pxr> <gold.csv> [--entities N] [--dup-rate X]
//                   [--error-rate X] [--uncertainty X] [--seed N]
//                   [--full-names]
//   pddgen astro    <out1.pxr> <out2.pxr> <gold.csv> [--objects N]
//                   [--seed N]
//   pddgen biblio   <out.pxr> <gold.csv> [--publications N] [--seed N]
//
// Relations are written in the text format of pdb/text_format.h; gold
// standards as "id1,id2" lines (verify/gold_io.h).

#include <fstream>
#include <iostream>

#include "datagen/astronomy_generator.h"
#include "datagen/bibliography_generator.h"
#include "datagen/person_generator.h"
#include "pdb/text_format.h"
#include "util/string_util.h"
#include "verify/gold_io.h"

namespace {

using namespace pdd;

int Fail(const std::string& message) {
  std::cerr << "pddgen: " << message << "\n";
  return 1;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return true;
}

// Shared numeric flag scanning.
struct Flags {
  double entities = 100;
  double dup_rate = 0.6;
  double error_rate = 0.04;
  double uncertainty = 0.3;
  double objects = 100;
  double publications = 100;
  double seed = 42;
  bool full_names = false;
};

int ParseFlags(int argc, char** argv, int first, Flags* flags) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    auto number = [&](double* slot) -> int {
      if (i + 1 >= argc) return Fail(arg + " needs a value");
      double v = 0.0;
      if (!ParseDouble(argv[++i], &v)) return Fail(arg + " needs a number");
      *slot = v;
      return 0;
    };
    int rc = 0;
    if (arg == "--entities") {
      rc = number(&flags->entities);
    } else if (arg == "--dup-rate") {
      rc = number(&flags->dup_rate);
    } else if (arg == "--error-rate") {
      rc = number(&flags->error_rate);
    } else if (arg == "--uncertainty") {
      rc = number(&flags->uncertainty);
    } else if (arg == "--objects") {
      rc = number(&flags->objects);
    } else if (arg == "--publications") {
      rc = number(&flags->publications);
    } else if (arg == "--seed") {
      rc = number(&flags->seed);
    } else if (arg == "--full-names") {
      flags->full_names = true;
    } else {
      return Fail("unknown option '" + arg + "'");
    }
    if (rc != 0) return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: pddgen <person|astro|biblio> <outputs...> [options]");
  }
  std::string kind = argv[1];
  if (kind == "person") {
    if (argc < 4) return Fail("person needs <out.pxr> <gold.csv>");
    Flags flags;
    int rc = ParseFlags(argc, argv, 4, &flags);
    if (rc != 0) return rc;
    PersonGenOptions options;
    options.num_entities = static_cast<size_t>(flags.entities);
    options.duplicate_rate = flags.dup_rate;
    options.errors.char_error_rate = flags.error_rate;
    options.uncertainty.value_uncertainty_prob = flags.uncertainty;
    options.uncertainty.xtuple_alternative_prob = flags.uncertainty / 2;
    options.seed = static_cast<uint64_t>(flags.seed);
    options.full_names = flags.full_names;
    GeneratedData data = GeneratePersons(options);
    if (!WriteFile(argv[2], SerializeXRelation(data.relation)) ||
        !WriteFile(argv[3], SerializeGoldStandard(data.gold))) {
      return Fail("cannot write output files");
    }
    std::cout << "wrote " << data.relation.size() << " records, "
              << data.gold.size() << " gold pairs\n";
    return 0;
  }
  if (kind == "astro") {
    if (argc < 5) return Fail("astro needs <out1.pxr> <out2.pxr> <gold.csv>");
    Flags flags;
    int rc = ParseFlags(argc, argv, 5, &flags);
    if (rc != 0) return rc;
    AstroGenOptions options;
    options.num_objects = static_cast<size_t>(flags.objects);
    options.seed = static_cast<uint64_t>(flags.seed);
    GeneratedSources sources = GenerateTelescopeSources(options);
    if (!WriteFile(argv[2], SerializeXRelation(sources.source1)) ||
        !WriteFile(argv[3], SerializeXRelation(sources.source2)) ||
        !WriteFile(argv[4], SerializeGoldStandard(sources.gold))) {
      return Fail("cannot write output files");
    }
    std::cout << "wrote " << sources.source1.size() << " + "
              << sources.source2.size() << " detections, "
              << sources.gold.size() << " gold pairs\n";
    return 0;
  }
  if (kind == "biblio") {
    if (argc < 4) return Fail("biblio needs <out.pxr> <gold.csv>");
    Flags flags;
    int rc = ParseFlags(argc, argv, 4, &flags);
    if (rc != 0) return rc;
    BiblioGenOptions options;
    options.num_publications = static_cast<size_t>(flags.publications);
    options.seed = static_cast<uint64_t>(flags.seed);
    GeneratedData data = GenerateBibliography(options);
    if (!WriteFile(argv[2], SerializeXRelation(data.relation)) ||
        !WriteFile(argv[3], SerializeGoldStandard(data.gold))) {
      return Fail("cannot write output files");
    }
    std::cout << "wrote " << data.relation.size() << " citations, "
              << data.gold.size() << " gold pairs\n";
    return 0;
  }
  return Fail("unknown generator '" + kind + "'");
}
