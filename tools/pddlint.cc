// pddlint — static determinism/correctness linter for the pdd tree.
//
// Usage:
//   pddlint [options]
//
// Options:
//   --root DIR        repository root to lint (default: the root this
//                     binary was compiled from, else the current
//                     directory)
//   --allowlist FILE  audited-site allowlist (default:
//                     ROOT/tools/pddlint_allowlist.txt when present)
//   --no-spec-closure skip the registry/spec closure check (source
//                     rules only)
//   --list-rules      print the rules and exit
//
// Output is compiler-style `file:line: [rule] message` per finding;
// exit status is nonzero when any finding survives the allowlist. CI
// runs this on every commit, next to the build.

#include <filesystem>
#include <iostream>

#include "analysis/lint.h"
#include "analysis/spec_closure.h"

int main(int argc, char** argv) {
  using namespace pdd;
  std::string root;
  std::string allowlist_path;
  bool spec_closure = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "pddlint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::cerr << "pddlint: --allowlist needs a file\n";
        return 2;
      }
      allowlist_path = argv[++i];
    } else if (arg == "--no-spec-closure") {
      spec_closure = false;
    } else if (arg == "--list-rules") {
      for (const LintRuleInfo& rule : LintRules()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    } else {
      std::cerr << "pddlint: unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (root.empty()) {
    root = DefaultSourceRoot();
    if (root.empty() || !std::filesystem::exists(root)) root = ".";
  }

  LintOptions options;
  if (allowlist_path.empty()) {
    std::filesystem::path candidate =
        std::filesystem::path(root) / "tools" / "pddlint_allowlist.txt";
    if (std::filesystem::exists(candidate)) {
      allowlist_path = candidate.string();
    }
  }
  if (!allowlist_path.empty()) {
    Status loaded = LoadLintAllowlist(allowlist_path, &options);
    if (!loaded.ok()) {
      std::cerr << "pddlint: " << loaded.ToString() << "\n";
      return 2;
    }
  }

  Result<std::vector<LintFinding>> findings = LintTree(root, options);
  if (!findings.ok()) {
    std::cerr << "pddlint: " << findings.status().ToString() << "\n";
    return 2;
  }
  size_t total = findings->size();
  for (const LintFinding& finding : *findings) {
    std::cout << finding.ToString() << "\n";
  }

  if (spec_closure) {
    Result<SpecClosureReport> closure = CheckSpecClosure(root);
    if (!closure.ok()) {
      std::cerr << "pddlint: " << closure.status().ToString() << "\n";
      return 2;
    }
    total += closure->findings.size();
    for (const LintFinding& finding : closure->findings) {
      std::cout << finding.ToString() << "\n";
    }
    std::cerr << "pddlint: spec closure over " << closure->read_keys.size()
              << " read keys / " << closure->printed_keys.size()
              << " printed keys\n";
  }

  if (total > 0) {
    std::cerr << "pddlint: " << total << " finding"
              << (total == 1 ? "" : "s") << "\n";
    return 1;
  }
  std::cerr << "pddlint: clean\n";
  return 0;
}
