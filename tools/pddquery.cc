// pddquery — build and serve pdd.index.v1 decision indexes.
//
// The serving half of the pipeline: `build` runs detection once and
// compiles the result into an immutable, mmap-able index file; the
// query subcommands answer duplicate/cluster questions from that file
// in microseconds without touching the pipeline again.
//
// Usage:
//   pddquery build   <relation.pxr> <out.pddindex> [options]
//                    run detection, compile the report into an index
//                    (plan/executor options match `pddcli detect`:
//                    --plan FILE, --set key=value, --workers N,
//                    --batch N, --shards N, --kernel NAME, plus
//                    --metrics FILE [--metrics-format json|prom])
//   pddquery pair    <index> <id1> <id2>
//                    the run's decision for one pair, printed exactly
//                    like a report --csv row (`id1,id2,sim,class`); a
//                    pair the run never examined prints `id1,id2,,none`
//   pddquery cluster <index> <id>       cluster id + members of a record
//   pddquery members <index> <cluster-id>   members of a cluster
//   pddquery inspect <index>            header/identity/size dump
//   pddquery verify  <index> <relation.pxr> [plan options]
//                    staleness gate: rejects a plan-fingerprint
//                    mismatch before running anything, then reruns the
//                    pipeline and proves the index byte-identical to
//                    the fresh report (source digest + every answer)
//   pddquery bench   <index> [--point N] [--membership N]
//                    [--metrics FILE [--metrics-format json|prom]]
//                    deterministic query sweep; reports queries/sec
//
// Exit status 0 on success; 1 on any error, including a stale,
// corrupted or truncated index.

#include <iostream>
#include <string>
#include <vector>

#include "index/index_cli.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: pddquery "
                 "<build|pair|cluster|members|inspect|verify|bench> ...\n";
    return 1;
  }
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "build") return pdd::RunIndexBuild(args);
  return pdd::RunIndexQuery(command, args);
}
