// pddserve — standing ingest consumer: tuples arrive over time, get
// decided against the standing relation as they land, and the final
// report is byte-identical to a one-shot batch run of the same tuples.
//
// Usage:
//   pddserve <arrivals.pxr> [options]
//
// The relation file is the arrival feed: a producer thread pushes its
// tuples into the bounded ingest queue at the configured rate while
// the main thread runs the standing drain, deciding every crossing
// pair of every admitted tuple as it arrives. When the feed ends the
// queue closes, the drain finishes, and the deterministic final report
// (the canonical id-sorted tuple set re-run through the batch path,
// ~100% decision-cache hits) goes to stdout.
//
// Detection options (same semantics as pddcli detect):
//   --plan FILE          declarative plan spec, applied first
//   --set key=value      override one plan parameter (applied last)
//   --key attr:len[,..]  sorting key (default: first two attributes)
//   --prepare            lowercase/trim/collapse before matching
//   --t-lambda X --t-mu Y  classification thresholds
//   --workers N          decide batches on N threads (default 0)
//   --batch N            candidates per executor batch (default 256)
//   --shards N           shard the FINAL report drain (default 1; the
//                        live drain is unsharded by design)
//
// Serving options:
//   --seed FILE          already-deduplicated standing prefix: arrivals
//                        are decided against it, intra-seed pairs are
//                        not re-examined (the incremental scenario)
//   --rate N             arrivals per second (default 0 = full speed)
//   --queue N            ingest queue capacity (default 256)
//   --drop               shed load when the queue is full (TryPush)
//                        instead of blocking the producer (default
//                        blocks — lossless backpressure)
//   --shuffle SEED       deterministically shuffle the arrival order
//                        (the report is identical for every order)
//   --stream-decisions   print each live decision to stderr as it
//                        commits ("decision id1 id2 class similarity")
//   --stats              print execution statistics to stderr
//
// Durability / serving artifacts:
//   --cache-capacity N   bound the decision cache (default 1048576)
//   --cache-file PATH    warm-start from PATH when it exists (the
//                        crash-restart path) and append new decisions
//   --snapshot-every N   also append a cache snapshot every N admitted
//                        tuples while serving (requires --cache-file)
//   --index FILE         compile a pdd.index.v1 serving index of the
//                        standing set to FILE after the final report
//   --index-every N      also recompile it every N admitted tuples
//                        while serving (requires --index)
//   --dump-relation FILE write the canonical (id-sorted) standing
//                        relation as .pxr — the exact input a batch
//                        `pddcli detect` run reproduces the report from
//   --metrics FILE       write the pdd.telemetry.v1 sidecar (includes
//                        the exec.ingest.* family and the
//                        time.ingest.admit_to_decide_micros histogram)
//   --metrics-format json|prom   sidecar format (default json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/decision_cache.h"
#include "core/config.h"
#include "core/report_writer.h"
#include "decision/classifier.h"
#include "index/index_builder.h"
#include "ingest/standing_session.h"
#include "obs/export.h"
#include "obs/run_telemetry.h"
#include "pdb/text_format.h"
#include "pipeline/detection_plan.h"
#include "plan/plan_spec.h"
#include "plan/translate.h"
#include "prep/standardizer.h"
#include "util/string_util.h"

namespace {

using namespace pdd;

int Fail(const std::string& message) {
  std::cerr << "pddserve: " << message << "\n";
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<XRelation> LoadRelation(const std::string& path) {
  PDD_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseXRelation(text);
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Latency + live-decision accounting, driven from the executor's
/// decision sink (calls are serialized by the executor, so no lock).
struct SinkState {
  const IngestStream* stream = nullptr;
  bool stream_decisions = false;
  /// index2 -> crossing pairs still undecided for that tuple. Tuple j
  /// has exactly j crossing pairs (0,j)..(j-1,j).
  std::unordered_map<size_t, size_t> remaining;
  LogHistogram latency;
  uint64_t decided_tuples = 0;
};

void OnDecision(SinkState* state, const PairDecisionRecord& rec) {
  if (state->stream_decisions) {
    std::cerr << "decision " << rec.id1 << " " << rec.id2 << " "
              << MatchClassCode(rec.match_class) << " "
              << FormatDouble(rec.similarity, 6) << "\n";
  }
  const size_t j = rec.index2;
  auto [it, inserted] = state->remaining.emplace(j, j);
  if (--(it->second) > 0) return;
  state->remaining.erase(it);
  ++state->decided_tuples;
  const uint64_t stamp = state->stream->admitted_stamp(j);
  if (stamp != 0) {
    const uint64_t now = NowMicros();
    state->latency.Record(now > stamp ? now - stamp : 0);
  }
}

/// Compiles the current standing set into a pdd.index.v1 file: batch
/// re-run of the canonical snapshot (shared cache makes already-decided
/// pairs free), then image build + atomic replace via temp + rename.
/// Safe to call while the live drain runs.
Status BuildIndexOnce(StandingSession* session, const std::string& path,
                      size_t batch_size, std::shared_ptr<DecisionCache> cache) {
  XRelation canonical = session->CanonicalRelation();
  PDD_ASSIGN_OR_RETURN(std::unique_ptr<CandidateStream> stream,
                       MakeFullStream(*session->plan(), canonical));
  StageExecutorOptions options;
  options.batch_size = batch_size;
  options.cache = std::move(cache);
  PDD_ASSIGN_OR_RETURN(
      DetectionResult result,
      StageExecutor(session->plan(), options).Execute(*stream));
  PDD_ASSIGN_OR_RETURN(std::string image,
                       BuildDecisionIndexImage(canonical, result));
  const std::string tmp = path + ".tmp";
  PDD_RETURN_IF_ERROR(WriteDecisionIndexFile(tmp, image));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: pddserve <arrivals.pxr> [options]");
  }
  Result<XRelation> arrivals = LoadRelation(argv[1]);
  if (!arrivals.ok()) return Fail(arrivals.status().ToString());

  DetectorConfig config;
  config.key.clear();
  config.key.emplace_back(arrivals->schema().attribute(0).name, 3);
  if (arrivals->schema().arity() > 1) {
    config.key.emplace_back(arrivals->schema().attribute(1).name, 2);
  }
  config.weights.assign(arrivals->schema().arity(),
                        1.0 / static_cast<double>(arrivals->schema().arity()));
  // A plan file applies before any other option, wherever it appears.
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--plan") {
      if (i + 1 >= argc) return Fail("--plan needs a file");
      Result<std::string> text = ReadFile(argv[i + 1]);
      if (!text.ok()) return Fail(text.status().ToString());
      Result<PlanSpec> spec = PlanSpec::Parse(*text);
      if (!spec.ok()) return Fail(spec.status().ToString());
      Result<DetectorConfig> merged =
          DetectorConfig::FromSpec(*spec, std::move(config));
      if (!merged.ok()) return Fail(merged.status().ToString());
      config = std::move(merged).value();
    }
  }

  std::optional<XRelation> seed;
  double rate = 0.0;
  size_t queue_capacity = 256;
  bool drop_mode = false;
  bool have_shuffle = false;
  uint64_t shuffle_seed = 0;
  bool stream_decisions = false;
  bool stats = false;
  size_t shard_count = 1;
  size_t cache_capacity = 0;
  std::string cache_file;
  size_t snapshot_every = 0;
  std::string index_file;
  size_t index_every = 0;
  std::string dump_relation;
  std::string metrics_file;
  std::string metrics_format = "json";
  PlanSpec overrides;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--plan") {
      ++i;  // handled in the first pass
    } else if (arg == "--set") {
      const char* v = next();
      if (v == nullptr) return Fail("--set needs key=value");
      Status status = overrides.SetAssignment(v);
      if (!status.ok()) return Fail(status.ToString());
    } else if (arg == "--key") {
      const char* v = next();
      if (v == nullptr) return Fail("--key needs a value");
      Result<std::vector<std::pair<std::string, size_t>>> key =
          ParseKeyComponents(v);
      if (!key.ok()) return Fail(key.status().ToString());
      config.key = std::move(key).value();
    } else if (arg == "--prepare") {
      Standardizer standard;
      standard.LowerCase().TrimWhitespace().CollapseWhitespace();
      config.preparation = DataPreparation::UniformAll(std::move(standard));
    } else if (arg == "--t-lambda") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &config.final_thresholds.t_lambda)) {
        return Fail("--t-lambda needs a number");
      }
    } else if (arg == "--t-mu") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &config.final_thresholds.t_mu)) {
        return Fail("--t-mu needs a number");
      }
    } else if (arg == "--workers") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 0) {
        return Fail("--workers needs a non-negative number");
      }
      config.workers = static_cast<size_t>(n);
    } else if (arg == "--batch") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 1) {
        return Fail("--batch needs a positive number");
      }
      config.batch_size = static_cast<size_t>(n);
    } else if (arg == "--shards") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 1) {
        return Fail("--shards needs a positive number");
      }
      shard_count = static_cast<size_t>(n);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Fail("--seed needs a file");
      Result<XRelation> loaded = LoadRelation(v);
      if (!loaded.ok()) return Fail(loaded.status().ToString());
      seed = std::move(loaded).value();
    } else if (arg == "--rate") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &rate) || rate < 0) {
        return Fail("--rate needs a non-negative number");
      }
    } else if (arg == "--queue") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 1) {
        return Fail("--queue needs a positive number");
      }
      queue_capacity = static_cast<size_t>(n);
    } else if (arg == "--drop") {
      drop_mode = true;
    } else if (arg == "--shuffle") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 0) {
        return Fail("--shuffle needs a non-negative seed");
      }
      have_shuffle = true;
      shuffle_seed = static_cast<uint64_t>(n);
    } else if (arg == "--stream-decisions") {
      stream_decisions = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--cache-capacity") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 1) {
        return Fail("--cache-capacity needs a positive number");
      }
      cache_capacity = static_cast<size_t>(n);
    } else if (arg == "--cache-file") {
      const char* v = next();
      if (v == nullptr) return Fail("--cache-file needs a path");
      cache_file = v;
    } else if (arg == "--snapshot-every") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 1) {
        return Fail("--snapshot-every needs a positive number");
      }
      snapshot_every = static_cast<size_t>(n);
    } else if (arg == "--index") {
      const char* v = next();
      if (v == nullptr) return Fail("--index needs a file");
      index_file = v;
    } else if (arg == "--index-every") {
      const char* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(v, &n) || n < 1) {
        return Fail("--index-every needs a positive number");
      }
      index_every = static_cast<size_t>(n);
    } else if (arg == "--dump-relation") {
      const char* v = next();
      if (v == nullptr) return Fail("--dump-relation needs a file");
      dump_relation = v;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (v == nullptr) return Fail("--metrics needs a file");
      metrics_file = v;
    } else if (arg == "--metrics-format") {
      const char* v = next();
      if (v == nullptr ||
          (std::string(v) != "json" && std::string(v) != "prom")) {
        return Fail("--metrics-format needs json or prom");
      }
      metrics_format = v;
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }
  if (snapshot_every > 0 && cache_file.empty()) {
    return Fail("--snapshot-every requires --cache-file");
  }
  if (index_every > 0 && index_file.empty()) {
    return Fail("--index-every requires --index");
  }
  if (!overrides.params().empty()) {
    Result<DetectorConfig> merged =
        DetectorConfig::FromSpec(overrides, std::move(config));
    if (!merged.ok()) return Fail(merged.status().ToString());
    config = std::move(merged).value();
  }

  Result<std::shared_ptr<const DetectionPlan>> plan = DetectionPlan::Compile(
      std::move(config),
      seed.has_value() ? seed->schema() : arrivals->schema());
  if (!plan.ok()) return Fail(plan.status().ToString());

  // The decision cache is always on for a standing run — it is what
  // makes the deterministic final report nearly free and the
  // crash-restart warm-up possible.
  ShardedDecisionCacheOptions cache_options;
  if (cache_capacity > 0) cache_options.capacity = cache_capacity;
  auto cache = std::make_shared<ShardedDecisionCache>(cache_options);
  if (!cache_file.empty()) {
    Status loaded = cache->LoadSnapshot(cache_file);
    // A missing file is a cold first start, not an error.
    if (!loaded.ok() && loaded.code() != StatusCode::kNotFound) {
      return Fail(loaded.ToString());
    }
  }

  SinkState sink_state;
  sink_state.stream_decisions = stream_decisions;

  StandingSession::Options session_options;
  session_options.stream.queue_capacity = queue_capacity;
  session_options.stream.max_admitted =
      std::max<size_t>(arrivals->size(), 1);
  session_options.batch_size = (*plan)->config().batch_size;
  session_options.workers = (*plan)->config().workers;
  session_options.stage_timings = stats;
  session_options.cache = cache;
  session_options.decision_sink = [&sink_state](
                                      const PairDecisionRecord& rec) {
    OnDecision(&sink_state, rec);
  };
  Result<std::unique_ptr<StandingSession>> session = StandingSession::Make(
      *plan, seed.has_value() ? &*seed : nullptr, session_options);
  if (!session.ok()) return Fail(session.status().ToString());
  sink_state.stream = &(*session)->stream();

  // Arrival order: file order, or a seeded deterministic shuffle (the
  // report is identical either way — that is the point of the tool).
  std::vector<size_t> order(arrivals->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (have_shuffle) {
    std::mt19937_64 rng(shuffle_seed);
    std::shuffle(order.begin(), order.end(), rng);
  }

  std::thread producer([&] {
    IngestQueue& queue = (*session)->queue();
    auto next_time = std::chrono::steady_clock::now();
    const auto interval =
        rate > 0 ? std::chrono::microseconds(
                       static_cast<uint64_t>(1e6 / rate))
                 : std::chrono::microseconds(0);
    for (size_t idx : order) {
      if (rate > 0) {
        next_time += interval;
        std::this_thread::sleep_until(next_time);
      }
      XTuple tuple = arrivals->xtuple(idx);
      const uint64_t stamp = NowMicros();
      if (drop_mode) {
        queue.TryPush(std::move(tuple), stamp);
      } else {
        queue.Push(std::move(tuple), stamp);
      }
    }
    queue.Close();
  });

  // Maintenance: cache snapshots and index recompiles on an
  // admitted-tuple cadence, off the drain's critical path.
  std::atomic<bool> serving{true};
  uint64_t snapshot_count = 0;
  uint64_t index_build_count = 0;
  std::thread maintenance;
  if (snapshot_every > 0 || index_every > 0) {
    maintenance = std::thread([&] {
      uint64_t last_snapshot = 0;
      uint64_t last_index = 0;
      while (serving.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const uint64_t admitted =
            (*session)->stream().admission_stats().admitted;
        if (snapshot_every > 0 && admitted >= last_snapshot + snapshot_every) {
          last_snapshot = admitted;
          if (cache->AppendSnapshot(cache_file).ok()) ++snapshot_count;
        }
        if (index_every > 0 && admitted >= last_index + index_every) {
          last_index = admitted;
          if (BuildIndexOnce(session->get(), index_file,
                             session_options.batch_size, cache)
                  .ok()) {
            ++index_build_count;
          }
        }
      }
    });
  }

  // The standing drain: decides every crossing pair of every admitted
  // tuple, blocking on the queue between arrivals, until Close.
  Result<DetectionResult> live = (*session)->Drain();
  producer.join();
  serving.store(false);
  if (maintenance.joinable()) maintenance.join();
  if (!live.ok()) return Fail(live.status().ToString());

  // The deterministic final report (byte-identical to a one-shot batch
  // run of the canonical tuple set, for any arrival order).
  ShardOptions shards{shard_count, ShardStrategy::kAuto};
  Result<DetectionResult> final_result = (*session)->Finish(shards);
  if (!final_result.ok()) return Fail(final_result.status().ToString());

  if (!dump_relation.empty()) {
    std::ofstream out(dump_relation);
    if (!out) return Fail("cannot write '" + dump_relation + "'");
    out << SerializeXRelation((*session)->CanonicalRelation());
    if (!out.good()) return Fail("error writing '" + dump_relation + "'");
  }
  if (!cache_file.empty()) {
    Status saved = cache->AppendSnapshot(cache_file);
    if (!saved.ok()) return Fail(saved.ToString());
    ++snapshot_count;
  }
  if (!index_file.empty()) {
    Status built = BuildIndexOnce(session->get(), index_file,
                                  session_options.batch_size, cache);
    if (!built.ok()) return Fail(built.ToString());
    ++index_build_count;
  }

  if (stats || !metrics_file.empty()) {
    RunTelemetry telemetry = final_result->telemetry != nullptr
                                 ? *final_result->telemetry
                                 : TelemetryFromResult(*final_result);
    (*session)->AddIngestStats(&telemetry.metrics);
    telemetry.metrics.SetCounter(kMetricIngestCacheSnapshots, snapshot_count);
    telemetry.metrics.SetCounter(kMetricIngestIndexBuilds, index_build_count);
    if (sink_state.latency.count() > 0) {
      telemetry.metrics.MutableHistogram(kMetricIngestAdmitToDecideMicros)
          ->Merge(sink_state.latency);
    }
    AddCacheLifetimeStats(cache->Stats(), &telemetry.metrics);
    if (stats) std::cerr << RenderExecutionStats(telemetry);
    if (!metrics_file.empty()) {
      std::ofstream out(metrics_file);
      if (!out) return Fail("cannot write '" + metrics_file + "'");
      out << (metrics_format == "prom" ? TelemetryToPrometheus(telemetry)
                                       : TelemetryToJson(telemetry));
      if (!out.good()) return Fail("error writing '" + metrics_file + "'");
    }
  }

  std::cout << DetectionReport(*final_result, nullptr);
  return 0;
}
