#!/usr/bin/env python3
"""Validate and diff pdd.telemetry.v1 sidecars (``pddcli --metrics``).

Subcommands:

* ``validate FILE...`` -- structural check of each sidecar: schema tag,
  section types, sorted key order in every object section (the C++
  exporters iterate sorted maps; an unsorted file means a export-path
  regression), non-negative integer counters, well-formed histograms
  (bucket counts sum to ``count``, monotone bucket upper bounds, p50 <=
  p95 <= p99 <= max), and a well-typed span tree. Sidecars carrying the
  standing-ingest family additionally get the accounting invariant
  (``exec.ingest.arrivals`` equals admitted + duplicate_ids + invalid +
  rejected_capacity + dropped + queue_depth), the queue bound
  (high-water <= capacity), and the namespace contract (ingest
  latencies live under ``time.ingest.``, counts under
  ``exec.ingest.``).

* ``diff A B`` -- compare the identity-metric subset of two sidecars:
  every counter/gauge/histogram/info entry whose name does NOT start
  with ``exec.`` or ``time.``. Identity metrics are the repo's
  determinism promise made machine-checkable: they must be
  byte-identical across serial/pooled/sharded/cached runs of one plan
  + input, while ``exec.*`` (execution shape) and ``time.*`` (wall
  clock) legitimately vary. Spans are never diffed.

Exit status: 0 clean, 1 validation/diff failure, 2 usage/IO error.
"""

import json
import sys

SCHEMA = "pdd.telemetry.v1"
NONDETERMINISTIC_PREFIXES = ("exec.", "time.")


def fail(errors, message):
    errors.append(message)


def check_sorted(errors, where, keys):
    if list(keys) != sorted(keys):
        fail(errors, f"{where}: keys not in sorted order")


def check_histogram(errors, name, hist):
    where = f"histograms[{name}]"
    if not isinstance(hist, dict):
        fail(errors, f"{where}: not an object")
        return
    for stat in ("count", "sum", "min", "max", "p50", "p95", "p99"):
        value = hist.get(stat)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(errors, f"{where}.{stat}: not a non-negative integer")
            return
    buckets = hist.get("buckets")
    if not isinstance(buckets, list):
        fail(errors, f"{where}.buckets: not a list")
        return
    total = 0
    last_upper = -1
    for pair in buckets:
        if (not isinstance(pair, list) or len(pair) != 2 or
                not all(isinstance(v, int) and not isinstance(v, bool)
                        and v >= 0 for v in pair)):
            fail(errors, f"{where}.buckets: malformed [upper, count] pair")
            return
        upper, count = pair
        if upper <= last_upper:
            fail(errors, f"{where}.buckets: upper bounds not increasing")
        if count == 0:
            fail(errors, f"{where}.buckets: empty bucket exported")
        last_upper = upper
        total += count
    if total != hist["count"]:
        fail(errors, f"{where}: bucket counts sum to {total}, "
                     f"count says {hist['count']}")
    if hist["count"] > 0:
        if hist["min"] > hist["max"]:
            fail(errors, f"{where}: min > max")
        if not hist["p50"] <= hist["p95"] <= hist["p99"]:
            fail(errors, f"{where}: quantiles not monotone")
        if hist["p99"] > 0 and last_upper >= 0 and hist["p99"] > last_upper:
            fail(errors, f"{where}: p99 beyond last bucket upper bound")


def check_span(errors, where, span):
    if not isinstance(span, dict):
        fail(errors, f"{where}: not an object")
        return
    if not isinstance(span.get("name"), str):
        fail(errors, f"{where}.name: not a string")
    if not isinstance(span.get("seconds"), (int, float)):
        fail(errors, f"{where}.seconds: not a number")
    counts = span.get("counts")
    if not isinstance(counts, dict):
        fail(errors, f"{where}.counts: not an object")
    else:
        check_sorted(errors, f"{where}.counts", counts.keys())
        for key, value in counts.items():
            if not isinstance(value, int) or isinstance(value, bool) or \
                    value < 0:
                fail(errors, f"{where}.counts[{key}]: not a non-negative "
                             f"integer")
    children = span.get("children")
    if not isinstance(children, list):
        fail(errors, f"{where}.children: not a list")
    else:
        for i, child in enumerate(children):
            check_span(errors, f"{where}.children[{i}]", child)


def check_ingest(errors, doc):
    """Standing-ingest family invariants (exec.ingest.* present)."""
    counters = doc.get("counters", {})
    gauges = doc.get("gauges", {})
    histograms = doc.get("histograms", {})
    ingest_keys = [key for section in (counters, gauges, histograms)
                   for key in section if key.startswith("exec.ingest.")]
    if not ingest_keys:
        return

    def count(name):
        value = counters.get(f"exec.ingest.{name}", 0)
        return value if isinstance(value, int) and \
            not isinstance(value, bool) else 0

    def gauge(name):
        value = gauges.get(f"exec.ingest.{name}")
        return value if isinstance(value, (int, float)) and \
            not isinstance(value, bool) else None

    # Every arrival is accounted for exactly once: admitted into the
    # standing relation, rejected by admission (dup/invalid/capacity),
    # dropped at the queue, or still queued.
    depth = gauge("queue_depth")
    accounted = (count("admitted") + count("duplicate_ids") +
                 count("invalid") + count("rejected_capacity") +
                 count("dropped") + (int(depth) if depth is not None else 0))
    if count("arrivals") != accounted:
        fail(errors, f"ingest accounting: arrivals {count('arrivals')} != "
                     f"admitted + duplicate_ids + invalid + "
                     f"rejected_capacity + dropped + queue_depth "
                     f"({accounted})")
    high_water = gauge("queue_high_water")
    capacity = counters.get("exec.ingest.queue_capacity")
    if high_water is not None and isinstance(capacity, int) and \
            not isinstance(capacity, bool) and high_water > capacity:
        fail(errors, f"ingest queue: high_water {high_water} exceeds "
                     f"capacity {capacity}")
    # Namespace contract: latency distributions are wall clock and live
    # under time.ingest.; exec.ingest. entries are shape counts/gauges.
    for name in histograms:
        if name.startswith("exec.ingest."):
            fail(errors, f"histograms[{name}]: ingest latency histograms "
                         f"belong under time.ingest., not exec.ingest.")
    for section_name, section in (("counters", counters), ("gauges", gauges)):
        for name in section:
            if name.startswith("time.ingest."):
                fail(errors, f"{section_name}[{name}]: time.ingest. is "
                             f"reserved for latency histograms")


def validate(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SCHEMA:
        fail(errors, f"schema: want {SCHEMA}, got {doc.get('schema')!r}")
    for section, value_check in (
            ("counters", lambda v: isinstance(v, int) and
                not isinstance(v, bool) and v >= 0),
            ("gauges", lambda v: v is None or (
                isinstance(v, (int, float)) and not isinstance(v, bool))),
            ("info", lambda v: isinstance(v, str))):
        body = doc.get(section)
        if not isinstance(body, dict):
            fail(errors, f"{section}: missing or not an object")
            continue
        check_sorted(errors, section, body.keys())
        for key, value in body.items():
            if not value_check(value):
                fail(errors, f"{section}[{key}]: ill-typed value {value!r}")
    histograms = doc.get("histograms")
    if not isinstance(histograms, dict):
        fail(errors, "histograms: missing or not an object")
    else:
        check_sorted(errors, "histograms", histograms.keys())
        for name, hist in histograms.items():
            check_histogram(errors, name, hist)
    if "spans" in doc:
        spans = doc["spans"]
        if not isinstance(spans, list):
            fail(errors, "spans: not a list")
        else:
            for i, span in enumerate(spans):
                check_span(errors, f"spans[{i}]", span)
    check_ingest(errors, doc)
    return errors


def is_identity(name):
    return not name.startswith(NONDETERMINISTIC_PREFIXES)


def identity_subset(doc):
    subset = {}
    for section in ("counters", "gauges", "histograms", "info"):
        subset[section] = {
            key: value for key, value in doc.get(section, {}).items()
            if is_identity(key)}
    return subset


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"telemetry_check: cannot read {path}: {error}",
              file=sys.stderr)
        sys.exit(2)


def main(argv):
    if len(argv) >= 2 and argv[0] == "validate":
        status = 0
        for path in argv[1:]:
            errors = validate(load(path))
            for error in errors:
                print(f"telemetry_check: {path}: {error}", file=sys.stderr)
                status = 1
            if not errors:
                print(f"telemetry_check: {path}: valid")
        return status
    if len(argv) == 3 and argv[0] == "diff":
        a, b = identity_subset(load(argv[1])), identity_subset(load(argv[2]))
        status = 0
        for section in ("counters", "gauges", "histograms", "info"):
            for key in sorted(a[section].keys() | b[section].keys()):
                left = a[section].get(key)
                right = b[section].get(key)
                if left != right:
                    print(f"telemetry_check: identity mismatch "
                          f"{section}[{key}]: {left!r} != {right!r}",
                          file=sys.stderr)
                    status = 1
        if status == 0:
            print(f"telemetry_check: identity metrics of {argv[1]} and "
                  f"{argv[2]} match")
        return status
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
